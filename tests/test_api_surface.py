"""Tests for public API surfaces not covered elsewhere: profile
rendering, direct plan execution, helper entry points, and small
utilities."""

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.engine.executor import collect_chunks
from repro.expr.ast import Compare, col, lit
from repro.plan import logical as L
from repro.pruning.summaries import BloomFilter
from repro.sql import parse_sql
from repro.storage import MetadataStore, StorageLayer
from repro.storage.builder import build_table
from repro.workload import Platform, PlatformConfig, WorkloadGenerator
from repro.workload.generator import run_workload

SCHEMA = Schema.of(ts=DataType.INTEGER, tag=DataType.VARCHAR)


def make_catalog():
    catalog = Catalog(rows_per_partition=25)
    catalog.create_table_from_rows(
        "t", SCHEMA, [(i, f"tag{i % 3}") for i in range(100)],
        layout=Layout.sorted_by("ts"))
    return catalog


class TestProfileRendering:
    def test_pruning_summary_mentions_each_stage(self):
        catalog = make_catalog()
        result = catalog.sql(
            "SELECT * FROM t WHERE ts >= 90 LIMIT 3")
        text = result.profile.pruning_summary()
        assert "scan t" in text
        assert "filter ->" in text
        assert "limit[" in text
        assert "simulated time" in text

    def test_flow_record_round_trip(self):
        catalog = make_catalog()
        result = catalog.sql("SELECT * FROM t WHERE ts >= 90")
        record = result.profile.flow_record()
        assert record.total_partitions == 4
        assert record.applied("filter")
        assert record.overall_ratio > 0.5

    def test_partitions_pruned_property(self):
        catalog = make_catalog()
        result = catalog.sql("SELECT * FROM t WHERE ts >= 90")
        profile = result.profile
        assert profile.partitions_pruned == 3
        assert profile.total_ms == profile.compile_ms \
            + profile.exec_ms


class TestDirectPlanExecution:
    def test_execute_hand_built_plan(self):
        catalog = make_catalog()
        plan = L.LogicalLimit(
            L.LogicalFilter(L.LogicalScan("t"),
                            Compare(">=", col("ts"), lit(50))),
            k=5)
        result = catalog.execute_plan(plan)
        assert result.num_rows == 5
        assert all(row[0] >= 50 for row in result.rows)

    def test_with_predicate_combines(self):
        scan = L.LogicalScan("t", Compare(">", col("ts"), lit(1)))
        combined = scan.with_predicate(
            Compare("<", col("ts"), lit(9)))
        assert combined.predicate.to_sql() == \
            "((ts > 1) AND (ts < 9))"

    def test_collect_chunks(self):
        from repro.engine.context import ExecContext
        from repro.engine.operators import Scan
        from repro.pruning.base import ScanSet

        table = build_table("t", SCHEMA,
                            [(i, "a") for i in range(50)],
                            rows_per_partition=10)
        storage = StorageLayer()
        storage.put_all(table.partitions)
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA,
                    ScanSet((p.partition_id, p.zone_map)
                            for p in table.partitions))
        chunks = collect_chunks(scan)
        assert len(chunks) == 5
        assert sum(c.num_rows for c in chunks) == 50


class TestSmallUtilities:
    def test_parse_sql_alias(self):
        stmt = parse_sql("SELECT * FROM t LIMIT 3")
        assert stmt.limit == 3

    def test_metadata_store_register_table(self):
        table = build_table("t", SCHEMA, [(1, "a")],
                            rows_per_partition=10)
        store = MetadataStore()
        store.register_table(
            "t", ((p.partition_id, p.zone_map)
                  for p in table.partitions))
        assert store.partitions_of("t") == table.partition_ids

    def test_storage_load_cost_without_loading(self):
        table = build_table("t", SCHEMA, [(1, "a")],
                            rows_per_partition=10)
        storage = StorageLayer()
        storage.put_all(table.partitions)
        cost = storage.load_cost_ms(table.partition_ids[0])
        assert cost > 0
        assert storage.stats.partitions_loaded == 0

    def test_bloom_fill_ratio(self):
        bloom = BloomFilter(expected_items=100)
        assert bloom.fill_ratio() == 0.0
        bloom.add_all(range(100))
        assert 0.0 < bloom.fill_ratio() < 1.0

    def test_run_workload_helper(self):
        platform = Platform(PlatformConfig(
            seed=9, n_small_tables=2, n_medium_tables=1,
            n_large_tables=0, n_dim_tables=1))
        generator = WorkloadGenerator(platform, seed=9)
        results = run_workload(platform, generator.generate(5))
        assert len(results) == 5
        assert all(r.profile is not None for r in results)

    def test_id_generator_floor(self):
        from repro.storage.micropartition import (
            MicroPartition,
            partition_id_generator,
        )

        partition_id_generator.ensure_floor(10**9)
        part = MicroPartition.from_rows(SCHEMA, [(1, "a")])
        assert part.partition_id > 10**9
