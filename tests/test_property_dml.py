"""Property-based DML testing: a random interleaving of INSERT /
DELETE / UPDATE / SELECT against a Python shadow copy of the table.

Catches pruning-vs-DML interactions: stale metadata after partition
rewrites, predicate-cache corruption, and partition-id reuse."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Catalog, DataType, Layout, Schema

SCHEMA = Schema.of(k=DataType.INTEGER, v=DataType.INTEGER)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.lists(st.tuples(st.integers(0, 50),
                                     st.integers(-20, 20)),
                           min_size=1, max_size=8)),
        st.tuples(st.just("delete"), st.integers(0, 50)),
        st.tuples(st.just("update"), st.integers(0, 50),
                  st.integers(-5, 5)),
        st.tuples(st.just("query"), st.integers(0, 50)),
        st.tuples(st.just("topk"), st.integers(1, 6)),
    ),
    min_size=1, max_size=12)


@settings(max_examples=60, deadline=None)
@given(initial=st.lists(st.tuples(st.integers(0, 50),
                                  st.integers(-20, 20)),
                        min_size=0, max_size=40),
       ops=operations, use_cache=st.booleans())
def test_dml_sequence_matches_shadow(initial, ops, use_cache):
    catalog = Catalog(rows_per_partition=5)
    catalog.create_table_from_rows("t", SCHEMA, initial,
                                   layout=Layout.sorted_by("k"))
    if use_cache:
        catalog.enable_predicate_cache()
    shadow = list(initial)

    for op in ops:
        kind = op[0]
        if kind == "insert":
            rows = op[1]
            catalog.insert("t", rows)
            shadow.extend(rows)
        elif kind == "delete":
            threshold = op[1]
            result = catalog.sql(f"DELETE FROM t WHERE k < {threshold}")
            expected = sum(1 for r in shadow if r[0] < threshold)
            assert result.rows == [(expected,)]
            shadow = [r for r in shadow if not r[0] < threshold]
        elif kind == "update":
            threshold, delta = op[1], op[2]
            result = catalog.sql(
                f"UPDATE t SET v = v + {delta} WHERE k >= {threshold}")
            expected = sum(1 for r in shadow if r[0] >= threshold)
            assert result.rows == [(expected,)]
            shadow = [(k, v + delta) if k >= threshold else (k, v)
                      for k, v in shadow]
        elif kind == "query":
            threshold = op[1]
            result = catalog.sql(
                f"SELECT * FROM t WHERE k >= {threshold}")
            expected = sorted(r for r in shadow if r[0] >= threshold)
            assert sorted(result.rows) == expected
        else:  # topk
            k = op[1]
            result = catalog.sql(
                f"SELECT * FROM t ORDER BY v DESC, k ASC LIMIT {k}")
            expected = sorted(shadow, key=lambda r: (-r[1], r[0]))[:k]
            assert result.rows == expected

    # final full-table check
    assert sorted(catalog.tables["t"].to_rows()) == sorted(shadow)
    assert catalog.metadata.table_row_count("t") == len(shadow)
