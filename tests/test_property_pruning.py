"""Property-based tests of the central safety invariants.

The pruning contract (§2.1): *no false negatives*. For any predicate,
data, and partitioning:

* a partition classified ``NEVER`` contains no matching row;
* a partition classified ``ALWAYS`` contains only matching rows (and
  none where the predicate is NULL);
* the derived value range of any expression contains the value the
  expression evaluates to on every row.

These are checked against brute-force row evaluation over randomly
generated expressions and data.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.expr import ast
from repro.expr.eval import evaluate
from repro.expr.pruning import TriState, prune_partition
from repro.expr.ranges import derive_range
from repro.expr.rewrite import not_true, widen_for_pruning
from repro.storage.micropartition import MicroPartition
from repro.types import DataType, Schema

SCHEMA = Schema.of(a=DataType.INTEGER, b=DataType.INTEGER,
                   s=DataType.VARCHAR)

# ----------------------------------------------------------------------
# Data strategies
# ----------------------------------------------------------------------
int_values = st.one_of(st.none(), st.integers(-50, 50))
str_values = st.one_of(
    st.none(), st.sampled_from(["alpha", "beta", "gamma", "alp", "z",
                                "", "alphabet"]))
rows_strategy = st.lists(
    st.tuples(int_values, int_values, str_values), min_size=0,
    max_size=30)


# ----------------------------------------------------------------------
# Expression strategies
# ----------------------------------------------------------------------
def numeric_expr(depth: int = 2):
    leaf = st.one_of(
        st.sampled_from([ast.col("a"), ast.col("b")]),
        st.integers(-60, 60).map(ast.lit),
    )
    if depth == 0:
        return leaf
    sub = numeric_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: ast.Arith(t[0], t[1], t[2])),
        sub.map(ast.Neg),
        st.tuples(sub, sub).map(
            lambda t: ast.FunctionCall("least", [t[0], t[1]])),
        sub.map(lambda e: ast.FunctionCall("abs", [e])),
    )


def predicate_expr(depth: int = 2):
    comparison = st.tuples(
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        numeric_expr(1), numeric_expr(1)
    ).map(lambda t: ast.Compare(t[0], t[1], t[2]))
    string_pred = st.one_of(
        st.sampled_from(["alp", "bet", "z", ""]).map(
            lambda p: ast.StartsWith(ast.col("s"), p)),
        st.sampled_from(["alp%", "%a", "alpha", "a%t"]).map(
            lambda p: ast.Like(ast.col("s"), p)),
        st.sampled_from(["a", "b", "s"]).map(
            lambda c: ast.IsNull(ast.col(c))),
        st.lists(st.integers(-50, 50), min_size=1, max_size=4).map(
            lambda vs: ast.InList(ast.col("a"), vs)),
    )
    leaf = st.one_of(comparison, string_pred)
    if depth == 0:
        return leaf
    sub = predicate_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda t: ast.And(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: ast.Or(t[0], t[1])),
        sub.map(ast.Not),
    )


def brute_force(expr, partition):
    """Row-by-row truth values of a predicate (True/False/None)."""
    return evaluate(expr, partition.columns(), SCHEMA).to_pylist()


@settings(max_examples=300, deadline=None)
@given(predicate=predicate_expr(), rows=rows_strategy)
def test_no_false_negatives(predicate, rows):
    """NEVER partitions contain no matching row; ALWAYS only matches."""
    partition = MicroPartition.from_rows(SCHEMA, rows)
    verdict = prune_partition(predicate, partition.zone_map, SCHEMA)
    truths = brute_force(predicate, partition)
    if verdict == TriState.NEVER:
        assert not any(t is True for t in truths)
    elif verdict == TriState.ALWAYS:
        assert all(t is True for t in truths)
        assert len(truths) > 0


@settings(max_examples=300, deadline=None)
@given(predicate=predicate_expr(), rows=rows_strategy)
def test_widened_predicate_still_sound(predicate, rows):
    """Pruning with the widened predicate never loses matching rows."""
    partition = MicroPartition.from_rows(SCHEMA, rows)
    widened = widen_for_pruning(predicate)
    verdict = prune_partition(widened, partition.zone_map, SCHEMA)
    if verdict == TriState.NEVER:
        truths = brute_force(predicate, partition)
        assert not any(t is True for t in truths)


@settings(max_examples=300, deadline=None)
@given(expr=numeric_expr(), rows=rows_strategy)
def test_derived_range_contains_all_values(expr, rows):
    """Every evaluated value lies inside the derived range."""
    partition = MicroPartition.from_rows(SCHEMA, rows)
    value_range = derive_range(expr, partition.zone_map, SCHEMA)
    values = evaluate(expr, partition.columns(), SCHEMA).to_pylist()
    for value in values:
        if value is None:
            assert value_range.maybe_null or not value_range.known
        elif value_range.known:
            assert value_range.lo is not None, \
                f"{expr}: produced {value} but range claims null-only"
            assert value_range.lo <= value <= value_range.hi, \
                f"{expr}: {value} outside [{value_range.lo}, " \
                f"{value_range.hi}]"


@settings(max_examples=300, deadline=None)
@given(predicate=predicate_expr(), rows=rows_strategy)
def test_not_true_is_exact_complement(predicate, rows):
    """not_true(p) is TRUE for a row iff p is not TRUE there."""
    partition = MicroPartition.from_rows(SCHEMA, rows)
    inverted = not_true(predicate)
    original = brute_force(predicate, partition)
    complement = brute_force(inverted, partition)
    for o, c in zip(original, complement):
        if o is not True:
            # Soundness: every not-TRUE row must satisfy the inversion
            # (completeness of the other direction may be lost by the
            # trivially-true fallback, which is fine).
            assert c is True


@settings(max_examples=300, deadline=None)
@given(predicate=predicate_expr(), rows=rows_strategy)
def test_inverted_pass_agrees_with_tristate(predicate, rows):
    """Both fully-matching detectors are sound vs brute force."""
    partition = MicroPartition.from_rows(SCHEMA, rows)
    if partition.row_count == 0:
        return
    truths = brute_force(predicate, partition)
    # Tri-state ALWAYS.
    if prune_partition(predicate, partition.zone_map,
                       SCHEMA) == TriState.ALWAYS:
        assert all(t is True for t in truths)
    # Two-pass inverted NEVER == fully matching.
    inverted = not_true(predicate)
    if prune_partition(inverted, partition.zone_map,
                       SCHEMA) == TriState.NEVER:
        assert all(t is True for t in truths)
