"""Tests for predicate widening, not-true inversion, and simplification."""

import pytest

from repro.expr.ast import (
    And,
    Arith,
    Compare,
    If,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    StartsWith,
    col,
    lit,
)
from repro.expr.eval import evaluate
from repro.expr.rewrite import not_true, widen_for_pruning
from repro.expr.simplify import simplify
from repro.storage.column import Column
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR,
                   b=DataType.BOOLEAN)


class TestWidening:
    def test_like_with_prefix_becomes_startswith(self):
        widened = widen_for_pruning(Like(col("s"), "Marked-%-Ridge"))
        assert widened == StartsWith(col("s"), "Marked-")

    def test_like_without_prefix_unchanged(self):
        expr = Like(col("s"), "%Ridge")
        assert widen_for_pruning(expr) == expr

    def test_exact_like_unchanged(self):
        expr = Like(col("s"), "Ridge")
        assert widen_for_pruning(expr) == expr

    def test_structure_preserved(self):
        expr = And(Like(col("s"), "a%b"), Compare(">", col("x"), lit(1)))
        widened = widen_for_pruning(expr)
        assert isinstance(widened, And)
        assert widened.children()[0] == StartsWith(col("s"), "a")

    def test_not_subtree_untouched(self):
        # Widening below NOT would strengthen the predicate: unsound.
        expr = Not(Like(col("s"), "a%b"))
        assert widen_for_pruning(expr) == expr

    def test_widened_is_implied(self):
        """Every row matching the original matches the widened form."""
        import random

        rng = random.Random(0)
        strings = ["Marked-North-Ridge", "Marked-X", "ridge", "", None,
                   "Marked-%s" % rng.randint(0, 9)]
        expr = Like(col("s"), "Marked-%-Ridge")
        widened = widen_for_pruning(expr)
        chunk = {"s": Column.from_pylist(DataType.VARCHAR, strings)}
        original = evaluate(expr, chunk, SCHEMA).to_pylist()
        wide = evaluate(widened, chunk, SCHEMA).to_pylist()
        for o, w in zip(original, wide):
            if o is True:
                assert w is True


class TestNotTrue:
    def evaluate_both(self, expr, **data):
        chunk = {name: Column.from_pylist(SCHEMA.dtype_of(name), vals)
                 for name, vals in data.items()}
        original = evaluate(expr, chunk, SCHEMA).to_pylist()
        inverted = evaluate(not_true(expr), chunk, SCHEMA).to_pylist()
        return original, inverted

    def check_complement(self, expr, **data):
        """not_true(e) is TRUE exactly when e is not TRUE."""
        original, inverted = self.evaluate_both(expr, **data)
        for o, i in zip(original, inverted):
            assert (i is True) == (o is not True), (o, i)

    def test_simple_comparison(self):
        self.check_complement(Compare(">", col("x"), lit(5)),
                              x=[1, 5, 9, None])

    def test_and_de_morgan(self):
        expr = And(Compare(">", col("x"), lit(2)),
                   Compare("<", col("x"), lit(8)))
        self.check_complement(expr, x=[0, 5, 9, None])

    def test_or_de_morgan(self):
        expr = Or(Compare("<", col("x"), lit(2)),
                  Compare(">", col("x"), lit(8)))
        self.check_complement(expr, x=[0, 5, 9, None])

    def test_like(self):
        self.check_complement(Like(col("s"), "a%"),
                              s=["abc", "xyz", None])

    def test_is_null_leaf(self):
        self.check_complement(IsNull(col("x")), x=[1, None])
        self.check_complement(IsNull(col("x"), negated=True),
                              x=[1, None])

    def test_not_node(self):
        self.check_complement(Not(Compare(">", col("x"), lit(5))),
                              x=[1, 9, None])

    def test_literal(self):
        assert not_true(Literal(True)) == Literal(False)
        assert not_true(Literal(False)) == Literal(True)

    def test_division_leaf_falls_back_to_true(self):
        # x / 0 produces NULL without any NULL column input; the
        # inversion must stay sound by being trivially true.
        expr = Compare(">", Arith("/", lit(1), col("x")), lit(0))
        inverted = not_true(expr)
        # Trivially-true fallback for this non-strict leaf:
        assert inverted == Literal(True)

    def test_in_list_with_null_falls_back(self):
        assert not_true(InList(col("x"), [1, None])) == Literal(True)

    def test_in_list_without_null_exact(self):
        self.check_complement(InList(col("x"), [1, 3]),
                              x=[1, 2, 3, None])


class TestSimplify:
    def test_and_flattening(self):
        expr = And(And(col("b"), col("b")), col("b"))
        simplified = simplify(expr, SCHEMA)
        assert isinstance(simplified, And)
        assert len(simplified.children()) == 3

    def test_true_removed_from_and(self):
        expr = And(lit(True), Compare(">", col("x"), lit(1)))
        assert simplify(expr, SCHEMA) == Compare(">", col("x"), lit(1))

    def test_false_collapses_and(self):
        expr = And(lit(False), Compare(">", col("x"), lit(1)))
        assert simplify(expr, SCHEMA) == lit(False)

    def test_true_collapses_or(self):
        expr = Or(lit(True), Compare(">", col("x"), lit(1)))
        assert simplify(expr, SCHEMA) == lit(True)

    def test_false_removed_from_or(self):
        expr = Or(lit(False), Compare(">", col("x"), lit(1)))
        assert simplify(expr, SCHEMA) == Compare(">", col("x"), lit(1))

    def test_double_negation(self):
        expr = Not(Not(col("b")))
        assert simplify(expr, SCHEMA) == col("b")

    def test_not_is_null(self):
        expr = Not(IsNull(col("x")))
        assert simplify(expr, SCHEMA) == IsNull(col("x"), negated=True)

    def test_constant_folding(self):
        expr = Compare(">", Arith("*", lit(3), lit(4)), lit(10))
        assert simplify(expr, SCHEMA) == lit(True)

    def test_if_with_constant_condition(self):
        expr = If(lit(True), col("x"), lit(0))
        assert simplify(expr, SCHEMA) == col("x")
        expr = If(lit(False), col("x"), lit(0))
        assert simplify(expr, SCHEMA) == lit(0)

    def test_column_exprs_not_folded(self):
        expr = Compare(">", col("x"), lit(1))
        assert simplify(expr, SCHEMA) == expr

    def test_semantics_preserved(self):
        expr = And(Or(lit(False), Compare(">", col("x"), lit(2))),
                   lit(True))
        simplified = simplify(expr, SCHEMA)
        chunk = {"x": Column.from_pylist(DataType.INTEGER,
                                         [1, 3, None])}
        assert evaluate(expr, chunk, SCHEMA).to_pylist() == \
            evaluate(simplified, chunk, SCHEMA).to_pylist()
