"""Differential tests: vectorized pruning kernels vs the scalar oracle.

The vectorized pruner's contract is *bit-identity* with
:class:`repro.pruning.FilterPruner`: same kept partitions, same pruned
partitions, same fully-matching set, same check counts — for every
predicate shape and every zone-map pathology (NULL-only columns, empty
partitions, missing stats, degraded metadata). These tests enforce the
contract with hypothesis over randomized predicates and data, plus
directed cases for each fallback path.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.catalog import Catalog
from repro.expr import ast
from repro.plan.compiler import CompilerOptions
from repro.pruning import (
    FilterPruner,
    ScanSet,
    StatsIndex,
    VectorizedFilterPruner,
    compile_pruning_kernel,
)
from repro.storage.micropartition import MicroPartition
from repro.types import DataType, Schema

SCHEMA = Schema.of(a=DataType.INTEGER, v=DataType.DOUBLE,
                   s=DataType.VARCHAR)

STRINGS = ["alpha", "beta", "gamma", "alp", "z", "", "alphabet"]

# ----------------------------------------------------------------------
# Data strategies: partitions with NULLs, empties, and odd shapes
# ----------------------------------------------------------------------
int_values = st.one_of(st.none(), st.integers(-50, 50))
float_values = st.one_of(st.none(),
                         st.floats(-50, 50, allow_nan=False))
str_values = st.one_of(st.none(), st.sampled_from(STRINGS))
rows_strategy = st.lists(
    st.tuples(int_values, float_values, str_values),
    min_size=0, max_size=12)
partitions_strategy = st.lists(rows_strategy, min_size=0, max_size=8)


# ----------------------------------------------------------------------
# Predicate strategies: compilable shapes, plus shapes that must fall
# back (LIKE, arithmetic, NaN / lossy literals)
# ----------------------------------------------------------------------
_OPS = ["<", "<=", ">", ">=", "=", "<>"]


def _compare(col: str, lit_strategy):
    return st.tuples(st.sampled_from(_OPS), lit_strategy,
                     st.booleans()).map(
        lambda t: ast.Compare(t[0], ast.col(col), ast.lit(t[1]))
        if t[2] else ast.Compare(t[0], ast.lit(t[1]), ast.col(col)))


def leaf_predicate():
    return st.one_of(
        _compare("a", st.integers(-60, 60)),
        _compare("v", st.floats(-60, 60, allow_nan=False)),
        # int literal against the DOUBLE column and vice versa:
        # exercises the cross-lane binding guards.
        _compare("v", st.integers(-60, 60)),
        _compare("a", st.floats(-60, 60, allow_nan=False)),
        _compare("s", st.sampled_from(STRINGS)),
        st.tuples(
            st.sampled_from(["a", "v", "s"]), st.booleans()).map(
            lambda t: ast.IsNull(ast.col(t[0]), negated=t[1])),
        st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                 min_size=1, max_size=5).map(
            lambda vs: ast.InList(ast.col("a"), vs)),
        st.lists(st.one_of(st.none(), st.sampled_from(STRINGS)),
                 min_size=1, max_size=4).map(
            lambda vs: ast.InList(ast.col("s"), vs)),
        st.sampled_from(["alp", "bet", "z", ""]).map(
            lambda p: ast.StartsWith(ast.col("s"), p)),
        # never-compilable shapes: the pruner must fall back and
        # still agree with itself via the embedded scalar path.
        st.sampled_from(["alp%", "%a", "a%t", "alpha"]).map(
            lambda p: ast.Like(ast.col("s"), p)),
        st.sampled_from([True, False]).map(ast.lit),
    )


def predicate_expr(depth: int = 2):
    leaf = leaf_predicate()
    if depth == 0:
        return leaf
    sub = predicate_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda t: ast.And(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: ast.Or(t[0], t[1])),
        sub.map(ast.Not),
    )


def make_entries(partition_rows):
    entries = []
    for i, rows in enumerate(partition_rows):
        partition = MicroPartition.from_rows(SCHEMA, rows)
        entries.append((partition.partition_id, partition.zone_map))
    return entries


def assert_differential(predicate, entries, detect_fm,
                        index=None, expect_mode=None):
    scan_set = ScanSet(entries)
    if index is None:
        index = StatsIndex(entries)
    scalar = FilterPruner(predicate, SCHEMA,
                          detect_fully_matching=detect_fm)
    vector = VectorizedFilterPruner(
        predicate, SCHEMA, detect_fully_matching=detect_fm,
        index=index)
    expected = scalar.prune(scan_set)
    got = vector.prune(scan_set)
    assert got.kept.partition_ids == expected.kept.partition_ids
    assert got.pruned_ids == expected.pruned_ids
    assert got.fully_matching_ids == expected.fully_matching_ids
    assert got.checks == expected.checks
    assert got.before == expected.before
    if expect_mode is not None:
        assert vector.mode == expect_mode
    return vector


class TestDifferential:
    """Randomized equivalence against the scalar oracle."""

    @settings(max_examples=400, deadline=None)
    @given(predicate=predicate_expr(),
           partition_rows=partitions_strategy,
           detect_fm=st.booleans())
    def test_matches_scalar_pruner(self, predicate, partition_rows,
                                   detect_fm):
        assert_differential(predicate, make_entries(partition_rows),
                            detect_fm)

    @settings(max_examples=150, deadline=None)
    @given(predicate=predicate_expr(),
           partition_rows=st.lists(rows_strategy, min_size=1,
                                   max_size=6),
           seed=st.integers(0, 2**16))
    def test_matches_with_degraded_zone_maps(self, predicate,
                                             partition_rows, seed):
        """Stats-free (degraded) zone maps route through the scalar
        path and the combined result still matches the oracle."""
        entries = make_entries(partition_rows)
        index = StatsIndex(entries)
        rng = random.Random(seed)
        degraded = [
            (pid, zm.without_stats() if rng.random() < 0.5 else zm)
            for pid, zm in entries]
        assert_differential(predicate, degraded, True, index=index)


class TestDirectedFallbacks:
    def _entries(self, n=6, nulls=False):
        rows = [[(i * 10 + j, float(i * 10 + j),
                  STRINGS[(i + j) % len(STRINGS)])
                 for j in range(5)] for i in range(n)]
        if nulls:
            rows[0] = [(None, None, None)] * 3
            rows[1] = []
        return make_entries(rows)

    def test_compilable_predicate_is_fully_vectorized(self):
        predicate = ast.And(
            ast.Compare(">", ast.col("a"), ast.lit(5)),
            ast.Compare("<", ast.col("v"), ast.lit(40.0)))
        pruner = assert_differential(
            predicate, self._entries(), True,
            expect_mode="vectorized")
        assert pruner.kernel is not None
        assert pruner.fallback_checks == 0

    def test_like_predicate_falls_back(self):
        predicate = ast.Like(ast.col("s"), "alp%")
        pruner = assert_differential(
            predicate, self._entries(), True,
            expect_mode="fallback")
        assert pruner.kernel is None

    def test_nan_literal_falls_back(self):
        predicate = ast.Compare("=", ast.col("v"),
                                ast.lit(float("nan")))
        assert_differential(predicate, self._entries(), True,
                            expect_mode="fallback")

    def test_huge_int_literal_falls_back(self):
        predicate = ast.Compare("<", ast.col("a"), ast.lit(2**70))
        assert_differential(predicate, self._entries(), True,
                            expect_mode="fallback")

    def test_stale_index_rows_fall_back_per_partition(self):
        """Entries whose ZoneMap is not the indexed object (stale
        index) are classified by the scalar path: mode == mixed."""
        entries = self._entries()
        index = StatsIndex(entries)
        refreshed = entries[:3] + [
            (pid, zm.without_stats()) for pid, zm in entries[3:]]
        pruner = assert_differential(
            ast.Compare(">", ast.col("a"), ast.lit(20)),
            refreshed, True, index=index)
        assert pruner.mode == "mixed"
        assert pruner.vector_checks == 3
        assert pruner.fallback_checks == 3

    def test_null_and_empty_partitions(self):
        for predicate in (
                ast.IsNull(ast.col("a")),
                ast.IsNull(ast.col("a"), negated=True),
                ast.Compare("=", ast.col("a"), ast.lit(3)),
                ast.InList(ast.col("a"), [1, None, 3]),
                ast.StartsWith(ast.col("s"), "al")):
            assert_differential(predicate,
                                self._entries(nulls=True), True)

    def test_missing_column_matches_scalar(self):
        predicate = ast.Compare("=", ast.col("a"), ast.lit(1))
        entries = self._entries(3)
        # an index over zone maps that lack column "a" entirely
        other = Schema.of(x=DataType.INTEGER)
        alien = [(pid, MicroPartition.from_rows(
            other, [(1,), (2,)]).zone_map) for pid, _ in entries]
        assert_differential(predicate, alien, True)


class TestKernelCompilation:
    def test_compilable_shapes(self):
        for predicate in (
                ast.Compare("<", ast.col("a"), ast.lit(5)),
                ast.Compare(">=", ast.lit(5), ast.col("a")),
                ast.InList(ast.col("s"), ["alpha", "beta"]),
                ast.IsNull(ast.col("v")),
                ast.StartsWith(ast.col("s"), "ab"),
                ast.Not(ast.Compare("=", ast.col("a"), ast.lit(1))),
                ast.And(ast.lit(True),
                        ast.Compare("<>", ast.col("a"), ast.lit(2)))):
            assert compile_pruning_kernel(predicate) is not None, \
                predicate.to_sql()

    def test_uncompilable_shapes(self):
        for predicate in (
                ast.Like(ast.col("s"), "a%"),
                ast.Compare("<", ast.col("a"), ast.col("a")),
                ast.Compare("=", ast.col("a"),
                            ast.lit(None, DataType.INTEGER)),
                ast.Compare("=", ast.Arith("+", ast.col("a"),
                                           ast.lit(1)), ast.lit(2)),
                ast.lit(7)):
            assert compile_pruning_kernel(predicate) is None, \
                predicate.to_sql()


class TestIncrementalIndex:
    """The metadata store's incrementally maintained index must equal
    a from-scratch rebuild after arbitrary register/unregister."""

    def _assert_index_fresh(self, store, table):
        index = store.stats_index(table)
        expected = [(pid, zm) for pid, zm in store.iter_table(table)]
        assert list(index.entries()) == expected
        for pid, zm in expected:
            row = index.row_of(pid)
            assert row is not None
            assert index.zone_map_at(row) is zm

    def test_incremental_equals_rebuild(self):
        from repro.storage.metadata_store import MetadataStore

        store = MetadataStore()
        partitions = [MicroPartition.from_rows(
            SCHEMA, [(i, float(i), "x")]) for i in range(20)]
        for p in partitions[:10]:
            store.register("t", p.partition_id, p.zone_map)
        self._assert_index_fresh(store, "t")   # builds the index
        for p in partitions[10:]:
            store.register("t", p.partition_id, p.zone_map)
        for p in partitions[:5]:
            store.unregister("t", p.partition_id)
        self._assert_index_fresh(store, "t")   # applies the delta
        # no deltas pending: same object comes back
        assert store.stats_index("t") is store.stats_index("t")

    def test_table_index_invalidated_by_mutation(self):
        catalog = Catalog(rows_per_partition=4)
        rows = [(i, float(i), STRINGS[i % 3]) for i in range(20)]
        catalog.create_table_from_rows("t", SCHEMA, rows)
        table = catalog.tables["t"]
        index = table.stats_index()
        assert index is table.stats_index()
        catalog.insert("t", [(99, 99.0, "zz")])
        assert table.stats_index() is not index
        assert len(table.stats_index()) == len(table.partitions)


class TestCatalogIntegration:
    def _catalog(self, **kwargs):
        catalog = Catalog(rows_per_partition=10, **kwargs)
        rng = random.Random(3)
        rows = [(i, rng.uniform(0, 100), STRINGS[i % len(STRINGS)])
                for i in range(400)]
        catalog.create_table_from_rows("t", SCHEMA, rows)
        return catalog

    QUERIES = [
        "SELECT * FROM t WHERE a > 100 AND a < 220",
        "SELECT * FROM t WHERE v <= 12.5 OR s = 'alpha'",
        "SELECT count(*) FROM t WHERE s IN ('beta', 'gamma')",
        "SELECT * FROM t WHERE s LIKE 'alp%'",
        "SELECT * FROM t WHERE a IS NOT NULL AND v > 90.0",
    ]

    def test_vectorized_flag_is_pure_ablation(self):
        """enable_vectorized_pruning=False yields identical rows,
        partitions, and pruning decisions."""
        on = self._catalog()
        off = self._catalog()
        # partition ids are globally allocated, so normalize to each
        # table's first id before comparing across catalogs
        base_on = min(p.partition_id
                      for p in on.tables["t"].partitions)
        base_off = min(p.partition_id
                       for p in off.tables["t"].partitions)
        for sql in self.QUERIES:
            got = on.sql(sql)
            want = off.sql(sql, CompilerOptions(
                enable_vectorized_pruning=False))
            assert got.rows == want.rows, sql
            ps = zip(got.profile.scans, want.profile.scans)
            for scan_on, scan_off in ps:
                kept_on = [pid - base_on for pid in
                           scan_on.filter_result.kept.partition_ids]
                kept_off = [pid - base_off for pid in
                            scan_off.filter_result.kept.partition_ids]
                assert kept_on == kept_off, sql
                fm_on = [pid - base_on
                         for pid in scan_on.fully_matching_ids]
                fm_off = [pid - base_off
                          for pid in scan_off.fully_matching_ids]
                assert fm_on == fm_off, sql
                assert scan_off.pruning_mode == "fallback"

    def test_pruning_mode_surfaces_in_profile_and_explain(self):
        catalog = self._catalog()
        result = catalog.sql("SELECT * FROM t WHERE a > 350")
        scan = result.profile.scans[0]
        assert scan.pruning_mode == "vectorized"
        assert scan.pruning_ms >= 0.0
        assert result.profile.metrics_export()[
            "scans_vectorized"] == 1.0
        explain = catalog.explain("SELECT * FROM t WHERE a > 350")
        assert "pruning: vectorized" in explain
        like = catalog.sql("SELECT * FROM t WHERE s LIKE 'x%'")
        assert like.profile.scans[0].pruning_mode == "fallback"

    def test_parallel_annotation_in_explain(self):
        catalog = self._catalog(scan_parallelism=4)
        explain = catalog.explain("SELECT * FROM t WHERE a >= 0")
        assert "parallel scan x4" in explain
