"""Tests for the SQL lexer, parser, and planner."""

import datetime

import pytest

from repro.errors import ParseError, PlanError
from repro.expr.ast import (
    And,
    Arith,
    Cast,
    Compare,
    If,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    StartsWith,
    col,
    lit,
)
from repro.plan import logical as L
from repro.sql import parse_select, tokenize
from repro.sql.planner import plan_select
from repro.types import DataType, Schema

TABLES = {
    "t": Schema.of(x=DataType.INTEGER, y=DataType.DOUBLE,
                   s=DataType.VARCHAR, d=DataType.DATE),
    "u": Schema.of(k=DataType.INTEGER, label=DataType.VARCHAR),
}


def resolver(name: str) -> Schema:
    return TABLES[name.lower()]


def plan(sql: str) -> L.LogicalNode:
    return plan_select(parse_select(sql), resolver)


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("SELECT x, 1.5 FROM t WHERE s = 'a''b'")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "EOF"
        strings = [t.value for t in tokens if t.kind == "STRING"]
        assert strings == ["a'b"]

    def test_line_comment(self):
        tokens = tokenize("SELECT x -- comment\nFROM t")
        values = [t.value for t in tokens if t.kind == "IDENT"]
        assert values == ["SELECT", "x", "FROM", "t"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_unexpected_char(self):
        with pytest.raises(ParseError):
            tokenize("SELECT #")

    def test_scientific_notation(self):
        tokens = tokenize("SELECT 1.5e3")
        assert any(t.value == "1.5e3" for t in tokens)


class TestParser:
    def test_star_and_table(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.star
        assert stmt.table.name == "t"

    def test_where_precedence(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE x > 1 AND x < 5 OR s = 'a'")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.children()[0], And)

    def test_not_like_in_between(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE s NOT LIKE 'a%' AND x IN (1, 2) "
            "AND y BETWEEN 1 AND 2 AND d IS NOT NULL")
        conjuncts = stmt.where.children()
        assert isinstance(conjuncts[0], Not)
        assert isinstance(conjuncts[1], InList)

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT * FROM t WHERE x + 2 * 3 = 7")
        comparison = stmt.where
        assert isinstance(comparison.left, Arith)
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"

    def test_if_cast_date_functions(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE IF(s = 'feet', x * 2, x) > "
            "CAST(1.0 AS INTEGER) AND d >= DATE '2024-01-01' "
            "AND STARTSWITH(s, 'ab')")
        conjuncts = stmt.where.children()
        assert isinstance(conjuncts[0].left, If)
        assert isinstance(conjuncts[0].right, Cast)
        assert conjuncts[1].right == lit(datetime.date(2024, 1, 1))
        assert isinstance(conjuncts[2], StartsWith)

    def test_joins(self):
        stmt = parse_select(
            "SELECT * FROM t JOIN u ON t.x = u.k "
            "LEFT JOIN u AS v ON t.x = v.k")
        assert len(stmt.joins) == 2
        assert stmt.joins[0].join_type == "inner"
        assert stmt.joins[1].join_type == "left_outer"
        assert stmt.joins[1].table.alias == "v"

    def test_group_order_limit(self):
        stmt = parse_select(
            "SELECT s, count(*) AS c FROM t GROUP BY s "
            "ORDER BY c DESC LIMIT 10 OFFSET 5")
        assert stmt.group_by == ["s"]
        assert stmt.order_by[0].desc
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_aggregates_in_select(self):
        stmt = parse_select("SELECT count(*), sum(x) AS total FROM t")
        assert stmt.items[0].agg_func == "count_star"
        assert stmt.items[1].agg_func == "sum"
        assert stmt.items[1].alias == "total"

    def test_order_by_aggregate(self):
        stmt = parse_select(
            "SELECT s FROM t GROUP BY s ORDER BY max(x) DESC LIMIT 3")
        assert stmt.order_by[0].agg_func == "max"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t extra stuff ,")

    def test_limit_must_be_integer(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t LIMIT 1.5")

    def test_semicolon_allowed(self):
        parse_select("SELECT * FROM t;")

    def test_in_requires_literals(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t WHERE x IN (y)")


class TestPlanner:
    def test_simple_scan(self):
        node = plan("SELECT * FROM t")
        assert isinstance(node, L.LogicalScan)

    def test_where_becomes_filter(self):
        node = plan("SELECT * FROM t WHERE x > 1")
        assert isinstance(node, L.LogicalFilter)

    def test_projection(self):
        node = plan("SELECT x, y * 2 AS y2 FROM t")
        assert isinstance(node, L.LogicalProject)
        assert node.names == ["x", "y2"]

    def test_qualified_refs_resolved(self):
        node = plan("SELECT * FROM t JOIN u ON t.x = u.k "
                    "WHERE u.label = 'a'")
        assert isinstance(node, L.LogicalFilter)
        assert node.predicate == Compare("=", col("label"), lit("a"))

    def test_join_key_sides_normalized(self):
        # Condition written backwards still resolves.
        node = plan("SELECT * FROM t JOIN u ON u.k = t.x")
        assert isinstance(node, L.LogicalJoin)
        assert node.left_key == "x"
        assert node.right_key == "k"

    def test_unknown_column_rejected(self):
        with pytest.raises(PlanError):
            plan("SELECT * FROM t WHERE nope > 1")

    def test_ambiguous_column_rejected(self):
        tables = {
            "a": Schema.of(x=DataType.INTEGER),
            "b": Schema.of(x=DataType.INTEGER),
        }
        with pytest.raises(PlanError):
            plan_select(
                parse_select("SELECT * FROM a JOIN b ON a.x = b.x "
                             "WHERE x > 1"),
                lambda n: tables[n])

    def test_order_limit_becomes_sort_limit(self):
        node = plan("SELECT * FROM t ORDER BY x DESC LIMIT 5")
        assert isinstance(node, L.LogicalLimit)
        assert isinstance(node.child, L.LogicalSort)
        assert node.child.keys[0] == L.SortItem("x", True)

    def test_order_by_expression_gets_hidden_column(self):
        node = plan("SELECT x FROM t ORDER BY abs(y) LIMIT 3")
        # strip projection on top
        assert isinstance(node, L.LogicalProject)
        assert node.names == ["x"]
        assert isinstance(node.child, L.LogicalLimit)

    def test_group_by_aggregate_plan(self):
        node = plan("SELECT s, count(*) AS c FROM t GROUP BY s")
        assert isinstance(node, L.LogicalProject)
        assert isinstance(node.child, L.LogicalAggregate)
        agg = node.child
        assert agg.group_keys == ["s"]
        assert agg.aggs[0].func == "count_star"

    def test_order_by_hidden_aggregate(self):
        node = plan("SELECT s FROM t GROUP BY s "
                    "ORDER BY sum(x) DESC LIMIT 2")
        # strip project above limit above sort
        assert isinstance(node, L.LogicalProject)
        assert node.names == ["s"]

    def test_non_group_key_select_rejected(self):
        with pytest.raises(PlanError):
            plan("SELECT x, count(*) FROM t GROUP BY s")

    def test_star_with_group_by_rejected(self):
        with pytest.raises(PlanError):
            plan("SELECT * FROM t GROUP BY s")

    def test_aggregate_argument_must_be_column(self):
        with pytest.raises(PlanError):
            plan("SELECT sum(x + 1) FROM t")

    def test_shape_excludes_literals(self):
        a = plan("SELECT * FROM t WHERE x > 5 LIMIT 3").shape()
        b = plan("SELECT * FROM t WHERE x > 99 LIMIT 7").shape()
        assert a == b

    def test_shape_distinguishes_structure(self):
        a = plan("SELECT * FROM t WHERE x > 5").shape()
        b = plan("SELECT * FROM t WHERE x > 5 AND s = 'a'").shape()
        assert a != b
