"""Tests for zone maps, micro-partitions, tables, builders, layouts,
the storage layer, and the metadata store."""

import threading

import pytest

from repro.errors import MetadataError, SchemaError, StorageError
from repro.storage import (
    Column,
    ColumnStats,
    MetadataStore,
    MicroPartition,
    StorageLayer,
    ZoneMap,
)
from repro.storage.builder import TableBuilder, build_table
from repro.storage.clustering import Layout, apply_layout, measure_overlap
from repro.storage.storage_layer import CostModel
from repro.storage.table import Table
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)


def make_partition(rows):
    return MicroPartition.from_rows(SCHEMA, rows)


class TestColumnStats:
    def test_from_column(self):
        col = Column.from_pylist(DataType.INTEGER, [3, None, 7])
        stats = ColumnStats.from_column(col)
        assert (stats.min_value, stats.max_value) == (3, 7)
        assert stats.null_count == 1
        assert stats.row_count == 3
        assert stats.has_nulls and not stats.all_null
        assert stats.has_values

    def test_unknown(self):
        stats = ColumnStats.unknown(DataType.INTEGER, 10)
        assert not stats.present
        assert not stats.has_values

    def test_merge(self):
        a = ColumnStats(DataType.INTEGER, 1, 5, 0, 10)
        b = ColumnStats(DataType.INTEGER, 3, 9, 2, 10)
        merged = a.merge(b)
        assert (merged.min_value, merged.max_value) == (1, 9)
        assert merged.null_count == 2
        assert merged.row_count == 20

    def test_merge_with_all_null_side(self):
        a = ColumnStats(DataType.INTEGER, None, None, 5, 5)
        b = ColumnStats(DataType.INTEGER, 3, 9, 0, 10)
        merged = a.merge(b)
        assert (merged.min_value, merged.max_value) == (3, 9)

    def test_merge_missing_stays_missing(self):
        a = ColumnStats.unknown(DataType.INTEGER, 5)
        b = ColumnStats(DataType.INTEGER, 3, 9, 0, 10)
        assert not a.merge(b).present

    def test_merge_dtype_mismatch(self):
        a = ColumnStats(DataType.INTEGER, 1, 5, 0, 10)
        b = ColumnStats(DataType.DOUBLE, 1.0, 5.0, 0, 10)
        with pytest.raises(MetadataError):
            a.merge(b)


class TestZoneMap:
    def test_from_columns(self):
        part = make_partition([(1, "a"), (5, "z"), (3, None)])
        zm = part.zone_map
        assert zm.row_count == 3
        assert zm.stats("x").min_value == 1
        assert zm.stats("s").max_value == "z"
        assert zm.stats("s").null_count == 1

    def test_unknown_column_raises(self):
        part = make_partition([(1, "a")])
        with pytest.raises(MetadataError):
            part.zone_map.stats("nope")

    def test_without_stats(self):
        part = make_partition([(1, "a")])
        stripped = part.zone_map.without_stats()
        assert not stripped.has_stats("x")
        assert stripped.row_count == 1

    def test_merge_different_columns_raises(self):
        zm1 = make_partition([(1, "a")]).zone_map
        other_schema = Schema.of(y=DataType.INTEGER)
        zm2 = MicroPartition.from_rows(other_schema, [(1,)]).zone_map
        with pytest.raises(MetadataError):
            zm1.merge(zm2)


class TestMicroPartition:
    def test_from_rows_roundtrip(self):
        rows = [(1, "a"), (2, None)]
        part = make_partition(rows)
        assert part.to_rows() == rows
        assert part.row_count == 2

    def test_schema_mismatch_raises(self):
        with pytest.raises(SchemaError):
            MicroPartition(SCHEMA, {"x": Column.from_pylist(
                DataType.INTEGER, [1])})

    def test_dtype_mismatch_raises(self):
        with pytest.raises(SchemaError):
            MicroPartition(SCHEMA, {
                "x": Column.from_pylist(DataType.DOUBLE, [1.0]),
                "s": Column.from_pylist(DataType.VARCHAR, ["a"]),
            })

    def test_ragged_columns_raise(self):
        with pytest.raises(SchemaError):
            MicroPartition(SCHEMA, {
                "x": Column.from_pylist(DataType.INTEGER, [1, 2]),
                "s": Column.from_pylist(DataType.VARCHAR, ["a"]),
            })

    def test_unique_ids(self):
        a = make_partition([(1, "a")])
        b = make_partition([(1, "a")])
        assert a.partition_id != b.partition_id

    def test_project_bytes_smaller_than_full(self):
        part = make_partition([(i, "text" * 10) for i in range(50)])
        assert part.project_bytes(["x"]) < part.nbytes()

    def test_with_zone_map_and_recompute(self):
        part = make_partition([(1, "a"), (9, "z")])
        stripped = part.with_zone_map(part.zone_map.without_stats())
        assert not stripped.zone_map.has_stats("x")
        recomputed = stripped.recompute_zone_map()
        assert recomputed.stats("x").max_value == 9


class TestTableAndBuilder:
    def test_builder_chunks_rows(self):
        table = build_table("t", SCHEMA,
                            [(i, "s") for i in range(25)],
                            rows_per_partition=10)
        assert table.num_partitions == 3
        assert [p.row_count for p in table.partitions] == [10, 10, 5]
        assert table.row_count == 25

    def test_builder_rejects_bad_row(self):
        builder = TableBuilder("t", SCHEMA, rows_per_partition=10)
        with pytest.raises(SchemaError):
            builder.add_row((1,))

    def test_builder_rejects_nonpositive_chunk(self):
        with pytest.raises(SchemaError):
            TableBuilder("t", SCHEMA, rows_per_partition=0)

    def test_table_partition_lookup(self):
        table = build_table("t", SCHEMA, [(1, "a")],
                            rows_per_partition=10)
        pid = table.partition_ids[0]
        assert table.partition(pid).row_count == 1
        with pytest.raises(SchemaError):
            table.partition(999_999)

    def test_table_rejects_wrong_schema_partition(self):
        table = Table("t", SCHEMA)
        other = MicroPartition.from_rows(
            Schema.of(y=DataType.INTEGER), [(1,)])
        with pytest.raises(SchemaError):
            table.add_partition(other)

    def test_remove_partition(self):
        table = build_table("t", SCHEMA, [(i, "s") for i in range(20)],
                            rows_per_partition=10)
        pid = table.partition_ids[0]
        table.remove_partition(pid)
        assert pid not in table.partition_ids


class TestLayouts:
    ROWS = [(i, f"s{i}") for i in range(100)]

    def test_sorted_layout_orders_rows(self):
        import random

        shuffled = list(self.ROWS)
        random.Random(0).shuffle(shuffled)
        ordered = apply_layout(SCHEMA, shuffled, Layout.sorted_by("x"))
        assert [r[0] for r in ordered] == sorted(range(100))

    def test_sorted_layout_nulls_first(self):
        rows = [(2, "a"), (None, "b"), (1, "c")]
        ordered = apply_layout(SCHEMA, rows, Layout.sorted_by("x"))
        assert ordered[0][0] is None

    def test_random_layout_is_deterministic(self):
        a = apply_layout(SCHEMA, self.ROWS, Layout.random(seed=5))
        b = apply_layout(SCHEMA, self.ROWS, Layout.random(seed=5))
        assert a == b

    def test_natural_layout_keeps_order(self):
        assert apply_layout(SCHEMA, self.ROWS,
                            Layout.natural()) == self.ROWS

    def test_clustered_preserves_multiset(self):
        ordered = apply_layout(SCHEMA, self.ROWS,
                               Layout.clustered_by("x", jitter=5))
        assert sorted(ordered) == sorted(self.ROWS)

    def test_sorted_requires_keys(self):
        with pytest.raises(SchemaError):
            apply_layout(SCHEMA, self.ROWS, Layout(kind="sorted"))

    def test_overlap_sorted_vs_random(self):
        sorted_table = build_table(
            "a", SCHEMA, self.ROWS, rows_per_partition=10,
            layout=Layout.sorted_by("x"))
        random_table = build_table(
            "b", SCHEMA, self.ROWS, rows_per_partition=10,
            layout=Layout.random(seed=1))
        sorted_overlap = measure_overlap(sorted_table.partitions, "x")
        random_overlap = measure_overlap(random_table.partitions, "x")
        assert sorted_overlap.mean_overlap == 0.0
        assert random_overlap.mean_overlap > 5


class TestStorageLayer:
    def test_put_load_accounting(self, small_table):
        storage = StorageLayer()
        storage.put_all(small_table.partitions)
        pid = small_table.partition_ids[0]
        partition = storage.load(pid)
        assert partition.partition_id == pid
        assert storage.stats.requests == 1
        assert storage.stats.partitions_loaded == 1
        assert storage.stats.bytes_read == partition.nbytes()
        assert storage.stats.loaded_partition_ids == [pid]

    def test_column_projection_reads_fewer_bytes(self, small_table):
        storage = StorageLayer()
        storage.put_all(small_table.partitions)
        pid = small_table.partition_ids[0]
        storage.load(pid, columns=["ts"])
        full = storage.peek(pid).nbytes()
        assert storage.stats.bytes_read < full

    def test_missing_partition_raises(self):
        storage = StorageLayer()
        with pytest.raises(StorageError):
            storage.load(12345)
        with pytest.raises(StorageError):
            storage.delete(12345)

    def test_peek_does_not_account(self, small_table):
        storage = StorageLayer()
        storage.put_all(small_table.partitions)
        storage.peek(small_table.partition_ids[0])
        assert storage.stats.requests == 0

    def test_stats_snapshot_diff(self, small_table):
        storage = StorageLayer()
        storage.put_all(small_table.partitions)
        before = storage.stats.snapshot()
        storage.load(small_table.partition_ids[0])
        delta = storage.stats.diff(before)
        assert delta.partitions_loaded == 1

    def test_stats_diff_is_atomic_under_writers(self, small_table):
        """Regression: diff() used to read the live counters field by
        field without the lock, so a concurrent load could tear the
        view (e.g. requests counted but bytes_read not yet). With every
        load adding exactly one request and one partition's bytes, a
        consistent diff always shows bytes_read == requests * nbytes."""
        storage = StorageLayer()
        storage.put_all(small_table.partitions)
        pid = small_table.partition_ids[0]
        nbytes = storage.peek(pid).nbytes()
        before = storage.stats.snapshot()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                storage.load(pid)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        torn = []
        try:
            for _ in range(300):
                delta = storage.stats.diff(before)
                if delta.bytes_read != delta.requests * nbytes:
                    torn.append((delta.requests, delta.bytes_read))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not torn

    def test_put_rejects_live_id_collision(self, small_table):
        """Regression: partition ids are immutable and never reused;
        silently replacing a live id would serve stale cached bytes."""
        storage = StorageLayer()
        original = small_table.partitions[0]
        storage.put(original)
        impostor = small_table.partitions[1]
        impostor.partition_id = original.partition_id
        with pytest.raises(StorageError):
            storage.put(impostor)
        assert storage.peek(original.partition_id) is original

    def test_put_same_object_again_is_noop(self, small_table):
        storage = StorageLayer()
        partition = small_table.partitions[0]
        storage.put(partition)
        assert storage.put(partition) == partition.partition_id
        assert len(storage) == 1

    def test_cost_model_monotone_in_bytes(self):
        model = CostModel()
        assert model.load_cost(10 * 2**20) > model.load_cost(2**20)
        assert model.scan_cost(10_000) > model.scan_cost(100)
        assert model.cached_load_cost(2**20) < model.load_cost(2**20)


class TestMetadataStore:
    def test_register_get(self, small_table):
        store = MetadataStore()
        for p in small_table.partitions:
            store.register("t", p.partition_id, p.zone_map)
        pid = small_table.partition_ids[0]
        assert store.get("t", pid).row_count == 50
        assert store.partitions_of("t") == small_table.partition_ids
        assert store.table_row_count("t") == 250
        assert store.lookups == 1 + len(small_table.partitions)

    def test_unregister(self, small_table):
        store = MetadataStore()
        p = small_table.partitions[0]
        store.register("t", p.partition_id, p.zone_map)
        store.unregister("t", p.partition_id)
        with pytest.raises(MetadataError):
            store.get("t", p.partition_id)
        with pytest.raises(MetadataError):
            store.unregister("t", p.partition_id)

    def test_drop_table(self, small_table):
        store = MetadataStore()
        for p in small_table.partitions:
            store.register("t", p.partition_id, p.zone_map)
        store.drop_table("t")
        assert store.partitions_of("t") == []
        assert len(store) == 0

    def test_version_increments(self, small_table):
        store = MetadataStore()
        v0 = store.version
        p = small_table.partitions[0]
        store.register("t", p.partition_id, p.zone_map)
        assert store.version > v0
