"""Tests for vectorized evaluation with three-valued logic."""

import datetime

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expr.ast import (
    And,
    Arith,
    Cast,
    ColumnRef,
    Compare,
    Contains,
    EndsWith,
    FunctionCall,
    If,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    StartsWith,
    col,
    lit,
)
from repro.expr.eval import evaluate, evaluate_predicate
from repro.storage.column import Column
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, y=DataType.DOUBLE,
                   s=DataType.VARCHAR, b=DataType.BOOLEAN,
                   d=DataType.DATE)


def make_chunk(**data):
    columns = {}
    for name, values in data.items():
        dtype = SCHEMA.dtype_of(name)
        columns[name] = Column.from_pylist(dtype, values)
    return columns


def run(expr, **data):
    return evaluate(expr, make_chunk(**data), SCHEMA).to_pylist()


class TestLeaves:
    def test_column(self):
        assert run(col("x"), x=[1, None, 3]) == [1, None, 3]

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(col("x"), {}, SCHEMA)

    def test_literal_broadcast(self):
        assert run(lit(7), x=[1, 2]) == [7, 7]

    def test_null_literal(self):
        assert run(Literal(None, DataType.INTEGER), x=[1, 2]) == \
            [None, None]


class TestArithmetic:
    def test_basic_ops(self):
        assert run(Arith("+", col("x"), lit(1)), x=[1, 2]) == [2, 3]
        assert run(Arith("-", col("x"), lit(1)), x=[1, 2]) == [0, 1]
        assert run(Arith("*", col("x"), lit(3)), x=[2]) == [6]

    def test_null_propagation(self):
        assert run(Arith("+", col("x"), lit(1)), x=[None, 2]) == \
            [None, 3]

    def test_division_returns_double(self):
        assert run(Arith("/", col("x"), lit(2)), x=[5]) == [2.5]

    def test_division_by_zero_is_null(self):
        assert run(Arith("/", col("x"), lit(0)), x=[5]) == [None]

    def test_modulo(self):
        assert run(Arith("%", col("x"), lit(3)), x=[7, 9]) == [1, 0]

    def test_modulo_by_zero_is_null(self):
        assert run(Arith("%", col("x"), lit(0)), x=[7]) == [None]

    def test_negation(self):
        assert run(Neg(col("x")), x=[5, None]) == [-5, None]


class TestComparisons:
    def test_all_operators(self):
        data = dict(x=[1, 2, 3])
        assert run(Compare("=", col("x"), lit(2)), **data) == \
            [False, True, False]
        assert run(Compare("<>", col("x"), lit(2)), **data) == \
            [True, False, True]
        assert run(Compare("<", col("x"), lit(2)), **data) == \
            [True, False, False]
        assert run(Compare("<=", col("x"), lit(2)), **data) == \
            [True, True, False]
        assert run(Compare(">", col("x"), lit(2)), **data) == \
            [False, False, True]
        assert run(Compare(">=", col("x"), lit(2)), **data) == \
            [False, True, True]

    def test_null_comparison_is_null(self):
        assert run(Compare("=", col("x"), lit(1)), x=[None]) == [None]

    def test_string_comparison(self):
        assert run(Compare("<", col("s"), lit("m")),
                   s=["apple", "pear"]) == [True, False]

    def test_date_comparison(self):
        d1 = datetime.date(2024, 1, 1)
        d2 = datetime.date(2024, 6, 1)
        assert run(Compare("<", col("d"), lit(d2)), d=[d1, d2]) == \
            [True, False]

    def test_column_to_column(self):
        assert run(Compare("<", col("x"), col("y")),
                   x=[1, 5], y=[2.0, 2.0]) == [True, False]


class TestKleeneLogic:
    TRUE, FALSE, NULL = True, False, None

    def test_and_truth_table(self):
        b1 = [True, True, True, False, False, False, None, None, None]
        b2 = [True, False, None, True, False, None, True, False, None]
        expected = [True, False, None, False, False, False, None,
                    False, None]
        assert run(And(col("b"), Compare("=", col("x"), lit(1))),
                   b=b1, x=[1 if v is True else (0 if v is False
                            else None) for v in b2]) == expected

    def test_or_truth_table(self):
        b1 = [True, True, True, False, False, False, None, None, None]
        b2 = [True, False, None, True, False, None, True, False, None]
        expected = [True, True, True, True, False, None, True, None,
                    None]
        assert run(Or(col("b"), Compare("=", col("x"), lit(1))),
                   b=b1, x=[1 if v is True else (0 if v is False
                            else None) for v in b2]) == expected

    def test_not(self):
        assert run(Not(col("b")), b=[True, False, None]) == \
            [False, True, None]

    def test_predicate_mask_excludes_null(self):
        mask = evaluate_predicate(col("b"),
                                  make_chunk(b=[True, False, None]),
                                  SCHEMA)
        assert list(mask) == [True, False, False]

    def test_predicate_requires_boolean(self):
        with pytest.raises(ExecutionError):
            evaluate_predicate(col("x"), make_chunk(x=[1]), SCHEMA)


class TestIf:
    def test_branch_selection(self):
        expr = If(Compare(">", col("x"), lit(0)), lit(1), lit(-1))
        assert run(expr, x=[5, -5]) == [1, -1]

    def test_null_condition_takes_else(self):
        expr = If(col("b"), lit(1), lit(-1))
        assert run(expr, b=[None]) == [-1]

    def test_null_branches(self):
        expr = If(col("b"), Literal(None, DataType.INTEGER), col("x"))
        assert run(expr, b=[True, False], x=[9, 9]) == [None, 9]

    def test_paper_example_unit_conversion(self):
        # IF(unit='feet', altit * 0.3048, altit) from §3
        schema = Schema.of(unit=DataType.VARCHAR, altit=DataType.INTEGER)
        expr = If(Compare("=", col("unit"), lit("feet")),
                  Arith("*", col("altit"), lit(0.3048)), col("altit"))
        chunk = {
            "unit": Column.from_pylist(DataType.VARCHAR,
                                       ["feet", "meters"]),
            "altit": Column.from_pylist(DataType.INTEGER, [1000, 1000]),
        }
        result = evaluate(expr, chunk, schema).to_pylist()
        assert result == [pytest.approx(304.8), 1000.0]


class TestStrings:
    def test_like(self):
        expr = Like(col("s"), "Marked-%-Ridge")
        assert run(expr, s=["Marked-North-Ridge", "Marked-South",
                            None]) == [True, False, None]

    def test_like_underscore(self):
        assert run(Like(col("s"), "a_c"), s=["abc", "ac"]) == \
            [True, False]

    def test_like_special_chars_escaped(self):
        assert run(Like(col("s"), "a.c"), s=["a.c", "abc"]) == \
            [True, False]

    def test_startswith_endswith_contains(self):
        data = dict(s=["alpine ibex", "ibex", None])
        assert run(StartsWith(col("s"), "alp"), **data) == \
            [True, False, None]
        assert run(EndsWith(col("s"), "ibex"), **data) == \
            [True, True, None]
        assert run(Contains(col("s"), "ne i"), **data) == \
            [True, False, None]

    def test_upper_lower_length(self):
        assert run(FunctionCall("upper", [col("s")]), s=["aB", None]) \
            == ["AB", None]
        assert run(FunctionCall("lower", [col("s")]), s=["aB"]) == \
            ["ab"]
        assert run(FunctionCall("length", [col("s")]),
                   s=["abc", None]) == [3, None]


class TestInListAndNulls:
    def test_in_list(self):
        assert run(InList(col("x"), [1, 3]), x=[1, 2, None]) == \
            [True, False, None]

    def test_in_list_with_null_member(self):
        # x IN (1, NULL): TRUE if x=1, else NULL.
        assert run(InList(col("x"), [1, None]), x=[1, 2]) == \
            [True, None]

    def test_is_null(self):
        assert run(IsNull(col("x")), x=[1, None]) == [False, True]
        assert run(IsNull(col("x"), negated=True), x=[1, None]) == \
            [True, False]


class TestFunctionsAndCast:
    def test_abs_ceil_floor_round(self):
        assert run(FunctionCall("abs", [col("x")]), x=[-5, 5]) == [5, 5]
        assert run(FunctionCall("ceil", [col("y")]), y=[1.2]) == [2]
        assert run(FunctionCall("floor", [col("y")]), y=[1.8]) == [1]
        assert run(FunctionCall("round", [col("y")]), y=[1.6]) == [2]

    def test_coalesce(self):
        expr = FunctionCall("coalesce", [col("x"), lit(0)])
        assert run(expr, x=[None, 7]) == [0, 7]

    def test_least_greatest(self):
        assert run(FunctionCall("least", [col("x"), lit(5)]),
                   x=[3, 9]) == [3, 5]
        assert run(FunctionCall("greatest", [col("x"), lit(5)]),
                   x=[3, 9]) == [5, 9]

    def test_least_null_propagates(self):
        assert run(FunctionCall("least", [col("x"), lit(5)]),
                   x=[None]) == [None]

    def test_date_extraction(self):
        d = datetime.date(2024, 11, 5)
        assert run(FunctionCall("year", [col("d")]), d=[d]) == [2024]
        assert run(FunctionCall("month", [col("d")]), d=[d]) == [11]
        assert run(FunctionCall("day", [col("d")]), d=[d]) == [5]

    def test_cast_truncates(self):
        assert run(Cast(col("y"), DataType.INTEGER), y=[1.9, -1.9]) == \
            [1, -1]

    def test_cast_int_to_double(self):
        assert run(Cast(col("x"), DataType.DOUBLE), x=[3]) == [3.0]


class TestSegmentedRegexCache:
    """The shared LIKE-pattern cache must be bounded and scan-resistant."""

    def _fresh(self, maxsize=32):
        from repro.expr.eval import _SegmentedRegexCache

        return _SegmentedRegexCache(maxsize=maxsize)

    def test_compiles_and_hits(self):
        cache = self._fresh()
        first = cache("a%b_c")
        again = cache("a%b_c")
        assert first is again
        assert cache.misses == 1 and cache.hits == 1
        assert first.fullmatch("aXXbYc")
        assert not first.fullmatch("nope")

    def test_adversarial_scan_cannot_evict_hot_patterns(self):
        cache = self._fresh(maxsize=32)
        hot = [f"hot-{i}%" for i in range(8)]
        for pattern in hot:
            cache(pattern)
            cache(pattern)  # second touch promotes to protected
        # An adversarial stream of high-cardinality one-shot patterns,
        # far larger than the cache, churns through probation.
        for i in range(10 * 32):
            cache(f"adversarial-{i}%")
        for pattern in hot:
            assert pattern in cache
        hits_before = cache.hits
        for pattern in hot:
            assert cache(pattern) is not None
        assert cache.hits == hits_before + len(hot)

    def test_stays_bounded_under_churn(self):
        cache = self._fresh(maxsize=16)
        for i in range(1000):
            cache(f"p{i}%")
            if i % 3 == 0:
                cache(f"p{i}%")  # promote a third of them
        assert len(cache._protected) <= cache._protected_cap
        assert len(cache._probation) <= cache._probation_cap

    def test_module_cache_used_by_like(self):
        from repro.expr.eval import _like_regex

        run(Like(col("s"), "uniq_module_probe%"), s=["uniq_module_probeX"])
        assert "uniq_module_probe%" in _like_regex

    def test_concurrent_mixed_workload_is_safe(self):
        import threading

        cache = self._fresh(maxsize=64)
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    cache(f"shared-{i % 10}%")
                    cache(f"private-{seed}-{i}%")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(10):
            assert f"shared-{i}%" in cache
