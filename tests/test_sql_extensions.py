"""Tests for HAVING, DISTINCT, and the CLI."""

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.errors import PlanError
from repro.sql import parse_select


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog(rows_per_partition=50)
    schema = Schema.of(g=DataType.VARCHAR, v=DataType.INTEGER,
                       w=DataType.INTEGER)
    rows = [(f"g{i % 5}", i % 3, i % 7) for i in range(300)]
    catalog.create_table_from_rows("t", schema, rows,
                                   layout=Layout.sorted_by("g"))
    return catalog


class TestHavingParsing:
    def test_having_clause_parsed(self):
        stmt = parse_select(
            "SELECT g, count(*) AS c FROM t GROUP BY g "
            "HAVING count(*) > 5")
        assert stmt.having is not None

    def test_count_star_in_expression(self):
        stmt = parse_select(
            "SELECT g FROM t GROUP BY g HAVING count(*) * 2 > 10")
        assert stmt.having is not None

    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT g FROM t").distinct
        assert not parse_select("SELECT g FROM t").distinct


class TestHavingExecution:
    def test_having_on_aggregate_call(self, catalog):
        result = catalog.sql(
            "SELECT g, count(*) AS c FROM t GROUP BY g "
            "HAVING count(*) >= 60 ORDER BY g")
        assert all(c >= 60 for _, c in result.rows)
        assert result.num_rows == 5

    def test_having_filters_groups(self, catalog):
        result = catalog.sql(
            "SELECT g, count(*) AS c FROM t GROUP BY g "
            "HAVING g <> 'g0' ORDER BY g")
        assert [g for g, _ in result.rows] == ["g1", "g2", "g3", "g4"]

    def test_having_on_alias(self, catalog):
        result = catalog.sql(
            "SELECT g, count(*) AS c FROM t GROUP BY g "
            "HAVING c > 100")
        assert result.rows == []

    def test_having_hidden_aggregate(self, catalog):
        # max(w) is not in the select list; a hidden output carries it.
        result = catalog.sql(
            "SELECT g, count(*) AS c FROM t GROUP BY g "
            "HAVING max(w) >= 6 ORDER BY g")
        assert result.num_rows > 0
        assert result.schema.names() == ["g", "c"]

    def test_having_matches_oracle(self, catalog):
        result = catalog.sql(
            "SELECT g, sum(v) AS s FROM t GROUP BY g "
            "HAVING sum(v) >= 60 ORDER BY g")
        rows = catalog.tables["t"].to_rows()
        sums: dict = {}
        for g, v, _ in rows:
            sums[g] = sums.get(g, 0) + v
        expected = sorted((g, s) for g, s in sums.items() if s >= 60)
        assert result.rows == expected

    def test_having_requires_group_by(self, catalog):
        with pytest.raises(PlanError):
            catalog.sql("SELECT g FROM t HAVING g = 'g0'")

    def test_having_non_group_column_rejected(self, catalog):
        with pytest.raises(PlanError):
            catalog.sql("SELECT g, count(*) AS c FROM t GROUP BY g "
                        "HAVING v > 1")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(PlanError):
            catalog.sql("SELECT * FROM t WHERE sum(v) > 1")


class TestDistinct:
    def test_distinct_single_column(self, catalog):
        result = catalog.sql("SELECT DISTINCT v FROM t")
        assert sorted(result.rows) == [(0,), (1,), (2,)]

    def test_distinct_multiple_columns(self, catalog):
        result = catalog.sql("SELECT DISTINCT g, v FROM t")
        assert result.num_rows == len(set(
            (g, v) for g, v, _ in catalog.tables["t"].to_rows()))

    def test_distinct_expression(self, catalog):
        result = catalog.sql("SELECT DISTINCT v % 2 AS parity FROM t")
        assert sorted(result.rows) == [(0,), (1,)]

    def test_distinct_with_order_and_limit(self, catalog):
        result = catalog.sql(
            "SELECT DISTINCT v FROM t ORDER BY v DESC LIMIT 2")
        assert result.rows == [(2,), (1,)]

    def test_distinct_star(self, catalog):
        result = catalog.sql("SELECT DISTINCT * FROM t")
        assert result.num_rows == len(set(
            catalog.tables["t"].to_rows()))

    def test_distinct_rejects_hidden_order_expr(self, catalog):
        with pytest.raises(PlanError):
            catalog.sql("SELECT DISTINCT g FROM t ORDER BY abs(v)")


class TestCli:
    def test_demo_query(self, capsys):
        from repro.__main__ import main

        assert main(["demo",
                     "SELECT * FROM orders WHERE ts < 3"]) == 0
        out = capsys.readouterr().out
        assert "scan orders" in out
        assert "filter ->" in out

    def test_demo_explain(self, capsys):
        from repro.__main__ import main

        assert main(["demo", "SELECT * FROM orders LIMIT 5",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "limit pruning" in out

    def test_tpch_command(self, capsys):
        from repro.__main__ import main

        assert main(["tpch", "--orders", "600"]) == 0
        out = capsys.readouterr().out
        assert "Q06" in out
        assert "average" in out

    def test_workload_command(self, capsys):
        from repro.__main__ import main

        assert main(["workload", "--queries", "30"]) == 0
        out = capsys.readouterr().out
        assert "platform-wide partitions pruned" in out


class TestSqlDml:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=10)
        schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER,
                           note=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "t", schema, [(i, i % 5, f"n{i}") for i in range(100)],
            layout=Layout.sorted_by("ts"))
        return catalog

    def test_delete_with_pruning(self):
        catalog = self.make_catalog()
        result = catalog.sql("DELETE FROM t WHERE ts < 20")
        assert result.rows == [(20,)]
        scan = result.profile.scans[0]
        # only the two matching partitions were even inspected
        assert scan.filter_result.after == 2
        assert catalog.sql("SELECT count(*) AS n FROM t").rows == \
            [(80,)]

    def test_delete_without_where_clears_table(self):
        catalog = self.make_catalog()
        result = catalog.sql("DELETE FROM t")
        assert result.rows == [(100,)]
        assert catalog.tables["t"].row_count == 0

    def test_update_expression_references_row(self):
        catalog = self.make_catalog()
        result = catalog.sql(
            "UPDATE t SET v = v * 10 + 1 WHERE ts >= 95")
        assert result.rows == [(5,)]
        values = catalog.sql(
            "SELECT v FROM t WHERE ts >= 95 ORDER BY ts").rows
        assert values == [(1,), (11,), (21,), (31,), (41,)]

    def test_update_prunes_partitions(self):
        catalog = self.make_catalog()
        result = catalog.sql("UPDATE t SET v = 0 WHERE ts >= 90")
        scan = result.profile.scans[0]
        assert scan.filter_result.pruned == 9

    def test_update_numeric_promotion(self):
        catalog = self.make_catalog()
        # DOUBLE expression cast back into the INTEGER column
        catalog.sql("UPDATE t SET v = v / 2 WHERE ts < 4")
        values = catalog.sql(
            "SELECT v FROM t WHERE ts < 4 ORDER BY ts").rows
        assert values == [(0,), (0,), (1,), (1,)]

    def test_update_varchar_column(self):
        catalog = self.make_catalog()
        result = catalog.sql(
            "UPDATE t SET note = 'flagged' WHERE ts = 7")
        assert result.rows == [(1,)]
        assert catalog.sql(
            "SELECT note FROM t WHERE ts = 7").rows == [("flagged",)]

    def test_dml_keeps_metadata_consistent(self):
        catalog = self.make_catalog()
        catalog.sql("UPDATE t SET v = 999 WHERE ts = 50")
        result = catalog.sql("SELECT * FROM t WHERE v = 999")
        assert result.num_rows == 1
        # pruning against the rewritten partition's fresh metadata
        assert result.profile.scans[0].filter_result.after == 1

    def test_dml_invalidates_topk_cache(self):
        catalog = self.make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY v DESC LIMIT 1"
        catalog.sql(sql)
        catalog.sql("UPDATE t SET v = 12345 WHERE ts = 3")
        result = catalog.sql(sql)
        assert result.rows[0][1] == 12345

    def test_parse_errors(self):
        from repro.errors import ParseError

        catalog = self.make_catalog()
        with pytest.raises(ParseError):
            catalog.sql("DELETE t WHERE ts < 5")
        with pytest.raises(ParseError):
            catalog.sql("UPDATE t v = 1")
