"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.storage.builder import build_table


@pytest.fixture
def events_schema() -> Schema:
    return Schema.of(
        ts=DataType.INTEGER,
        category=DataType.VARCHAR,
        value=DataType.DOUBLE,
        score=DataType.INTEGER,
    )


def make_events_rows(n: int, seed: int = 0,
                     null_every: int = 0) -> list[tuple]:
    """Deterministic event rows; every ``null_every``-th value is NULL."""
    rng = random.Random(seed)
    categories = ["alpha", "beta", "gamma", "delta"]
    rows = []
    for i in range(n):
        value = None if null_every and i % null_every == 0 \
            else round(rng.uniform(0, 1000), 3)
        rows.append((i, rng.choice(categories), value,
                     rng.randrange(1_000_000)))
    return rows


@pytest.fixture
def events_catalog(events_schema) -> Catalog:
    """A catalog with one ts-sorted 'events' table of 20 partitions."""
    catalog = Catalog(rows_per_partition=100)
    catalog.create_table_from_rows(
        "events", events_schema, make_events_rows(2000),
        layout=Layout.sorted_by("ts"))
    return catalog


@pytest.fixture
def random_events_catalog(events_schema) -> Catalog:
    """Same data, shuffled layout (worst case for pruning)."""
    catalog = Catalog(rows_per_partition=100)
    catalog.create_table_from_rows(
        "events", events_schema, make_events_rows(2000),
        layout=Layout.random(seed=3))
    return catalog


@pytest.fixture
def small_table(events_schema):
    return build_table("small", events_schema, make_events_rows(250),
                       rows_per_partition=50)
