"""Tests for top-k pruning (§5), summaries, and join pruning (§6)."""

import random

import pytest

from repro.pruning.base import ScanSet
from repro.pruning.join_pruning import JoinPruner, build_summary
from repro.pruning.summaries import (
    BloomFilter,
    MinMaxSummary,
    RangeSetSummary,
)
from repro.pruning.topk_pruning import (
    Boundary,
    OrderStrategy,
    TopKPruner,
    initialize_boundary,
    rank_of,
)
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(v=DataType.INTEGER, s=DataType.VARCHAR)


def make_scan_set(values, rows_per_partition=10):
    rows = [(v, f"s{i}") for i, v in enumerate(values)]
    table = build_table("t", SCHEMA, rows,
                        rows_per_partition=rows_per_partition)
    return ScanSet((p.partition_id, p.zone_map)
                   for p in table.partitions)


class TestRanks:
    def test_desc_order(self):
        assert rank_of(10, True) > rank_of(5, True)

    def test_asc_order_inverted(self):
        assert rank_of(5, False) > rank_of(10, False)

    def test_null_is_worst_both_ways(self):
        assert rank_of(None, True) < rank_of(-10**9, True)
        assert rank_of(None, False) < rank_of(10**9, False)

    def test_string_ranks(self):
        assert rank_of("b", True) > rank_of("a", True)
        assert rank_of("a", False) > rank_of("b", False)


class TestBoundary:
    def test_starts_inactive(self):
        boundary = Boundary(desc=True)
        assert not boundary.is_active

    def test_update_only_tightens(self):
        boundary = Boundary(desc=True)
        boundary.update_value(10)
        boundary.update_value(5)  # loosening ignored
        assert boundary.rank == rank_of(10, True)
        boundary.update_value(20)
        assert boundary.rank == rank_of(20, True)


class TestTopKPruner:
    def test_skips_partitions_below_boundary(self):
        scan_set = make_scan_set(list(range(100)))  # sorted
        boundary = Boundary(desc=True)
        boundary.update_value(50)
        pruner = TopKPruner("v", boundary)
        skipped = [pid for pid, zm in scan_set if pruner.should_skip(zm)]
        # partitions with max < 50: [0..9] ... [40..49] -> 5 skipped
        assert len(skipped) == 5
        assert pruner.skipped == 5

    def test_no_boundary_no_skipping(self):
        scan_set = make_scan_set(list(range(50)))
        pruner = TopKPruner("v", Boundary(desc=True))
        assert not any(pruner.should_skip(zm) for _, zm in scan_set)

    def test_asc_uses_min(self):
        scan_set = make_scan_set(list(range(100)))
        boundary = Boundary(desc=False)
        boundary.update_value(49)
        pruner = TopKPruner("v", boundary)
        skipped = [pid for pid, zm in scan_set if pruner.should_skip(zm)]
        assert len(skipped) == 5  # partitions with min > 49

    def test_tie_not_skipped(self):
        scan_set = make_scan_set([10] * 10)
        boundary = Boundary(desc=True)
        boundary.update_value(10)
        pruner = TopKPruner("v", boundary)
        assert not any(pruner.should_skip(zm) for _, zm in scan_set)

    def test_all_null_partition_skipped_once_boundary_set(self):
        rows = [(None, "a")] * 10
        table = build_table("t", SCHEMA, rows, rows_per_partition=10)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        boundary = Boundary(desc=True)
        boundary.update_value(0)
        pruner = TopKPruner("v", boundary)
        assert all(pruner.should_skip(zm) for _, zm in scan_set)


class TestOrderStrategy:
    def test_full_sort_desc_by_max(self):
        rng = random.Random(0)
        values = list(range(100))
        rng.shuffle(values)
        scan_set = make_scan_set(values)
        ordered = OrderStrategy.FULL_SORT.order(scan_set, "v", True)
        maxes = [zm.stats("v").max_value for _, zm in ordered]
        assert maxes == sorted(maxes, reverse=True)

    def test_full_sort_asc_by_min(self):
        rng = random.Random(0)
        values = list(range(100))
        rng.shuffle(values)
        scan_set = make_scan_set(values)
        ordered = OrderStrategy.FULL_SORT.order(scan_set, "v", False)
        mins = [zm.stats("v").min_value for _, zm in ordered]
        assert mins == sorted(mins)

    def test_none_keeps_order(self):
        scan_set = make_scan_set(list(range(50)))
        ordered = OrderStrategy.NONE.order(scan_set, "v", True)
        assert ordered.partition_ids == scan_set.partition_ids


class TestBoundaryInit:
    def test_kth_max_candidate(self):
        # 10 sorted partitions, all fully matching, k=3 -> the 3rd
        # largest max is partition [70..79]'s 79.
        scan_set = make_scan_set(list(range(100)))
        boundary = initialize_boundary(
            scan_set, scan_set.partition_ids, "v", 3, desc=True)
        assert boundary.is_active
        # cumulative-min candidate is stronger here: top partition has
        # 10 rows >= 90, so boundary = 90.
        assert boundary.rank == rank_of(90, True)

    def test_no_fully_matching_inactive(self):
        scan_set = make_scan_set(list(range(100)))
        boundary = initialize_boundary(scan_set, [], "v", 3, desc=True)
        assert not boundary.is_active

    def test_k_zero_inactive(self):
        scan_set = make_scan_set(list(range(100)))
        boundary = initialize_boundary(
            scan_set, scan_set.partition_ids, "v", 0, desc=True)
        assert not boundary.is_active

    def test_boundary_is_sound(self):
        """Initialized boundary never exceeds the true k-th value."""
        rng = random.Random(3)
        for trial in range(20):
            values = [rng.randrange(1000) for _ in range(200)]
            scan_set = make_scan_set(values, rows_per_partition=20)
            k = rng.choice([1, 5, 10, 25])
            boundary = initialize_boundary(
                scan_set, scan_set.partition_ids, "v", k, desc=True)
            if not boundary.is_active:
                continue
            kth = sorted(values, reverse=True)[k - 1]
            assert boundary.rank <= rank_of(kth, True)

    def test_nulls_excluded_from_cumulative(self):
        rows = [(None if i % 2 else i, "s") for i in range(100)]
        table = build_table("t", SCHEMA, rows, rows_per_partition=10)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        boundary = initialize_boundary(
            scan_set, scan_set.partition_ids, "v", 5, desc=True)
        if boundary.is_active:
            non_null = sorted((r[0] for r in rows
                               if r[0] is not None), reverse=True)
            assert boundary.rank <= rank_of(non_null[4], True)


class TestMinMaxSummary:
    def test_contains(self):
        summary = MinMaxSummary([5, 10, 20])
        assert summary.might_contain(10)
        assert summary.might_contain(7)  # false positive, allowed
        assert not summary.might_contain(4)
        assert not summary.might_contain(None)

    def test_overlap(self):
        summary = MinMaxSummary([5, 20])
        assert summary.might_overlap_range(18, 30)
        assert not summary.might_overlap_range(21, 30)

    def test_empty(self):
        summary = MinMaxSummary([None, None])
        assert summary.is_empty
        assert not summary.might_overlap_range(0, 100)


class TestRangeSetSummary:
    def test_exact_when_few_values(self):
        summary = RangeSetSummary([1, 5, 9], max_ranges=8)
        assert summary.might_contain(5)
        assert not summary.might_contain(4)

    def test_gap_pruning(self):
        # Two clusters with a big gap: the gap is preserved.
        values = list(range(0, 50)) + list(range(1000, 1050))
        summary = RangeSetSummary(values, max_ranges=4)
        assert summary.might_overlap_range(10, 20)
        assert not summary.might_overlap_range(200, 800)

    def test_never_false_negative(self):
        rng = random.Random(1)
        values = sorted(rng.sample(range(10_000), 500))
        summary = RangeSetSummary(values, max_ranges=16)
        for v in values:
            assert summary.might_contain(v)

    def test_max_ranges_respected(self):
        summary = RangeSetSummary(range(1000), max_ranges=16)
        assert len(summary.ranges) <= 16

    def test_strings_fall_back_to_single_range(self):
        summary = RangeSetSummary(
            [f"v{i}" for i in range(100)], max_ranges=4)
        assert len(summary.ranges) == 1
        assert summary.might_contain("v50")

    def test_invalid_max_ranges(self):
        with pytest.raises(ValueError):
            RangeSetSummary([1], max_ranges=0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = random.Random(2)
        values = [rng.randrange(10**9) for _ in range(2000)]
        bloom = BloomFilter(expected_items=2000, fpp=0.01)
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)

    def test_false_positive_rate_reasonable(self):
        rng = random.Random(3)
        values = set(rng.randrange(10**9) for _ in range(5000))
        bloom = BloomFilter(expected_items=5000, fpp=0.01)
        bloom.add_all(values)
        probes = [rng.randrange(10**9) for _ in range(5000)]
        false_positives = sum(
            1 for p in probes
            if p not in values and bloom.might_contain(p))
        assert false_positives / len(probes) < 0.05

    def test_range_probe_small_integer_range(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add_all([100, 200])
        assert bloom.might_overlap_range(95, 105)
        assert not bloom.might_overlap_range(300, 400)

    def test_range_probe_wide_range_says_maybe(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add(5)
        assert bloom.might_overlap_range(0, 10**9)

    def test_strings(self):
        bloom = BloomFilter(expected_items=3)
        bloom.add_all(["a", "b"])
        assert bloom.might_contain("a")

    def test_invalid_fpp(self):
        with pytest.raises(ValueError):
            BloomFilter(10, fpp=1.5)


class TestJoinPruner:
    def probe_scan_set(self):
        # 10 partitions of sorted fk values 0..99
        return make_scan_set(list(range(100)))

    def test_prunes_non_overlapping(self):
        summary = build_summary([5, 6, 95], kind="rangeset")
        pruner = JoinPruner("v", summary)
        result = pruner.prune(self.probe_scan_set())
        assert result.after == 2  # [0..9] and [90..99]

    def test_empty_build_side_prunes_everything(self):
        summary = build_summary([], kind="rangeset")
        pruner = JoinPruner("v", summary)
        result = pruner.prune(self.probe_scan_set())
        assert result.after == 0
        assert result.pruning_ratio == 1.0

    def test_never_prunes_partition_with_matches(self):
        rng = random.Random(5)
        build_values = rng.sample(range(100), 20)
        summary = build_summary(build_values, kind="rangeset")
        pruner = JoinPruner("v", summary)
        result = pruner.prune(self.probe_scan_set())
        kept = set(result.kept.partition_ids)
        for pid, zm in self.probe_scan_set():
            stats = zm.stats("v")
            has_match = any(stats.min_value <= v <= stats.max_value
                            for v in build_values)
            if has_match:
                # same partition contents, ids differ between scan set
                # builds; compare by range instead
                assert any(
                    zm2.stats("v").min_value == stats.min_value
                    for pid2, zm2 in result.kept)

    def test_all_null_probe_partition_pruned(self):
        rows = [(None, "s")] * 10
        table = build_table("t", SCHEMA, rows, rows_per_partition=10)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        summary = build_summary([1, 2, 3], kind="rangeset")
        result = JoinPruner("v", summary).prune(scan_set)
        assert result.after == 0

    def test_missing_stats_kept(self):
        scan_set = self.probe_scan_set()
        stripped = ScanSet((pid, zm.without_stats())
                           for pid, zm in scan_set)
        summary = build_summary([5], kind="rangeset")
        result = JoinPruner("v", summary).prune(stripped)
        assert result.after == len(stripped)

    @pytest.mark.parametrize("kind", ["minmax", "rangeset", "bloom"])
    def test_all_summary_kinds(self, kind):
        summary = build_summary([5, 95], kind=kind)
        pruner = JoinPruner("v", summary)
        result = pruner.prune(self.probe_scan_set())
        # all kinds keep at least the two matching partitions
        assert result.after >= 2

    def test_minmax_weaker_than_rangeset(self):
        values = [5, 95]
        minmax = JoinPruner("v", build_summary(values, "minmax")).prune(
            self.probe_scan_set())
        rangeset = JoinPruner("v", build_summary(
            values, "rangeset")).prune(self.probe_scan_set())
        assert rangeset.after <= minmax.after

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_summary([1], kind="hyperloglog")


class TestFullyMatchingFirstStrategy:
    def make_table(self):
        # values 0..99 sorted into 10 partitions
        rows = [(v, f"s{v}") for v in range(100)]
        return build_table("t", SCHEMA, rows, rows_per_partition=10)

    def test_fully_matching_partitions_lead(self):
        table = self.make_table()
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        # pretend the two *lowest*-value partitions are fully matching
        fm = scan_set.partition_ids[:2]
        ordered = OrderStrategy.FULLY_MATCHING_FIRST.order(
            scan_set, "v", True, fully_matching=fm)
        assert set(ordered.partition_ids[:2]) == set(fm)
        # within each group, best-rank order still applies
        fm_maxes = [ordered.zone_map(pid).stats("v").max_value
                    for pid in ordered.partition_ids[:2]]
        assert fm_maxes == sorted(fm_maxes, reverse=True)
        rest_maxes = [ordered.zone_map(pid).stats("v").max_value
                      for pid in ordered.partition_ids[2:]]
        assert rest_maxes == sorted(rest_maxes, reverse=True)

    def test_without_fm_equals_full_sort(self):
        table = self.make_table()
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        a = OrderStrategy.FULLY_MATCHING_FIRST.order(
            scan_set, "v", True)
        b = OrderStrategy.FULL_SORT.order(scan_set, "v", True)
        assert a.partition_ids == b.partition_ids

    def test_selective_filter_scenario_fills_heap_early(self):
        """§5.3's caution: under selective filters, naive sorting can
        process many non-matching partitions before the heap fills;
        fully-matching-first avoids that."""
        import random as _random

        from repro.engine.context import ExecContext
        from repro.engine.executor import execute
        from repro.engine.operators import Filter as FilterOp
        from repro.engine.operators import Scan, TopK
        from repro.expr.ast import And, Compare, col, lit
        from repro.pruning.filter_pruning import FilterPruner
        from repro.storage.storage_layer import StorageLayer

        rng = _random.Random(0)
        # v sorted; s encodes a filter matching only low-v rows
        rows = [(v, "hit" if v < 200 else "miss")
                for v in range(2000)]
        schema = Schema.of(v=DataType.INTEGER, s=DataType.VARCHAR)
        table = build_table("t", schema, rows, rows_per_partition=50)
        storage = StorageLayer()
        storage.put_all(table.partitions)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        predicate = Compare("=", col("s"), lit("hit"))
        pruned = FilterPruner(predicate, schema).prune(scan_set)

        def run(strategy):
            ctx = ExecContext(storage)
            boundary = Boundary(desc=True)
            ordered = strategy.order(
                pruned.kept, "v", True,
                fully_matching=pruned.fully_matching_ids)
            scan = Scan(ctx, "t", schema, ordered)
            scan.attach_topk_pruner(TopKPruner("v", boundary))
            filt = FilterOp(ctx, scan, predicate)
            topk = TopK(ctx, filt, "v", 5, desc=True,
                        boundary=boundary)
            result = execute(topk, ctx)
            return [r[0] for r in result.rows], \
                ctx.profile.scans[0].partitions_loaded

        fm_rows, fm_loaded = run(
            OrderStrategy.FULLY_MATCHING_FIRST)
        sort_rows, sort_loaded = run(OrderStrategy.FULL_SORT)
        assert fm_rows == sort_rows == [199, 198, 197, 196, 195]
        assert fm_loaded <= sort_loaded
