"""Tests for catalog persistence (save/load)."""

import datetime

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.errors import StorageError
from repro.persistence import load_catalog, save_catalog


def make_catalog():
    catalog = Catalog(rows_per_partition=25)
    schema = Schema.of(ts=DataType.INTEGER, name=DataType.VARCHAR,
                       score=DataType.DOUBLE, flag=DataType.BOOLEAN,
                       day=DataType.DATE)
    rows = []
    for i in range(100):
        rows.append((
            i,
            None if i % 10 == 0 else f"name-{i}",
            None if i % 7 == 0 else i * 1.5,
            i % 2 == 0,
            datetime.date(2024, 1, 1) + datetime.timedelta(days=i),
        ))
    catalog.create_table_from_rows("events", schema, rows,
                                   layout=Layout.sorted_by("ts"))
    catalog.create_table_from_rows(
        "dims", Schema.of(k=DataType.INTEGER, v=DataType.VARCHAR),
        [(i, f"v{i}") for i in range(10)])
    return catalog


class TestRoundtrip:
    def test_rows_survive(self, tmp_path):
        original = make_catalog()
        save_catalog(original, tmp_path / "cat")
        loaded = load_catalog(tmp_path / "cat")
        for name in ("events", "dims"):
            assert loaded.tables[name].to_rows() == \
                original.tables[name].to_rows()

    def test_partition_structure_preserved(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.tables["events"].partition_ids == \
            original.tables["events"].partition_ids
        assert loaded.rows_per_partition == 25

    def test_pruning_works_after_load(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        result = loaded.sql("SELECT * FROM events WHERE ts >= 90")
        assert result.num_rows == 10
        assert result.profile.scans[0].filter_result.after == 1

    def test_queries_agree(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        sql = ("SELECT * FROM events WHERE flag = TRUE "
               "ORDER BY score DESC LIMIT 5")
        assert loaded.sql(sql).rows == original.sql(sql).rows

    def test_new_partitions_do_not_collide(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        existing = set(loaded.tables["events"].partition_ids)
        new_ids = loaded.insert("events",
                                [(1000, "x", 1.0, True,
                                  datetime.date(2025, 1, 1))])
        assert not (set(new_ids) & existing)

    def test_empty_strings_and_nulls(self, tmp_path):
        catalog = Catalog(rows_per_partition=4)
        schema = Schema.of(s=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "t", schema, [("",), (None,), ("x",), ("",)])
        catalog.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.tables["t"].to_rows() == \
            [("",), (None,), ("x",), ("",)]


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_catalog(tmp_path / "nope")

    def test_bad_version(self, tmp_path):
        import json

        directory = tmp_path / "cat"
        directory.mkdir()
        with open(directory / "manifest.json", "w") as handle:
            json.dump({"version": 99, "tables": {}}, handle)
        with pytest.raises(StorageError):
            load_catalog(directory)

    def test_dml_after_load(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        from repro.expr.ast import Compare, col, lit

        deleted = loaded.delete_where(
            "events", Compare("<", col("ts"), lit(10)))
        assert deleted == 10
        assert loaded.sql("SELECT count(*) AS n FROM events") \
            .rows == [(90,)]


class TestAtomicSave:
    def test_crash_mid_resave_preserves_old_snapshot(
            self, tmp_path, monkeypatch):
        """Regression: ``save_catalog`` used to write into the target
        directory in place, so dying mid-save left a half-written,
        unloadable snapshot. Now the old copy survives any crash."""
        import numpy as np

        original = make_catalog()
        save_catalog(original, tmp_path / "cat")
        before_events = original.tables["events"].to_rows()

        # Grow the catalog, then kill the re-save midway through
        # writing its second table.
        original.insert("dims", [(100, "added-after-save")])
        real_savez = np.savez_compressed
        calls = {"n": 0}

        def dying_savez(path, **arrays):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise OSError("disk full mid-save")
            return real_savez(path, **arrays)

        monkeypatch.setattr(np, "savez_compressed", dying_savez)
        with pytest.raises(OSError):
            save_catalog(original, tmp_path / "cat")
        monkeypatch.undo()

        # The pre-save snapshot is intact and loadable.
        loaded = load_catalog(tmp_path / "cat")
        assert loaded.tables["events"].to_rows() == before_events
        assert len(loaded.tables["dims"].to_rows()) == 10

        # The leftover staging directory does not poison a retry.
        save_catalog(original, tmp_path / "cat")
        retried = load_catalog(tmp_path / "cat")
        assert len(retried.tables["dims"].to_rows()) == 11

    def test_crash_during_first_save_leaves_no_target(
            self, tmp_path, monkeypatch):
        import numpy as np

        original = make_catalog()

        def dying_savez(path, **arrays):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", dying_savez)
        with pytest.raises(OSError):
            save_catalog(original, tmp_path / "cat")
        monkeypatch.undo()
        assert not (tmp_path / "cat").exists()
        with pytest.raises(StorageError):
            load_catalog(tmp_path / "cat")
        save_catalog(original, tmp_path / "cat")  # retry succeeds
        assert load_catalog(tmp_path / "cat").tables.keys() == \
            original.tables.keys()


class TestLoadFailureModes:
    """Every broken-snapshot shape raises a typed StorageError, never
    a bare KeyError/OSError/BadZipFile."""

    def _saved(self, tmp_path):
        save_catalog(make_catalog(), tmp_path / "cat")
        return tmp_path / "cat"

    def test_truncated_npz(self, tmp_path):
        root = self._saved(tmp_path)
        npz = root / "events.npz"
        npz.write_bytes(npz.read_bytes()[:100])
        with pytest.raises(StorageError, match="events"):
            load_catalog(root)

    def test_corrupt_npz(self, tmp_path):
        root = self._saved(tmp_path)
        (root / "events.npz").write_bytes(b"this is not a zip file")
        with pytest.raises(StorageError, match="events"):
            load_catalog(root)

    def test_missing_table_file(self, tmp_path):
        root = self._saved(tmp_path)
        (root / "events.npz").unlink()
        with pytest.raises(StorageError, match="events"):
            load_catalog(root)

    def test_undecodable_manifest_json(self, tmp_path):
        root = self._saved(tmp_path)
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(StorageError, match="manifest"):
            load_catalog(root)

    def test_manifest_not_a_mapping(self, tmp_path):
        import json

        root = self._saved(tmp_path)
        (root / "manifest.json").write_text(json.dumps([1, 2, 3]))
        with pytest.raises(StorageError, match="version"):
            load_catalog(root)

    def test_manifest_without_table_map(self, tmp_path):
        import json

        root = self._saved(tmp_path)
        (root / "manifest.json").write_text(
            json.dumps({"version": 1, "tables": "oops"}))
        with pytest.raises(StorageError, match="table map"):
            load_catalog(root)

    def test_manifest_references_key_absent_from_npz(self, tmp_path):
        import json

        root = self._saved(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["tables"]["events"]["partitions"].append(999_999)
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="events"):
            load_catalog(root)

    def test_malformed_schema_entry(self, tmp_path):
        import json

        root = self._saved(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["tables"]["events"]["schema"] = [["only-a-name"]]
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="malformed manifest"):
            load_catalog(root)

    def test_unknown_dtype_in_schema(self, tmp_path):
        import json

        root = self._saved(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["tables"]["events"]["schema"][0][1] = "quaternion"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="malformed manifest"):
            load_catalog(root)
