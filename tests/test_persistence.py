"""Tests for catalog persistence (save/load)."""

import datetime

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.errors import StorageError
from repro.persistence import load_catalog, save_catalog


def make_catalog():
    catalog = Catalog(rows_per_partition=25)
    schema = Schema.of(ts=DataType.INTEGER, name=DataType.VARCHAR,
                       score=DataType.DOUBLE, flag=DataType.BOOLEAN,
                       day=DataType.DATE)
    rows = []
    for i in range(100):
        rows.append((
            i,
            None if i % 10 == 0 else f"name-{i}",
            None if i % 7 == 0 else i * 1.5,
            i % 2 == 0,
            datetime.date(2024, 1, 1) + datetime.timedelta(days=i),
        ))
    catalog.create_table_from_rows("events", schema, rows,
                                   layout=Layout.sorted_by("ts"))
    catalog.create_table_from_rows(
        "dims", Schema.of(k=DataType.INTEGER, v=DataType.VARCHAR),
        [(i, f"v{i}") for i in range(10)])
    return catalog


class TestRoundtrip:
    def test_rows_survive(self, tmp_path):
        original = make_catalog()
        save_catalog(original, tmp_path / "cat")
        loaded = load_catalog(tmp_path / "cat")
        for name in ("events", "dims"):
            assert loaded.tables[name].to_rows() == \
                original.tables[name].to_rows()

    def test_partition_structure_preserved(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.tables["events"].partition_ids == \
            original.tables["events"].partition_ids
        assert loaded.rows_per_partition == 25

    def test_pruning_works_after_load(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        result = loaded.sql("SELECT * FROM events WHERE ts >= 90")
        assert result.num_rows == 10
        assert result.profile.scans[0].filter_result.after == 1

    def test_queries_agree(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        sql = ("SELECT * FROM events WHERE flag = TRUE "
               "ORDER BY score DESC LIMIT 5")
        assert loaded.sql(sql).rows == original.sql(sql).rows

    def test_new_partitions_do_not_collide(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        existing = set(loaded.tables["events"].partition_ids)
        new_ids = loaded.insert("events",
                                [(1000, "x", 1.0, True,
                                  datetime.date(2025, 1, 1))])
        assert not (set(new_ids) & existing)

    def test_empty_strings_and_nulls(self, tmp_path):
        catalog = Catalog(rows_per_partition=4)
        schema = Schema.of(s=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "t", schema, [("",), (None,), ("x",), ("",)])
        catalog.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.tables["t"].to_rows() == \
            [("",), (None,), ("x",), ("",)]


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_catalog(tmp_path / "nope")

    def test_bad_version(self, tmp_path):
        import json

        directory = tmp_path / "cat"
        directory.mkdir()
        with open(directory / "manifest.json", "w") as handle:
            json.dump({"version": 99, "tables": {}}, handle)
        with pytest.raises(StorageError):
            load_catalog(directory)

    def test_dml_after_load(self, tmp_path):
        original = make_catalog()
        original.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        from repro.expr.ast import Compare, col, lit

        deleted = loaded.delete_where(
            "events", Compare("<", col("ts"), lit(10)))
        assert deleted == 10
        assert loaded.sql("SELECT count(*) AS n FROM events") \
            .rows == [(90,)]
