"""Property-based tests for auxiliary structures: pruning-tree
equivalence, scan-set serialization, membership filters, string
truncation, and Iceberg hierarchical pruning."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.expr import ast
from repro.expr.eval import evaluate_predicate
from repro.formats import IcebergTable, ParquetFile
from repro.pruning.base import ScanSet
from repro.pruning.filter_pruning import FilterPruner
from repro.pruning.filters import CuckooFilter, XorFilter
from repro.pruning.pruning_tree import PruningTree, TreeConfig
from repro.storage.builder import build_table
from repro.storage.column import Column
from repro.storage.micropartition import MicroPartition
from repro.storage.zonemap import truncate_string_stats
from repro.types import DataType, Schema

SCHEMA = Schema.of(a=DataType.INTEGER, b=DataType.INTEGER)


def comparison(column: str, op: str, value: int) -> ast.Compare:
    return ast.Compare(op, ast.col(column), ast.lit(value))


comparisons = st.builds(
    comparison,
    st.sampled_from(["a", "b"]),
    st.sampled_from(["<", "<=", "=", ">", ">=", "<>"]),
    st.integers(-30, 30),
)


def boolean_tree(depth: int = 2):
    if depth == 0:
        return comparisons
    sub = boolean_tree(depth - 1)
    return st.one_of(
        comparisons,
        st.lists(sub, min_size=2, max_size=3).map(ast.And),
        st.lists(sub, min_size=2, max_size=3).map(ast.Or),
    )


rows_strategy = st.lists(
    st.tuples(st.integers(-25, 25), st.integers(-25, 25)),
    min_size=1, max_size=60)


@settings(max_examples=150, deadline=None)
@given(predicate=boolean_tree(), rows=rows_strategy,
       reorder=st.booleans(), cutoff=st.booleans())
def test_pruning_tree_never_over_prunes(predicate, rows, reorder,
                                        cutoff):
    """The adaptive tree keeps a superset of the plain pruner's keeps,
    and never drops a partition containing a matching row."""
    table = build_table("t", SCHEMA, rows, rows_per_partition=5)
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)
    config = TreeConfig(enable_reorder=reorder, enable_cutoff=cutoff,
                        reorder_interval=4, cutoff_min_samples=4)
    tree_kept = set(PruningTree(predicate, SCHEMA, config)
                    .prune(scan_set).kept.partition_ids)
    plain_kept = set(FilterPruner(predicate, SCHEMA,
                                  detect_fully_matching=False)
                     .prune(scan_set).kept.partition_ids)
    assert plain_kept <= tree_kept
    for partition in table.partitions:
        mask = evaluate_predicate(predicate, partition.columns(),
                                  SCHEMA)
        if mask.any():
            assert partition.partition_id in tree_kept


@settings(max_examples=200, deadline=None)
@given(ids=st.lists(st.integers(0, 2**40), unique=True, max_size=64))
def test_scan_set_serialization_roundtrip(ids):
    zone_map = MicroPartition.from_rows(SCHEMA, [(1, 2)]).zone_map
    scan_set = ScanSet((pid, zone_map) for pid in ids)
    data = scan_set.serialize()
    restored = ScanSet.deserialize(data, lambda pid: zone_map)
    assert restored.partition_ids == ids


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.one_of(st.integers(-10**9, 10**9),
                                 st.text(max_size=10)),
                       max_size=300))
def test_cuckoo_and_xor_no_false_negatives(values):
    cuckoo = CuckooFilter(expected_items=max(1, len(values)))
    assert cuckoo.add_all(values)
    xor = XorFilter(values)
    for value in values:
        assert cuckoo.might_contain(value)
        assert xor.might_contain(value)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x10ffff),
    max_size=12), min_size=1, max_size=8),
    max_length=st.integers(1, 6))
def test_string_truncation_preserves_bounds(values, max_length):
    schema = Schema.of(s=DataType.VARCHAR)
    part = MicroPartition.from_rows(schema, [(v,) for v in values])
    stats = part.zone_map.stats("s")
    truncated = truncate_string_stats(stats, max_length)
    for value in values:
        assert truncated.min_value <= value <= truncated.max_value


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(-100, 100)),
                     min_size=1, max_size=200),
       lo=st.integers(-120, 120), width=st.integers(0, 60))
def test_iceberg_plan_reads_exactly_matching_rows(rows, lo, width):
    schema = Schema.of(x=DataType.INTEGER)
    file = ParquetFile.write(schema, rows, row_group_rows=32,
                             page_rows=8)
    table = IcebergTable.from_files("t", schema, [file])
    predicate = ast.And(
        ast.Compare(">=", ast.col("x"), ast.lit(lo)),
        ast.Compare("<=", ast.col("x"), ast.lit(lo + width)))
    plan = table.plan_scan(predicate)
    got = sorted(r[0] for r in table.read_plan_rows(plan, predicate))
    expected = sorted(v for (v,) in rows if lo <= v <= lo + width)
    assert got == expected


class _NaiveRangeSet:
    """Linear-scan oracle for RangeSetSummary's bisect probes."""

    def __init__(self, ranges):
        self.ranges = ranges

    def might_overlap_range(self, lo, hi):
        return any(r_lo <= hi and lo <= r_hi
                   for r_lo, r_hi in self.ranges)

    def might_contain(self, value):
        return self.might_overlap_range(value, value)


@settings(max_examples=300, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), max_size=120),
       max_ranges=st.integers(1, 12),
       probes=st.lists(st.tuples(st.integers(-1100, 1100),
                                 st.integers(-1100, 1100)),
                       max_size=25))
def test_rangeset_bisect_equals_naive_oracle(values, max_ranges,
                                             probes):
    from repro.pruning.summaries import RangeSetSummary

    summary = RangeSetSummary(values, max_ranges=max_ranges)
    naive = _NaiveRangeSet(summary.ranges)
    for a, b in probes:
        lo, hi = min(a, b), max(a, b)
        assert (summary.might_overlap_range(lo, hi)
                == naive.might_overlap_range(lo, hi)), (lo, hi)
        assert (summary.might_contain(a)
                == naive.might_contain(a)), a
    # values inside the summary are never false negatives
    for value in values:
        assert summary.might_contain(value)
