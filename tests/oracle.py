"""A reference interpreter for logical plans.

Executes a logical plan over fully-materialized tables with no
partitioning, no pruning, no vectorized operators — nested loops and
dictionaries only. Differential tests compare the engine (with every
pruning technique enabled) against this oracle on generated workloads.

Expression evaluation is shared with the engine (it defines the SQL
semantics); everything above expressions — pruning, scan sets,
operators, the compiler — is reimplemented independently here.
"""

from __future__ import annotations

from typing import Any

from repro.catalog import Catalog
from repro.engine.chunk import Chunk
from repro.expr.eval import evaluate, evaluate_predicate
from repro.plan import logical as L
from repro.pruning.topk_pruning import rank_of
from repro.types import Schema


def run_plan(plan: L.LogicalNode, catalog: Catalog
             ) -> tuple[Schema, list[tuple[Any, ...]]]:
    """Evaluate a logical plan; returns (schema, rows)."""
    resolver = catalog.schema_of
    if isinstance(plan, L.LogicalScan):
        schema = resolver(plan.table)
        rows = catalog.tables[plan.table].to_rows()
        if plan.predicate is not None:
            rows = _filter_rows(schema, rows, plan.predicate)
        return schema, rows
    if isinstance(plan, L.LogicalFilter):
        schema, rows = run_plan(plan.child, catalog)
        return schema, _filter_rows(schema, rows, plan.predicate)
    if isinstance(plan, L.LogicalProject):
        child_schema, rows = run_plan(plan.child, catalog)
        out_schema = plan.output_schema(resolver)
        if not rows:
            return out_schema, []
        chunk = Chunk.from_rows(child_schema, rows)
        columns = [
            evaluate(expr, chunk.columns, child_schema).to_pylist()
            for expr in plan.exprs]
        return out_schema, list(zip(*columns))
    if isinstance(plan, L.LogicalJoin):
        return _run_join(plan, catalog)
    if isinstance(plan, L.LogicalAggregate):
        return _run_aggregate(plan, catalog)
    if isinstance(plan, L.LogicalSort):
        schema, rows = run_plan(plan.child, catalog)
        indexes = [schema.index_of(k.column) for k in plan.keys]

        def row_rank(row):
            return tuple(rank_of(row[i], k.desc)
                         for i, k in zip(indexes, plan.keys))

        return schema, sorted(rows, key=row_rank, reverse=True)
    if isinstance(plan, L.LogicalLimit):
        schema, rows = run_plan(plan.child, catalog)
        return schema, rows[plan.offset:plan.offset + plan.k]
    raise NotImplementedError(type(plan).__name__)


def _filter_rows(schema: Schema, rows, predicate):
    if not rows:
        return []
    chunk = Chunk.from_rows(schema, rows)
    mask = evaluate_predicate(predicate, chunk.columns, schema)
    return [row for row, keep in zip(rows, mask) if keep]


def _run_join(plan: L.LogicalJoin, catalog: Catalog):
    left_schema, left_rows = run_plan(plan.left, catalog)
    right_schema, right_rows = run_plan(plan.right, catalog)
    schema = left_schema.concat(right_schema)
    left_index = left_schema.index_of(plan.left_key)
    right_index = right_schema.index_of(plan.right_key)
    null_pad = (None,) * len(right_schema)
    out = []
    for left_row in left_rows:
        key = left_row[left_index]
        matches = []
        if key is not None:
            matches = [r for r in right_rows
                       if r[right_index] == key]
        if matches:
            for right_row in matches:
                out.append(left_row + right_row)
        elif plan.join_type == "left_outer":
            out.append(left_row + null_pad)
    return schema, out


def _run_aggregate(plan: L.LogicalAggregate, catalog: Catalog):
    child_schema, rows = run_plan(plan.child, catalog)
    out_schema = plan.output_schema(catalog.schema_of)
    key_indexes = [child_schema.index_of(k) for k in plan.group_keys]
    agg_indexes = [child_schema.index_of(a.input)
                   if a.input is not None else None
                   for a in plan.aggs]
    groups: dict[tuple, list[list]] = {}
    for row in rows:
        key = tuple(row[i] for i in key_indexes)
        state = groups.setdefault(key, [[] for _ in plan.aggs])
        for slot, index in enumerate(agg_indexes):
            state[slot].append(row[index] if index is not None else 0)
    out = []
    for key, state in groups.items():
        values = []
        for agg, collected in zip(plan.aggs, state):
            values.append(_aggregate_value(agg.func, collected))
        out.append(key + tuple(values))
    return out_schema, out


def _aggregate_value(func: str, collected: list):
    non_null = [v for v in collected if v is not None]
    if func == "count_star":
        return len(collected)
    if func == "count":
        return len(non_null)
    if not non_null:
        return None
    if func == "sum":
        return sum(non_null)
    if func == "min":
        return min(non_null)
    if func == "max":
        return max(non_null)
    if func == "avg":
        return sum(non_null) / len(non_null)
    raise NotImplementedError(func)
