"""Tests for the concurrent query service layer (repro.service).

Covers the admission controller (slots, bounded queue, timeout,
cancellation, backpressure), the version-keyed result cache, the
elastic warehouse pool, table version bookkeeping, thread-safe I/O
accounting, and — the acceptance bar — a mixed SELECT + DML stress
test whose served results are checked against the single-threaded
oracle with zero mismatches and no stale cache reads.
"""

from __future__ import annotations

import threading
import time

import pytest

from oracle import run_plan
from repro import Catalog, DataType, Layout, ParseError, Schema
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    CancelToken,
    QueryCancelled,
    QueryService,
    QueryStatus,
    QueueWaitTimeout,
    ReadWriteLock,
    ResultCache,
    WarehousePool,
)
from repro.sql import is_select, normalize_sql, referenced_tables

from conftest import make_events_rows

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)


def make_catalog(n_rows: int = 2000,
                 rows_per_partition: int = 100) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    return catalog


# ----------------------------------------------------------------------
# SQL normalization
# ----------------------------------------------------------------------
class TestNormalize:
    def test_whitespace_case_and_comments_collapse(self):
        a = normalize_sql("SELECT * FROM t  WHERE x = 1;")
        b = normalize_sql("select *\n  from T -- comment\n where X=1")
        assert a == b

    def test_string_literals_keep_case(self):
        a = normalize_sql("SELECT * FROM t WHERE tag = 'ABC'")
        b = normalize_sql("SELECT * FROM t WHERE tag = 'abc'")
        assert a != b

    def test_distinct_literals_stay_distinct(self):
        assert normalize_sql("SELECT * FROM t WHERE x = 1") \
            != normalize_sql("SELECT * FROM t WHERE x = 2")

    def test_referenced_tables(self):
        assert referenced_tables(
            "SELECT * FROM Big JOIN dim AS d ON fk = d.key "
            "WHERE d.attr = 'x'") == ("big", "dim")
        assert referenced_tables("DELETE FROM T WHERE x = 1") == ("t",)

    def test_is_select(self):
        assert is_select("SELECT 1 FROM t") is True
        assert is_select("DELETE FROM t") is False
        assert is_select("UPDATE t SET x = 1") is False


# ----------------------------------------------------------------------
# Table versions
# ----------------------------------------------------------------------
class TestTableVersions:
    def test_dml_and_recluster_bump(self):
        catalog = make_catalog(400)
        assert catalog.table_version("events") == 1
        catalog.sql("DELETE FROM events WHERE ts < 10")
        assert catalog.table_version("events") == 2
        catalog.sql("UPDATE events SET score = 0 WHERE ts < 50")
        assert catalog.table_version("events") == 3
        catalog.insert("events", make_events_rows(10))
        assert catalog.table_version("events") == 4
        catalog.recluster("events", "score")
        assert catalog.table_version("events") == 5

    def test_noop_dml_does_not_bump(self):
        catalog = make_catalog(400)
        catalog.sql("DELETE FROM events WHERE ts > 999999")
        assert catalog.table_version("events") == 1

    def test_change_listener_fires(self):
        catalog = make_catalog(400)
        seen: list[tuple[str, int]] = []
        catalog.add_change_listener(
            lambda name, version: seen.append((name, version)))
        catalog.sql("DELETE FROM events WHERE ts < 10")
        assert seen == [("events", 2)]

    def test_explain_reports_versions(self):
        catalog = make_catalog(400)
        assert "table versions: events=v1" in \
            catalog.explain("SELECT * FROM events WHERE ts < 10")
        catalog.sql("DELETE FROM events WHERE ts < 10")
        assert "table versions: events=v2" in \
            catalog.explain("SELECT * FROM events WHERE ts < 10")


# ----------------------------------------------------------------------
# Thread-safe IOStats
# ----------------------------------------------------------------------
class TestIOStatsThreadSafety:
    def test_concurrent_loads_lose_no_updates(self):
        catalog = make_catalog(2000)
        ids = catalog.tables["events"].partition_ids
        loads_per_thread = 50
        n_threads = 8

        def hammer():
            for i in range(loads_per_thread):
                catalog.storage.load(ids[i % len(ids)])

        catalog.storage.stats.reset()
        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = catalog.storage.stats.snapshot()
        expected = n_threads * loads_per_thread
        assert stats.requests == expected
        assert stats.partitions_loaded == expected
        assert len(stats.loaded_partition_ids) == expected
        assert stats.bytes_read > 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_slots_and_fifo_handoff(self):
        controller = AdmissionController(slots=1, max_queue=4)
        assert controller.acquire() == 0.0
        order: list[int] = []

        def wait_then_release(tag: int):
            controller.acquire(timeout=5)
            order.append(tag)
            controller.release()

        threads = []
        for tag in range(3):
            t = threading.Thread(target=wait_then_release,
                                 args=(tag,))
            t.start()
            threads.append(t)
            time.sleep(0.02)  # deterministic queue order
        assert controller.queue_depth == 3
        controller.release()
        for t in threads:
            t.join()
        assert order == [0, 1, 2]
        assert controller.free_slots == 1

    def test_reject_when_queue_full(self):
        controller = AdmissionController(slots=1, max_queue=0)
        controller.acquire()
        with pytest.raises(AdmissionRejected):
            controller.acquire()
        controller.release()

    def test_queue_wait_timeout(self):
        controller = AdmissionController(slots=1, max_queue=4)
        controller.acquire()
        with pytest.raises(QueueWaitTimeout):
            controller.acquire(timeout=0.05)
        assert controller.queue_depth == 0
        controller.release()
        # the slot is reusable after the timed-out waiter withdrew
        assert controller.acquire() == 0.0

    def test_cancel_while_queued(self):
        controller = AdmissionController(slots=1, max_queue=4)
        controller.acquire()
        token = CancelToken()
        errors: list[BaseException] = []

        def waiter():
            try:
                controller.acquire(timeout=5, token=token)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        token.cancel()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], QueryCancelled)
        # cancelled waiter must not consume the slot
        controller.release()
        assert controller.free_slots == 1

    def test_release_skips_cancelled_waiters(self):
        controller = AdmissionController(slots=1, max_queue=4)
        controller.acquire()
        cancelled = CancelToken()
        cancelled._cancelled = True  # queued-then-cancelled waiter
        got: list[float] = []

        def doomed_waiter():
            with pytest.raises(QueryCancelled):
                controller.acquire(timeout=5, token=cancelled)

        t1 = threading.Thread(target=doomed_waiter)
        t1.start()
        time.sleep(0.02)
        t2 = threading.Thread(
            target=lambda: got.append(controller.acquire(timeout=5)))
        t2.start()
        time.sleep(0.02)
        controller.release()
        t1.join(timeout=2)
        t2.join(timeout=2)
        assert got and controller.running == 1
        controller.release()


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        active: list[str] = []
        trace: list[int] = []
        barrier = threading.Barrier(3)

        def reader():
            barrier.wait()
            with lock.read():
                active.append("r")
                time.sleep(0.05)
                trace.append(len(active))
                active.remove("r")

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers:
            t.start()
        barrier.wait()
        time.sleep(0.01)
        with lock.write():
            assert active == []  # both readers drained first
        for t in readers:
            t.join()
        assert max(trace) == 2  # the two readers overlapped


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def _result(self, n: int):
        from repro.catalog import QueryResult
        from repro.engine.context import QueryProfile

        return QueryResult(schema=Schema.of(x=DataType.INTEGER),
                           rows=[(n,)], profile=QueryProfile())

    def test_hit_and_stale_eviction(self):
        cache = ResultCache(max_entries=8)
        cache.store("k", self._result(1), {"t": 1})
        assert cache.lookup("k", {"t": 1}).rows == [(1,)]
        assert cache.lookup("k", {"t": 2}) is None  # stale
        assert cache.lookup("k", {"t": 2}) is None  # evicted
        assert cache.stats.hits == 1
        assert cache.stats.stale_evictions == 1

    def test_lru_capacity_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", self._result(1), {"t": 1})
        cache.store("b", self._result(2), {"t": 1})
        assert cache.lookup("a", {"t": 1}) is not None  # a now MRU
        cache.store("c", self._result(3), {"t": 1})
        assert cache.lookup("b", {"t": 1}) is None
        assert cache.lookup("a", {"t": 1}) is not None
        assert cache.stats.capacity_evictions == 1

    def test_invalidate_table(self):
        cache = ResultCache(max_entries=8)
        cache.store("q1", self._result(1), {"t": 1})
        cache.store("q2", self._result(2), {"t": 1, "u": 1})
        cache.store("q3", self._result(3), {"u": 1})
        assert cache.invalidate_table("t") == 2
        assert len(cache) == 1
        assert cache.lookup("q3", {"u": 1}) is not None


# ----------------------------------------------------------------------
# Warehouse pool
# ----------------------------------------------------------------------
class TestWarehousePool:
    def test_scale_out_when_saturated(self):
        pool = WarehousePool(slots_per_cluster=1, min_clusters=1,
                             max_clusters=3,
                             scale_out_queue_depth=0)
        c1, _ = pool.acquire()
        assert pool.n_clusters == 1
        c2, _ = pool.acquire()  # saturated -> new cluster
        assert pool.n_clusters == 2
        assert c1.name != c2.name
        assert [e.action for e in pool.events] == ["scale_out"]
        pool.release(c1)
        pool.release(c2)

    def test_scale_in_after_idle_checks(self):
        pool = WarehousePool(slots_per_cluster=1, min_clusters=1,
                             max_clusters=3,
                             scale_out_queue_depth=0,
                             scale_in_idle_checks=2)
        c1, _ = pool.acquire()
        c2, _ = pool.acquire()
        assert pool.n_clusters == 2
        pool.release(c1)
        pool.release(c2)  # idle check 1
        pool.poll()       # idle check 2 -> scale in
        assert pool.n_clusters == 1
        assert pool.events[-1].action == "scale_in"
        pool.poll()
        pool.poll()
        assert pool.n_clusters == 1  # never below min_clusters

    def test_least_loaded_routing(self):
        pool = WarehousePool(slots_per_cluster=2, min_clusters=2,
                             max_clusters=2)
        grabbed = [pool.acquire()[0].name for _ in range(4)]
        assert grabbed.count("cluster-0") == 2
        assert grabbed.count("cluster-1") == 2


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------
class TestQueryService:
    def test_sql_matches_catalog(self):
        catalog = make_catalog(1000)
        plain = Catalog(rows_per_partition=100)
        plain.create_table_from_rows(
            "events", SCHEMA, make_events_rows(1000),
            layout=Layout.sorted_by("ts"))
        service = QueryService(catalog)
        sql = "SELECT * FROM events WHERE ts BETWEEN 100 AND 220"
        assert sorted(service.sql(sql).rows) == \
            sorted(plain.sql(sql).rows)

    def test_repeated_query_hits_cache(self):
        service = QueryService(make_catalog(1000))
        sql = "SELECT count(*) AS c FROM events WHERE ts < 500"
        first = service.sql(sql)
        second = service.sql("select COUNT(*) as C from events "
                             "where ts < 500")
        assert first.rows == second.rows
        assert service.metrics.counter("result_cache_hits").value == 1
        assert service.metrics.cache_hit_ratio() > 0

    def test_dml_invalidates_cache(self):
        service = QueryService(make_catalog(1000))
        sql = "SELECT count(*) AS c FROM events WHERE ts < 500"
        assert service.sql(sql).rows == [(500,)]
        service.sql("DELETE FROM events WHERE ts < 100")
        refreshed = service.sql(sql)
        assert refreshed.rows == [(400,)]  # not the stale 500
        assert service.result_cache.stats.invalidations > 0

    def test_cache_disabled(self):
        service = QueryService(make_catalog(500),
                               enable_result_cache=False)
        sql = "SELECT count(*) AS c FROM events"
        assert service.sql(sql).rows == service.sql(sql).rows
        assert service.metrics.cache_hit_ratio() == 0.0

    def test_parse_error_surfaces(self):
        service = QueryService(make_catalog(200))
        with pytest.raises(ParseError):
            service.sql("SELEC nonsense")
        assert service.metrics.counter("queries_failed").value == 1

    def test_backpressure_rejects_with_typed_error(self):
        service = QueryService(make_catalog(200),
                               slots_per_cluster=1,
                               max_queue_per_cluster=0,
                               min_clusters=1, max_clusters=1)
        cluster, _ = service.pool.acquire()  # occupy the only slot
        try:
            with pytest.raises(AdmissionRejected):
                service.sql("SELECT count(*) FROM events")
            assert service.metrics.counter(
                "queries_rejected").value == 1
        finally:
            service.pool.release(cluster)

    def test_queue_timeout_is_typed(self):
        service = QueryService(make_catalog(200),
                               slots_per_cluster=1,
                               max_queue_per_cluster=4,
                               min_clusters=1, max_clusters=1)
        cluster, _ = service.pool.acquire()
        try:
            with pytest.raises(QueueWaitTimeout):
                service.sql("SELECT count(*) FROM events",
                            queue_timeout=0.05)
        finally:
            service.pool.release(cluster)

    def test_cancel_queued_query(self):
        service = QueryService(make_catalog(200),
                               slots_per_cluster=1,
                               max_queue_per_cluster=4,
                               min_clusters=1, max_clusters=1)
        cluster, _ = service.pool.acquire()
        try:
            handle = service.submit("SELECT count(*) FROM events")
            time.sleep(0.03)
            assert service.cancel(handle) is True
            with pytest.raises(QueryCancelled):
                service.result(handle, timeout=2)
            assert handle.status is QueryStatus.CANCELLED
        finally:
            service.pool.release(cluster)

    def test_async_submit_result(self):
        service = QueryService(make_catalog(500))
        handles = [service.submit(
            f"SELECT count(*) AS c FROM events WHERE ts < {100 * i}")
            for i in range(1, 5)]
        for i, handle in enumerate(handles, start=1):
            assert service.result(handle, timeout=10).rows == \
                [(100 * i,)]
            assert handle.status is QueryStatus.DONE

    def test_insert_through_service(self):
        service = QueryService(make_catalog(500))
        before = service.sql("SELECT count(*) AS c FROM events")
        service.insert("events",
                       [(10_000 + i, "alpha", 1.0, i)
                        for i in range(10)])
        after = service.sql("SELECT count(*) AS c FROM events")
        assert after.rows[0][0] == before.rows[0][0] + 10


# ----------------------------------------------------------------------
# Concurrent stress: mixed SELECT + DML vs the single-threaded oracle
# ----------------------------------------------------------------------
class TestConcurrentStress:
    """Acceptance: >= 8 concurrent clients, zero oracle mismatches,
    cache hit ratio > 0, no stale reads after DML invalidation.

    SELECT threads query the seed region (ts < 2000), which the DML
    threads never touch — each DML thread owns a disjoint ts band at
    ts >= 10_000 that it fills, mutates, and empties. Every SELECT
    answer is therefore independent of DML timing and must equal the
    oracle's answer on the seed data, even while partitions are being
    rewritten and the result cache is being invalidated underneath.
    """

    N_SELECT_THREADS = 8
    N_DML_THREADS = 4
    SELECTS_PER_THREAD = 25
    DML_ROUNDS = 6

    STABLE_QUERIES = [
        "SELECT * FROM events WHERE ts BETWEEN 150 AND 420",
        "SELECT * FROM events WHERE ts BETWEEN 1200 AND 1230",
        "SELECT count(*) AS c FROM events WHERE ts < 500",
        "SELECT category, count(*) AS c FROM events "
        "WHERE ts < 800 GROUP BY category",
        "SELECT min(ts) AS lo, max(ts) AS hi FROM events "
        "WHERE ts BETWEEN 300 AND 1700",
        "SELECT count(*) AS c FROM events "
        "WHERE category = 'alpha' AND ts < 2000",
        "SELECT * FROM events WHERE score >= 990000 AND ts < 2000",
        "SELECT * FROM events WHERE ts BETWEEN 60 AND 90 "
        "ORDER BY ts DESC LIMIT 10",
    ]

    def test_stress_mixed_select_dml(self):
        catalog = make_catalog(2000)
        service = QueryService(catalog, slots_per_cluster=4,
                               max_queue_per_cluster=64,
                               min_clusters=1, max_clusters=3,
                               scale_out_queue_depth=2)
        expected = {
            sql: sorted(run_plan(catalog.plan_sql(sql),
                                 catalog)[1])
            for sql in self.STABLE_QUERIES
        }
        mismatches: list[str] = []
        errors: list[BaseException] = []
        start = threading.Barrier(
            self.N_SELECT_THREADS + self.N_DML_THREADS)

        def select_worker(worker: int):
            start.wait()
            try:
                for i in range(self.SELECTS_PER_THREAD):
                    sql = self.STABLE_QUERIES[
                        (worker + i) % len(self.STABLE_QUERIES)]
                    got = sorted(service.sql(sql).rows)
                    if got != expected[sql]:
                        mismatches.append(sql)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def dml_worker(worker: int):
            start.wait()
            base = 10_000 + worker * 1_000
            try:
                for round_index in range(self.DML_ROUNDS):
                    rows = [(base + i, "dmlcat", 1.0, i)
                            for i in range(40)]
                    service.insert("events", rows)
                    service.sql(
                        f"UPDATE events SET score = score + 1 "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
                    service.sql(
                        f"DELETE FROM events "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=select_worker, args=(w,))
                   for w in range(self.N_SELECT_THREADS)]
        threads += [threading.Thread(target=dml_worker, args=(w,))
                    for w in range(self.N_DML_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert mismatches == []

        # Every DML band was emptied: the table equals the seed data.
        count_sql = "SELECT count(*) AS c FROM events"
        oracle_rows = run_plan(catalog.plan_sql(count_sql),
                               catalog)[1]
        assert service.sql(count_sql).rows == oracle_rows
        assert oracle_rows == [(2000,)]

        # The repeated stable queries produced real cache hits.
        assert service.metrics.counter(
            "result_cache_hits").value > 0
        assert service.metrics.cache_hit_ratio() > 0

        # Full accounting: every submitted query finished.
        metrics = service.metrics
        submitted = metrics.counter("queries_submitted").value
        finished = (metrics.counter("queries_completed").value
                    + metrics.counter("queries_failed").value
                    + metrics.counter("queries_cancelled").value)
        assert submitted == finished

    def test_no_stale_reads_after_dml(self):
        service = QueryService(make_catalog(1000))
        probe = "SELECT * FROM events WHERE ts >= 50000"
        assert service.sql(probe).num_rows == 0
        assert service.sql(probe).num_rows == 0  # cached now
        assert service.metrics.counter(
            "result_cache_hits").value == 1
        service.insert("events",
                       [(50_000 + i, "fresh", 0.5, i)
                        for i in range(25)])
        assert service.sql(probe).num_rows == 25  # not stale 0
        service.sql("DELETE FROM events WHERE ts >= 50000")
        assert service.sql(probe).num_rows == 0
