"""Tests for null-aware columnar vectors."""

import datetime

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.storage.column import Column, column_from_values
from repro.types import DataType


class TestConstruction:
    def test_from_pylist_ints(self):
        col = Column.from_pylist(DataType.INTEGER, [1, None, 3])
        assert len(col) == 3
        assert col.null_count() == 1
        assert col.to_pylist() == [1, None, 3]

    def test_from_pylist_strings(self):
        col = Column.from_pylist(DataType.VARCHAR, ["a", None, "c"])
        assert col.to_pylist() == ["a", None, "c"]

    def test_from_pylist_dates(self):
        d = datetime.date(2024, 11, 5)
        col = Column.from_pylist(DataType.DATE, [d, None])
        assert col.to_pylist() == [d, None]
        # stored internally as epoch days
        assert col.values[0] == (d - datetime.date(1970, 1, 1)).days

    def test_varchar_rejects_non_string(self):
        with pytest.raises(TypeMismatchError):
            Column.from_pylist(DataType.VARCHAR, [1])

    def test_boolean_rejects_non_bool(self):
        with pytest.raises(TypeMismatchError):
            Column.from_pylist(DataType.BOOLEAN, [1])

    def test_all_null(self):
        col = Column.all_null(DataType.DOUBLE, 4)
        assert col.is_all_null()
        assert col.to_pylist() == [None] * 4

    def test_constant(self):
        col = Column.constant(DataType.INTEGER, 9, 3)
        assert col.to_pylist() == [9, 9, 9]

    def test_constant_none_is_all_null(self):
        col = Column.constant(DataType.VARCHAR, None, 2)
        assert col.is_all_null()

    def test_from_numpy_no_copy(self):
        values = np.array([1, 2, 3], dtype=np.int64)
        col = Column.from_numpy(DataType.INTEGER, values)
        assert col.to_pylist() == [1, 2, 3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Column(DataType.INTEGER, np.zeros(3, dtype=np.int64),
                   np.zeros(2, dtype=np.bool_))

    def test_infer_dtype_helper(self):
        col = column_from_values([None, 2, 3])
        assert col.dtype == DataType.INTEGER

    def test_infer_all_null_requires_dtype(self):
        with pytest.raises(TypeMismatchError):
            column_from_values([None, None])


class TestShapeOps:
    def test_take(self):
        col = Column.from_pylist(DataType.INTEGER, [10, 20, None, 40])
        taken = col.take(np.array([3, 0, 2]))
        assert taken.to_pylist() == [40, 10, None]

    def test_filter(self):
        col = Column.from_pylist(DataType.VARCHAR, ["a", "b", "c"])
        mask = np.array([True, False, True])
        assert col.filter(mask).to_pylist() == ["a", "c"]

    def test_slice(self):
        col = Column.from_pylist(DataType.INTEGER, [0, 1, 2, 3, 4])
        assert col.slice(1, 3).to_pylist() == [1, 2]

    def test_concat(self):
        a = Column.from_pylist(DataType.INTEGER, [1, None])
        b = Column.from_pylist(DataType.INTEGER, [3])
        assert Column.concat([a, b]).to_pylist() == [1, None, 3]

    def test_concat_dtype_mismatch(self):
        a = Column.from_pylist(DataType.INTEGER, [1])
        b = Column.from_pylist(DataType.DOUBLE, [1.0])
        with pytest.raises(TypeMismatchError):
            Column.concat([a, b])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            Column.concat([])


class TestMinMax:
    def test_ints_ignore_nulls(self):
        col = Column.from_pylist(DataType.INTEGER, [None, 5, 2, None, 9])
        assert col.min_max() == (2, 9)

    def test_strings(self):
        col = Column.from_pylist(DataType.VARCHAR,
                                 ["pear", "apple", "fig"])
        assert col.min_max() == ("apple", "pear")

    def test_all_null_returns_none(self):
        col = Column.all_null(DataType.INTEGER, 3)
        assert col.min_max() == (None, None)

    def test_empty_returns_none(self):
        col = Column.from_pylist(DataType.INTEGER, [])
        assert col.min_max() == (None, None)

    def test_booleans(self):
        col = Column.from_pylist(DataType.BOOLEAN, [True, False])
        assert col.min_max() == (False, True)

    def test_date_min_max_internal(self):
        d1, d2 = datetime.date(2020, 1, 1), datetime.date(2021, 1, 1)
        col = Column.from_pylist(DataType.DATE, [d2, d1])
        lo, hi = col.min_max()
        assert lo < hi  # epoch days
        assert isinstance(lo, int)


class TestSizes:
    def test_numeric_nbytes(self):
        col = Column.from_pylist(DataType.INTEGER, list(range(100)))
        assert col.nbytes() == 100 * 8 + 100

    def test_varchar_nbytes_counts_payload(self):
        col = Column.from_pylist(DataType.VARCHAR, ["abc", None, "x"])
        assert col.nbytes() == 4 + 3
