"""End-to-end SQL tests: compiler wiring, pruning behaviour, and
result correctness against brute-force oracles."""

import random

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.plan.compiler import CompilerOptions
from repro.pruning.limit_pruning import LimitPruneOutcome
from repro.pruning.topk_pruning import OrderStrategy


def make_catalog(n_rows=2000, rows_per_partition=100,
                 layout=None, seed=0):
    rng = random.Random(seed)
    schema = Schema.of(ts=DataType.INTEGER, category=DataType.VARCHAR,
                       score=DataType.INTEGER, fk=DataType.INTEGER)
    rows = [(i, f"cat{rng.randrange(4)}", rng.randrange(100_000),
             i // 20) for i in range(n_rows)]
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", schema, rows,
        layout=layout or Layout.sorted_by("ts"))
    dim_rows = [(k, f"name{k}", f"cat{k % 4}")
                for k in range(n_rows // 20)]
    catalog.create_table_from_rows(
        "dims", Schema.of(key=DataType.INTEGER, name=DataType.VARCHAR,
                          attr=DataType.VARCHAR), dim_rows)
    return catalog


@pytest.fixture(scope="module")
def catalog():
    return make_catalog()


def oracle_rows(catalog, table="events"):
    return catalog.tables[table].to_rows()


class TestFilterQueries:
    def test_results_match_oracle(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events WHERE ts >= 1500 AND ts < 1600")
        expected = [r for r in oracle_rows(catalog)
                    if 1500 <= r[0] < 1600]
        assert sorted(result.rows) == sorted(expected)

    def test_compile_time_pruning_recorded(self, catalog):
        result = catalog.sql("SELECT * FROM events WHERE ts >= 1900")
        scan = result.profile.scans[0]
        assert scan.total_partitions == 20
        assert scan.filter_result.after == 1
        assert scan.partitions_loaded == 1

    def test_empty_scan_set_subtree_eliminated(self, catalog):
        result = catalog.sql("SELECT * FROM events WHERE ts > 99999")
        assert result.rows == []
        assert result.profile.partitions_loaded == 0

    def test_pruning_disabled_loads_everything(self, catalog):
        options = CompilerOptions(enable_filter_pruning=False)
        result = catalog.sql("SELECT * FROM events WHERE ts >= 1900",
                             options)
        assert result.profile.partitions_loaded == 20
        assert result.num_rows == 100

    def test_complex_predicate(self, catalog):
        sql = ("SELECT * FROM events WHERE "
               "IF(category = 'cat0', ts * 2, ts) > 3900")
        result = catalog.sql(sql)
        expected = [
            r for r in oracle_rows(catalog)
            if (r[0] * 2 if r[1] == "cat0" else r[0]) > 3900]
        assert sorted(result.rows) == sorted(expected)

    def test_projection_and_alias(self, catalog):
        result = catalog.sql(
            "SELECT ts * 2 AS t2, category FROM events "
            "WHERE ts < 3")
        assert result.schema.names() == ["t2", "category"]
        assert sorted(result.rows) == [(0, "cat3"), (2, "cat0"),
                                       (4, "cat1")] or \
            len(result.rows) == 3


class TestLimitQueries:
    def test_limit_prunes_with_fully_matching(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events WHERE ts >= 1000 LIMIT 5")
        scan = result.profile.scans[0]
        assert result.num_rows == 5
        assert scan.limit_report is not None
        assert scan.limit_report.outcome == \
            LimitPruneOutcome.PRUNED_TO_ONE
        assert scan.partitions_loaded == 1

    def test_limit_no_predicate(self, catalog):
        # No predicate -> every partition fully-matching -> scan set
        # shrinks to a single partition.
        result = catalog.sql("SELECT * FROM events LIMIT 7")
        assert result.num_rows == 7
        scan = result.profile.scans[0]
        assert scan.limit_report.outcome == \
            LimitPruneOutcome.PRUNED_TO_ONE
        assert scan.limit_report.result.after == 1

    def test_limit_zero(self, catalog):
        result = catalog.sql("SELECT * FROM events LIMIT 0")
        assert result.rows == []
        assert result.profile.partitions_loaded == 0

    def test_limit_larger_than_table(self, catalog):
        result = catalog.sql("SELECT * FROM events LIMIT 99999")
        assert result.num_rows == 2000

    def test_limit_with_offset(self, catalog):
        result = catalog.sql("SELECT * FROM events LIMIT 5 OFFSET 3")
        assert result.num_rows == 5

    def test_limit_pruning_disabled(self, catalog):
        options = CompilerOptions(enable_limit_pruning=False)
        result = catalog.sql(
            "SELECT * FROM events WHERE ts >= 1000 LIMIT 5", options)
        scan = result.profile.scans[0]
        assert scan.limit_report is None
        assert result.num_rows == 5

    def test_residual_filter_blocks_limit_pushdown(self, catalog):
        # Predicate referencing both tables stays above the join:
        # LIMIT must not prune the scan.
        sql = ("SELECT * FROM events JOIN dims AS d ON fk = d.key "
               "WHERE ts >= d.key LIMIT 5")
        result = catalog.sql(sql)
        scan = result.profile.scans[0]
        assert scan.limit_report is None

    def test_limit_eligible_flag(self, catalog):
        result = catalog.sql("SELECT * FROM events LIMIT 3")
        assert result.profile.limit_eligible
        assert not result.profile.topk_eligible


class TestTopKQueries:
    def test_results_match_oracle(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY score DESC LIMIT 10")
        expected = sorted(oracle_rows(catalog), key=lambda r: -r[2])[:10]
        assert [r[2] for r in result.rows] == [r[2] for r in expected]

    def test_sorted_column_prunes_heavily(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts DESC LIMIT 5")
        scan = result.profile.scans[0]
        assert scan.topk_skipped >= 18
        assert scan.partitions_loaded <= 2

    def test_asc_ordering(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts ASC LIMIT 5")
        assert [r[0] for r in result.rows] == [0, 1, 2, 3, 4]
        assert result.profile.scans[0].topk_skipped >= 18

    def test_topk_with_filter(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events WHERE category = 'cat1' "
            "ORDER BY score DESC LIMIT 5")
        expected = sorted((r for r in oracle_rows(catalog)
                           if r[1] == "cat1"), key=lambda r: -r[2])[:5]
        assert [r[2] for r in result.rows] == [r[2] for r in expected]

    def test_topk_disabled_still_correct(self, catalog):
        options = CompilerOptions(enable_topk_pruning=False)
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts DESC LIMIT 5", options)
        assert [r[0] for r in result.rows] == \
            [1999, 1998, 1997, 1996, 1995]
        assert result.profile.scans[0].topk_skipped == 0

    def test_topk_order_strategy_none(self, catalog):
        options = CompilerOptions(
            topk_order_strategy=OrderStrategy.NONE,
            topk_boundary_init=False)
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts DESC LIMIT 5", options)
        assert [r[0] for r in result.rows] == \
            [1999, 1998, 1997, 1996, 1995]

    def test_topk_offset(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts DESC LIMIT 3 OFFSET 2")
        assert [r[0] for r in result.rows] == [1997, 1996, 1995]

    def test_order_by_expression_no_pruning_but_correct(self, catalog):
        result = catalog.sql(
            "SELECT ts FROM events ORDER BY abs(score - 50000) LIMIT 3")
        expected = sorted(oracle_rows(catalog),
                          key=lambda r: abs(r[2] - 50000))[:3]
        assert [r[0] for r in result.rows] == [r[0] for r in expected]

    def test_multi_key_sort_limit(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY category ASC, ts DESC "
            "LIMIT 4")
        expected = sorted(oracle_rows(catalog),
                          key=lambda r: (r[1], -r[0]))[:4]
        assert result.rows == expected
        assert result.profile.topk_eligible

    def test_group_by_order_key(self, catalog):
        result = catalog.sql(
            "SELECT ts, count(*) AS c FROM events GROUP BY ts "
            "ORDER BY ts DESC LIMIT 5")
        assert [r[0] for r in result.rows] == \
            [1999, 1998, 1997, 1996, 1995]
        # Figure 7d: boundary through GROUP BY prunes the scan.
        assert result.profile.scans[0].topk_skipped > 0

    def test_group_by_order_aggregate(self, catalog):
        result = catalog.sql(
            "SELECT category, count(*) AS c FROM events "
            "GROUP BY category ORDER BY c DESC LIMIT 2")
        counts = {}
        for r in oracle_rows(catalog):
            counts[r[1]] = counts.get(r[1], 0) + 1
        expected = sorted(counts.values(), reverse=True)[:2]
        assert [r[1] for r in result.rows] == expected


class TestJoinQueries:
    def test_results_match_oracle(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE d.attr = 'cat2'")
        dims = {r[0]: r for r in oracle_rows(catalog, "dims")
                if r[2] == "cat2"}
        expected = [e + dims[e[3]] for e in oracle_rows(catalog)
                    if e[3] in dims]
        assert sorted(result.rows) == sorted(expected)

    def test_join_pruning_reduces_probe_scan(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE d.key < 5")
        scan = next(s for s in result.profile.scans
                    if s.table == "events")
        assert scan.join_result is not None
        assert scan.join_result.after < scan.total_partitions
        assert result.profile.join_eligible

    def test_empty_build_side_prunes_all(self, catalog):
        # 'cat1x' sits inside the dims attr min/max range, so metadata
        # cannot eliminate the sub-tree; the build side comes up empty
        # at runtime and join pruning removes the whole probe scan.
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE d.attr = 'cat1x'")
        assert result.rows == []
        scan = next(s for s in result.profile.scans
                    if s.table == "events")
        assert scan.join_result.after == 0
        assert scan.partitions_loaded == 0

    def test_join_pruning_disabled(self, catalog):
        options = CompilerOptions(enable_join_pruning=False)
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE d.key < 5", options)
        scan = next(s for s in result.profile.scans
                    if s.table == "events")
        assert scan.join_result is None

    def test_left_outer_join(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events LEFT JOIN dims AS d ON fk = d.key "
            "WHERE ts < 100")
        assert result.num_rows == 100

    def test_topk_over_join_probe_side(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "ORDER BY ts DESC LIMIT 3")
        assert [r[0] for r in result.rows] == [1999, 1998, 1997]
        scan = next(s for s in result.profile.scans
                    if s.table == "events")
        assert scan.topk_skipped > 0  # Figure 7b

    def test_topk_replicated_through_left_outer(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events LEFT JOIN dims AS d ON fk = d.key "
            "ORDER BY ts DESC LIMIT 3")
        assert [r[0] for r in result.rows] == [1999, 1998, 1997]


class TestRandomLayout:
    def test_random_layout_correct_but_no_pruning(self):
        catalog = make_catalog(layout=Layout.random(seed=9))
        result = catalog.sql(
            "SELECT * FROM events WHERE ts >= 1900 AND ts < 1950")
        assert result.num_rows == 50
        scan = result.profile.scans[0]
        assert scan.filter_result.after == scan.total_partitions


class TestMultiKeyTopK:
    def test_multi_key_topk_prunes_on_leading_column(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events ORDER BY ts DESC, score ASC LIMIT 4")
        expected = sorted(oracle_rows(catalog),
                          key=lambda r: (-r[0], r[2]))[:4]
        assert result.rows == expected
        # boundary pruning fires on the leading (sorted) column
        assert result.profile.scans[0].topk_skipped > 15

    def test_multi_key_ties_resolved_by_secondary(self):
        import random as _random

        rng = _random.Random(1)
        catalog = Catalog(rows_per_partition=50)
        schema = Schema.of(bucket=DataType.INTEGER,
                           score=DataType.INTEGER)
        rows = [(i // 100, rng.randrange(1000)) for i in range(1000)]
        catalog.create_table_from_rows(
            "b", schema, rows, layout=Layout.sorted_by("bucket"))
        result = catalog.sql(
            "SELECT * FROM b ORDER BY bucket DESC, score DESC LIMIT 6")
        expected = sorted(rows, key=lambda r: (-r[0], -r[1]))[:6]
        assert result.rows == expected
        assert result.profile.scans[0].topk_skipped > 0

    def test_multi_key_with_filter_matches_oracle(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events WHERE category = 'cat2' "
            "ORDER BY ts ASC, score DESC LIMIT 5")
        expected = sorted(
            (r for r in oracle_rows(catalog) if r[1] == "cat2"),
            key=lambda r: (r[0], -r[2]))[:5]
        assert result.rows == expected

    def test_multi_key_cache_distinguishes_secondary(self, catalog):
        fresh = make_catalog(seed=5)
        fresh.enable_predicate_cache()
        asc = fresh.sql(
            "SELECT * FROM events ORDER BY ts DESC, score ASC LIMIT 3")
        desc = fresh.sql(
            "SELECT * FROM events ORDER BY ts DESC, score DESC "
            "LIMIT 3")
        # second query must NOT hit the first query's cache entry
        assert not desc.profile.scans[0].cache_hit
        assert asc.rows != desc.rows or True  # data-dependent; key check above


class TestJoinSubtreeElimination:
    def test_empty_probe_side_eliminates_join(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE ts > 99999")
        assert result.rows == []
        # neither side is read: the dims scan never even starts
        assert result.profile.partitions_loaded == 0

    def test_empty_build_side_eliminates_inner_join(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE d.key > 99999")
        assert result.rows == []
        assert result.profile.partitions_loaded == 0

    def test_left_outer_with_empty_build_still_runs(self, catalog):
        result = catalog.sql(
            "SELECT * FROM events LEFT JOIN dims AS d ON fk = d.key "
            "WHERE d.key > 99999 AND ts < 50")
        # the residual d.key predicate filters null-padded rows away,
        # but the probe side must still be scanned
        assert result.rows == []

    def test_explain_shows_elimination(self, catalog):
        explain = catalog.explain(
            "SELECT * FROM events JOIN dims AS d ON fk = d.key "
            "WHERE ts > 99999")
        assert "Empty (sub-tree eliminated)" in explain
