"""Tests for chunks and physical operators."""

import numpy as np
import pytest

from repro.engine.chunk import Chunk
from repro.engine.context import ExecContext
from repro.engine.executor import execute
from repro.engine.operators import (
    AggSpec,
    ChunkSource,
    EmptyOperator,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Project,
    Scan,
    Sort,
    SortKey,
    TopK,
)
from repro.errors import PlanError, SchemaError
from repro.expr.ast import Arith, Compare, col, lit
from repro.pruning.base import ScanSet
from repro.pruning.topk_pruning import Boundary, TopKPruner
from repro.storage.builder import build_table
from repro.storage.storage_layer import StorageLayer
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)


def make_chunk(rows, schema=SCHEMA):
    return Chunk.from_rows(schema, rows)


def make_storage(n_rows=100, rows_per_partition=10):
    table = build_table("t", SCHEMA,
                        [(i, f"s{i}") for i in range(n_rows)],
                        rows_per_partition=rows_per_partition)
    storage = StorageLayer()
    storage.put_all(table.partitions)
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)
    return storage, scan_set


class TestChunk:
    def test_from_rows_roundtrip(self):
        chunk = make_chunk([(1, "a"), (2, "b")])
        assert chunk.to_rows() == [(1, "a"), (2, "b")]
        assert chunk.num_rows == 2

    def test_filter_take_slice(self):
        chunk = make_chunk([(i, f"s{i}") for i in range(5)])
        assert chunk.filter(np.array([True] * 2 + [False] * 3)) \
            .to_rows() == [(0, "s0"), (1, "s1")]
        assert chunk.take(np.array([4, 0])).to_rows() == \
            [(4, "s4"), (0, "s0")]
        assert chunk.slice(1, 3).to_rows() == [(1, "s1"), (2, "s2")]

    def test_select(self):
        chunk = make_chunk([(1, "a")])
        assert chunk.select(["s"]).to_rows() == [("a",)]

    def test_concat(self):
        a = make_chunk([(1, "a")])
        b = make_chunk([(2, "b")])
        assert Chunk.concat(SCHEMA, [a, b]).num_rows == 2
        assert Chunk.concat(SCHEMA, []).num_rows == 0

    def test_schema_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Chunk(SCHEMA, {})

    def test_row_at(self):
        chunk = make_chunk([(1, "a"), (2, None)])
        assert chunk.row_at(1) == (2, None)


class TestScan:
    def test_loads_all_partitions(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA, scan_set)
        result = execute(scan, ctx)
        assert result.num_rows == 100
        assert ctx.profile.scans[0].partitions_loaded == 10
        assert not ctx.profile.scans[0].early_terminated

    def test_column_projection(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA, scan_set, columns=["x"])
        chunks = list(scan)
        assert chunks[0].schema.names() == ["x"]

    def test_topk_pruner_skips(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA, scan_set)
        boundary = Boundary(desc=True)
        boundary.update_value(95)
        scan.attach_topk_pruner(TopKPruner("x", boundary))
        result = execute(scan, ctx)
        assert result.num_rows == 10  # only the last partition
        assert ctx.profile.scans[0].topk_skipped == 9

    def test_source_partition_provenance(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        chunks = list(Scan(ctx, "t", SCHEMA, scan_set))
        assert [c.source_partition for c in chunks] == \
            scan_set.partition_ids


class TestFilterProject:
    def test_filter(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(
            [(i, f"s{i}") for i in range(10)])])
        op = Filter(ctx, source, Compare(">=", col("x"), lit(7)))
        assert execute(op, ctx).rows == [(7, "s7"), (8, "s8"),
                                         (9, "s9")]

    def test_filter_tracks_matching_partitions(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA, scan_set)
        op = Filter(ctx, scan, Compare(">=", col("x"), lit(95)))
        execute(op, ctx)
        assert op.partitions_with_matches == \
            {scan_set.partition_ids[-1]}

    def test_project(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk([(3, "a")])])
        op = Project(ctx, source, [Arith("*", col("x"), lit(2))],
                     ["doubled"])
        result = execute(op, ctx)
        assert result.schema.names() == ["doubled"]
        assert result.rows == [(6,)]

    def test_project_length_mismatch(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [])
        with pytest.raises(PlanError):
            Project(ctx, source, [col("x")], ["a", "b"])


class TestLimit:
    def test_limit_slices(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [
            make_chunk([(i, "s") for i in range(5)]),
            make_chunk([(i, "s") for i in range(5, 10)]),
        ])
        result = execute(Limit(ctx, source, 7), ctx)
        assert [r[0] for r in result.rows] == list(range(7))

    def test_limit_zero(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk([(1, "s")])])
        assert execute(Limit(ctx, source, 0), ctx).rows == []

    def test_offset(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(
            [(i, "s") for i in range(10)])])
        result = execute(Limit(ctx, source, 3, offset=4), ctx)
        assert [r[0] for r in result.rows] == [4, 5, 6]

    def test_early_termination_stops_scan(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        scan = Scan(ctx, "t", SCHEMA, scan_set)
        execute(Limit(ctx, scan, 5), ctx)
        assert ctx.profile.scans[0].partitions_loaded == 1
        assert ctx.profile.scans[0].early_terminated

    def test_negative_rejected(self):
        ctx = ExecContext(StorageLayer())
        with pytest.raises(PlanError):
            Limit(ctx, ChunkSource(SCHEMA, []), -1)


class TestSortTopK:
    def rows(self):
        return [(i * 7 % 10, f"s{i}") for i in range(10)]

    def test_sort_desc(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(self.rows())])
        result = execute(Sort(ctx, source, [SortKey("x", True)]), ctx)
        xs = [r[0] for r in result.rows]
        assert xs == sorted(xs, reverse=True)

    def test_sort_nulls_last(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(
            [(None, "a"), (1, "b"), (None, "c"), (5, "d")])])
        result = execute(Sort(ctx, source, [SortKey("x", False)]), ctx)
        assert [r[0] for r in result.rows] == [1, 5, None, None]

    def test_sort_multi_key(self):
        schema = Schema.of(a=DataType.INTEGER, b=DataType.INTEGER)
        rows = [(1, 2), (0, 9), (1, 1), (0, 3)]
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(schema, [Chunk.from_rows(schema, rows)])
        result = execute(
            Sort(ctx, source, [SortKey("a", False), SortKey("b", True)]),
            ctx)
        assert result.rows == [(0, 9), (0, 3), (1, 2), (1, 1)]

    def test_topk_matches_sort_limit(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(self.rows())])
        topk = execute(TopK(ctx, source, "x", 3, desc=True), ctx).rows
        ctx2 = ExecContext(StorageLayer())
        source2 = ChunkSource(SCHEMA, [make_chunk(self.rows())])
        reference = execute(
            Limit(ctx2, Sort(ctx2, source2, [SortKey("x", True)]), 3),
            ctx2).rows
        assert [r[0] for r in topk] == [r[0] for r in reference]

    def test_topk_updates_boundary(self):
        ctx = ExecContext(StorageLayer())
        boundary = Boundary(desc=True)
        source = ChunkSource(SCHEMA, [make_chunk(self.rows())])
        execute(TopK(ctx, source, "x", 3, desc=True,
                     boundary=boundary), ctx)
        assert boundary.is_active

    def test_topk_offset(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk(
            [(i, "s") for i in range(10)])])
        result = execute(TopK(ctx, source, "x", 3, desc=True,
                              offset=2), ctx)
        assert [r[0] for r in result.rows] == [7, 6, 5]

    def test_topk_fewer_rows_than_k(self):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [make_chunk([(1, "a")])])
        result = execute(TopK(ctx, source, "x", 5, desc=True), ctx)
        assert result.num_rows == 1


class TestHashJoin:
    LEFT = Schema.of(k=DataType.INTEGER, a=DataType.VARCHAR)
    RIGHT = Schema.of(rk=DataType.INTEGER, b=DataType.VARCHAR)

    def join(self, left_rows, right_rows, join_type="inner"):
        ctx = ExecContext(StorageLayer())
        left = ChunkSource(self.LEFT,
                           [Chunk.from_rows(self.LEFT, left_rows)])
        right = ChunkSource(self.RIGHT,
                            [Chunk.from_rows(self.RIGHT, right_rows)])
        op = HashJoin(ctx, left, right, probe_key="k", build_key="rk",
                      join_type=join_type)
        return execute(op, ctx).rows

    def test_inner_join(self):
        rows = self.join([(1, "a"), (2, "b")], [(2, "x"), (3, "y")])
        assert rows == [(2, "b", 2, "x")]

    def test_duplicate_build_keys(self):
        rows = self.join([(1, "a")], [(1, "x"), (1, "y")])
        assert len(rows) == 2

    def test_null_keys_never_match(self):
        rows = self.join([(None, "a"), (1, "b")],
                         [(None, "x"), (1, "y")])
        assert rows == [(1, "b", 1, "y")]

    def test_left_outer_preserves_probe(self):
        rows = self.join([(1, "a"), (2, "b")], [(2, "x")],
                         join_type="left_outer")
        assert (2, "b", 2, "x") in rows
        assert (1, "a", None, None) in rows

    def test_left_outer_null_key_preserved(self):
        rows = self.join([(None, "a")], [(1, "x")],
                         join_type="left_outer")
        assert rows == [(None, "a", None, None)]

    def test_probe_side_pruning(self):
        storage, scan_set = make_storage()  # x: 0..99 sorted
        ctx = ExecContext(storage)
        probe = Scan(ctx, "t", SCHEMA, scan_set)
        build = ChunkSource(self.RIGHT,
                            [Chunk.from_rows(self.RIGHT,
                                             [(5, "x"), (97, "y")])])
        op = HashJoin(ctx, probe, build, probe_key="x", build_key="rk",
                      probe_scan=probe, probe_scan_column="x")
        result = execute(op, ctx)
        assert len(result.rows) == 2
        assert ctx.profile.scans[0].join_result.after == 2
        assert ctx.profile.scans[0].partitions_loaded == 2

    def test_left_outer_does_not_prune_probe(self):
        storage, scan_set = make_storage()
        ctx = ExecContext(storage)
        probe = Scan(ctx, "t", SCHEMA, scan_set)
        build = ChunkSource(self.RIGHT,
                            [Chunk.from_rows(self.RIGHT, [(5, "x")])])
        op = HashJoin(ctx, probe, build, probe_key="x", build_key="rk",
                      join_type="left_outer", probe_scan=probe,
                      probe_scan_column="x")
        result = execute(op, ctx)
        assert len(result.rows) == 100  # all probe rows preserved
        assert ctx.profile.scans[0].join_result is None

    def test_bloom_skips_probes(self):
        ctx = ExecContext(StorageLayer())
        left_rows = [(i, "a") for i in range(100)]
        left = ChunkSource(self.LEFT,
                           [Chunk.from_rows(self.LEFT, left_rows)])
        right = ChunkSource(self.RIGHT,
                            [Chunk.from_rows(self.RIGHT, [(1, "x")])])
        op = HashJoin(ctx, left, right, probe_key="k", build_key="rk")
        execute(op, ctx)
        assert op.bloom_probes_skipped > 50

    def test_invalid_join_type(self):
        ctx = ExecContext(StorageLayer())
        left = ChunkSource(self.LEFT, [])
        right = ChunkSource(self.RIGHT, [])
        with pytest.raises(PlanError):
            HashJoin(ctx, left, right, "k", "rk", join_type="full")


class TestHashAggregate:
    SCHEMA = Schema.of(g=DataType.VARCHAR, v=DataType.INTEGER)

    def aggregate(self, rows, group_keys, aggs):
        ctx = ExecContext(StorageLayer())
        source = ChunkSource(self.SCHEMA,
                             [Chunk.from_rows(self.SCHEMA, rows)])
        op = HashAggregate(ctx, source, group_keys, aggs)
        return execute(op, ctx)

    def test_count_sum_min_max_avg(self):
        rows = [("a", 1), ("a", 3), ("b", 5), ("a", None)]
        result = self.aggregate(rows, ["g"], [
            AggSpec("count_star", None, "n"),
            AggSpec("count", "v", "c"),
            AggSpec("sum", "v", "s"),
            AggSpec("min", "v", "lo"),
            AggSpec("max", "v", "hi"),
            AggSpec("avg", "v", "mean"),
        ])
        by_group = {row[0]: row[1:] for row in result.rows}
        assert by_group["a"] == (3, 2, 4, 1, 3, 2.0)
        assert by_group["b"] == (1, 1, 5, 5, 5, 5.0)

    def test_global_aggregate_no_keys(self):
        result = self.aggregate([("a", 1), ("b", 2)], [], [
            AggSpec("count_star", None, "n")])
        assert result.rows == [(2,)]

    def test_empty_group_aggregates_none(self):
        rows = [("a", None)]
        result = self.aggregate(rows, ["g"], [
            AggSpec("sum", "v", "s"), AggSpec("avg", "v", "m")])
        assert result.rows == [("a", None, None)]

    def test_output_schema(self):
        result = self.aggregate([("a", 1)], ["g"], [
            AggSpec("avg", "v", "m")])
        assert result.schema.dtype_of("m") == DataType.DOUBLE


class TestEmptyOperator:
    def test_produces_nothing(self):
        ctx = ExecContext(StorageLayer())
        assert execute(EmptyOperator(SCHEMA), ctx).rows == []
