"""Tests for the predicate cache and its DML invalidation rules (§8.2)."""

from repro.expr.ast import Compare, col, lit
from repro.pruning.predicate_cache import PredicateCache

PRED = Compare(">", col("x"), lit(5))
OTHER = Compare(">", col("x"), lit(9))


class TestFilterEntries:
    def test_record_and_lookup(self):
        cache = PredicateCache()
        assert cache.record_filter("t", PRED, [1, 2, 3])
        entry = cache.lookup_filter("t", PRED)
        assert entry is not None
        assert entry.scan_ids() == [1, 2, 3]
        assert cache.hits == 1

    def test_miss_on_different_predicate(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        assert cache.lookup_filter("t", OTHER) is None
        assert cache.misses == 1

    def test_miss_on_different_table(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        assert cache.lookup_filter("u", PRED) is None

    def test_oversized_entry_not_admitted(self):
        cache = PredicateCache(max_partitions_per_entry=2)
        assert not cache.record_filter("t", PRED, [1, 2, 3])
        assert cache.lookup_filter("t", PRED) is None

    def test_lru_eviction(self):
        cache = PredicateCache(max_entries=2)
        cache.record_filter("t", PRED, [1])
        cache.record_filter("t", OTHER, [2])
        cache.lookup_filter("t", PRED)  # refresh PRED
        third = Compare(">", col("x"), lit(99))
        cache.record_filter("t", third, [3])
        assert cache.lookup_filter("t", OTHER) is None  # evicted
        assert cache.lookup_filter("t", PRED) is not None


class TestInsertSemantics:
    def test_insert_appends_to_filter_entries(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_insert("t", [7, 8])
        entry = cache.lookup_filter("t", PRED)
        assert entry.scan_ids() == [1, 2, 7, 8]

    def test_insert_appends_to_topk_entries(self):
        # "INSERTs are safe" — because new partitions always join the
        # scan list.
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_insert("t", [9])
        entry = cache.lookup_topk("t", PRED, "score", True, 10)
        assert 9 in entry.scan_ids()

    def test_insert_other_table_no_effect(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        cache.on_insert("u", [9])
        assert cache.lookup_filter("t", PRED).scan_ids() == [1]

    def test_repeated_insert_does_not_duplicate(self):
        # Regression: appended_ids grew without dedup, so replayed or
        # overlapping notifications scanned partitions repeatedly.
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_insert("t", [7, 8])
        cache.on_insert("t", [8, 9])
        cache.on_insert("t", [7, 7])
        assert cache.lookup_filter("t", PRED).scan_ids() == \
            [1, 2, 7, 8, 9]

    def test_insert_never_appends_cached_ids(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_insert("t", [2, 3])
        assert cache.lookup_filter("t", PRED).scan_ids() == [1, 2, 3]

    def test_insert_beyond_bound_evicts_entry(self):
        # Regression: the per-entry bound was only enforced at admit
        # time, so DML grew entries without limit. Outgrowing the
        # bound must evict (an eviction is an invalidation), never
        # silently truncate the scan list (that would drop rows).
        cache = PredicateCache(max_partitions_per_entry=4)
        cache.record_filter("t", PRED, [1, 2, 3])
        cache.record_filter("t", OTHER, [1])
        cache.on_insert("t", [10, 11])     # 5 ids > bound for PRED
        assert cache.lookup_filter("t", PRED) is None
        assert cache.invalidations == 1
        assert cache.lookup_filter("t", OTHER).scan_ids() == \
            [1, 10, 11]

    def test_entry_size_bounded_under_repeated_inserts(self):
        cache = PredicateCache(max_partitions_per_entry=16)
        cache.record_filter("t", PRED, [1])
        for i in range(100):
            cache.on_insert("t", [100 + i])
            entry = cache.lookup_filter("t", PRED)
            if entry is None:
                break
            assert len(entry.scan_ids()) <= 16
        assert cache.lookup_filter("t", PRED) is None
        assert cache.invalidations == 1


class TestDeleteSemantics:
    def test_delete_shrinks_filter_entries(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2, 3])
        cache.on_delete("t", [2])
        assert cache.lookup_filter("t", PRED).scan_ids() == [1, 3]

    def test_delete_invalidates_topk_entry(self):
        # §8.2: "If a row in the top-k result is deleted, another row
        # must take its place" — the k+1-th row may be anywhere.
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1, 2])
        cache.on_delete("t", [2])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None
        assert cache.invalidations == 1

    def test_delete_untouched_topk_entry_survives(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1, 2])
        cache.on_delete("t", [99])
        assert cache.lookup_topk("t", PRED, "score", True, 10) \
            is not None


class TestUpdateSemantics:
    def test_update_ordering_column_invalidates_topk(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [50], [51], ["score"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None

    def test_update_non_ordering_column_safe_for_topk(self):
        # "UPDATEs to non-ordering columns ... are safe".
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [50], [51], ["comment"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) \
            is not None

    def test_update_rewritten_topk_partition_invalidates(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [1], [9], ["comment"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None

    def test_update_swaps_filter_partitions(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_update("t", [2], [9], ["x"])
        entry = cache.lookup_filter("t", PRED)
        assert set(entry.scan_ids()) == {1, 9}

    def test_update_does_not_duplicate_rewritten_ids(self):
        # Regression: the rewrite path appended new ids undeduped.
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_update("t", [2], [9], ["x"])
        cache.on_update("t", [1], [9, 10], ["x"])
        ids = cache.lookup_filter("t", PRED).scan_ids()
        assert sorted(ids) == [9, 10]

    def test_update_beyond_bound_evicts_filter_entry(self):
        cache = PredicateCache(max_partitions_per_entry=3)
        cache.record_filter("t", PRED, [1, 2, 3])
        cache.on_update("t", [3], [7, 8], ["x"])  # would hold 4 ids
        assert cache.lookup_filter("t", PRED) is None
        assert cache.invalidations == 1


class TestTopkKeying:
    def test_distinct_k_distinct_entries(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        assert cache.lookup_topk("t", PRED, "score", True, 20) is None

    def test_direction_part_of_key(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        assert cache.lookup_topk("t", PRED, "score", False, 10) is None

    def test_no_predicate_topk(self):
        cache = PredicateCache()
        cache.record_topk("t", None, "score", True, 10, [1])
        assert cache.lookup_topk("t", None, "score", True, 10) \
            is not None

    def test_drop_table(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        cache.record_topk("t", None, "score", True, 10, [1])
        cache.drop_table("t")
        assert len(cache) == 0
