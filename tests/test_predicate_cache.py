"""Tests for the predicate cache and its DML invalidation rules (§8.2)."""

from repro.expr.ast import Compare, col, lit
from repro.pruning.predicate_cache import PredicateCache

PRED = Compare(">", col("x"), lit(5))
OTHER = Compare(">", col("x"), lit(9))


class TestFilterEntries:
    def test_record_and_lookup(self):
        cache = PredicateCache()
        assert cache.record_filter("t", PRED, [1, 2, 3])
        entry = cache.lookup_filter("t", PRED)
        assert entry is not None
        assert entry.scan_ids() == [1, 2, 3]
        assert cache.hits == 1

    def test_miss_on_different_predicate(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        assert cache.lookup_filter("t", OTHER) is None
        assert cache.misses == 1

    def test_miss_on_different_table(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        assert cache.lookup_filter("u", PRED) is None

    def test_oversized_entry_not_admitted(self):
        cache = PredicateCache(max_partitions_per_entry=2)
        assert not cache.record_filter("t", PRED, [1, 2, 3])
        assert cache.lookup_filter("t", PRED) is None

    def test_lru_eviction(self):
        cache = PredicateCache(max_entries=2)
        cache.record_filter("t", PRED, [1])
        cache.record_filter("t", OTHER, [2])
        cache.lookup_filter("t", PRED)  # refresh PRED
        third = Compare(">", col("x"), lit(99))
        cache.record_filter("t", third, [3])
        assert cache.lookup_filter("t", OTHER) is None  # evicted
        assert cache.lookup_filter("t", PRED) is not None


class TestInsertSemantics:
    def test_insert_appends_to_filter_entries(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_insert("t", [7, 8])
        entry = cache.lookup_filter("t", PRED)
        assert entry.scan_ids() == [1, 2, 7, 8]

    def test_insert_appends_to_topk_entries(self):
        # "INSERTs are safe" — because new partitions always join the
        # scan list.
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_insert("t", [9])
        entry = cache.lookup_topk("t", PRED, "score", True, 10)
        assert 9 in entry.scan_ids()

    def test_insert_other_table_no_effect(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        cache.on_insert("u", [9])
        assert cache.lookup_filter("t", PRED).scan_ids() == [1]


class TestDeleteSemantics:
    def test_delete_shrinks_filter_entries(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2, 3])
        cache.on_delete("t", [2])
        assert cache.lookup_filter("t", PRED).scan_ids() == [1, 3]

    def test_delete_invalidates_topk_entry(self):
        # §8.2: "If a row in the top-k result is deleted, another row
        # must take its place" — the k+1-th row may be anywhere.
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1, 2])
        cache.on_delete("t", [2])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None
        assert cache.invalidations == 1

    def test_delete_untouched_topk_entry_survives(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1, 2])
        cache.on_delete("t", [99])
        assert cache.lookup_topk("t", PRED, "score", True, 10) \
            is not None


class TestUpdateSemantics:
    def test_update_ordering_column_invalidates_topk(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [50], [51], ["score"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None

    def test_update_non_ordering_column_safe_for_topk(self):
        # "UPDATEs to non-ordering columns ... are safe".
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [50], [51], ["comment"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) \
            is not None

    def test_update_rewritten_topk_partition_invalidates(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        cache.on_update("t", [1], [9], ["comment"])
        assert cache.lookup_topk("t", PRED, "score", True, 10) is None

    def test_update_swaps_filter_partitions(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1, 2])
        cache.on_update("t", [2], [9], ["x"])
        entry = cache.lookup_filter("t", PRED)
        assert set(entry.scan_ids()) == {1, 9}


class TestTopkKeying:
    def test_distinct_k_distinct_entries(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        assert cache.lookup_topk("t", PRED, "score", True, 20) is None

    def test_direction_part_of_key(self):
        cache = PredicateCache()
        cache.record_topk("t", PRED, "score", True, 10, [1])
        assert cache.lookup_topk("t", PRED, "score", False, 10) is None

    def test_no_predicate_topk(self):
        cache = PredicateCache()
        cache.record_topk("t", None, "score", True, 10, [1])
        assert cache.lookup_topk("t", None, "score", True, 10) \
            is not None

    def test_drop_table(self):
        cache = PredicateCache()
        cache.record_filter("t", PRED, [1])
        cache.record_topk("t", None, "score", True, 10, [1])
        cache.drop_table("t")
        assert len(cache) == 0
