"""Morsel-driven parallel scan: determinism and serial equivalence.

The parallel scan must be indistinguishable from the serial scan in
everything but wall-clock time: same rows in the same order, same
simulated-clock charges, same profile counters, same retry
attribution, and errors surfacing at the same position. These tests
drive identical catalogs side by side and diff everything observable.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import Catalog
from repro.errors import PartitionUnavailableError
from repro.faults import STORAGE, FaultInjector, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.service import QueryService
from repro.types import DataType, Schema

SCHEMA = Schema.of(id=DataType.INTEGER, v=DataType.DOUBLE,
                   s=DataType.VARCHAR)


def make_rows(n: int, seed: int = 7) -> list[tuple]:
    rng = random.Random(seed)
    return [(i, rng.uniform(0, 100), f"k{i % 17}") for i in range(n)]


def make_catalog(parallelism: int, n_rows: int = 1500,
                 **fault_kwargs) -> Catalog:
    catalog = Catalog(rows_per_partition=50,
                      scan_parallelism=parallelism)
    catalog.create_table_from_rows("t", SCHEMA, make_rows(n_rows))
    if fault_kwargs:
        catalog.enable_fault_injection(**fault_kwargs)
    return catalog


QUERIES = [
    "SELECT * FROM t",
    "SELECT * FROM t WHERE v < 25 AND id > 100",
    "SELECT count(*), sum(v) FROM t WHERE s = 'k3'",
    "SELECT s, count(*) FROM t GROUP BY s",
    "SELECT * FROM t LIMIT 30",
    "SELECT id FROM t ORDER BY v DESC LIMIT 5",
]


def assert_equivalent(serial: Catalog, parallel: Catalog,
                      sql: str) -> None:
    want = serial.sql(sql)
    got = parallel.sql(sql)
    assert got.rows == want.rows, sql
    ps, pp = want.profile, got.profile
    assert pp.exec_ms == pytest.approx(ps.exec_ms), sql
    assert pp.partitions_loaded == ps.partitions_loaded, sql
    assert pp.total_retries == ps.total_retries, sql
    assert pp.total_backoff_ms == pytest.approx(
        ps.total_backoff_ms), sql
    for scan_s, scan_p in zip(ps.scans, pp.scans):
        assert scan_p.rows_scanned == scan_s.rows_scanned, sql
        assert scan_p.early_terminated == scan_s.early_terminated, sql


class TestSerialEquivalence:
    def test_rows_and_profile_match_serial(self):
        serial = make_catalog(1)
        parallel = make_catalog(4)
        for sql in QUERIES:
            assert_equivalent(serial, parallel, sql)

    def test_parallelism_recorded_in_profile(self):
        parallel = make_catalog(4)
        profile = parallel.sql("SELECT * FROM t").profile
        assert profile.scan_parallelism == 4
        assert profile.metrics_export()["scan_parallelism"] == 4.0
        serial = make_catalog(1)
        assert serial.sql(
            "SELECT * FROM t").profile.scan_parallelism == 1

    def test_topk_boundary_scan_parallelizes_identically(self):
        """Adaptive top-k pruning no longer forces a serial island:
        the boundary is a shared tighten-only CAS and the accounted
        skip decisions run on the consumer thread in scan-set order,
        so the parallel scan matches serial bit for bit — rows, skip
        and check counters, and the simulated clock."""
        serial = make_catalog(1)
        parallel = make_catalog(4)
        sql = "SELECT id, v FROM t ORDER BY v DESC LIMIT 7"
        want = serial.sql(sql)
        got = parallel.sql(sql)
        assert got.rows == want.rows
        scan_s = want.profile.scans[0]
        scan_p = got.profile.scans[0]
        assert scan_p.scan_parallelism == 4
        assert scan_s.topk_checks > 0
        assert scan_p.topk_checks == scan_s.topk_checks
        assert scan_p.topk_skipped == scan_s.topk_skipped
        assert scan_p.partitions_loaded == scan_s.partitions_loaded
        assert got.profile.exec_ms == pytest.approx(
            want.profile.exec_ms)

    def test_limit_early_termination(self):
        serial = make_catalog(1)
        parallel = make_catalog(4)
        sql = "SELECT * FROM t LIMIT 3"
        want = serial.sql(sql)
        got = parallel.sql(sql)
        assert got.rows == want.rows
        for scan_s, scan_p in zip(want.profile.scans,
                                  got.profile.scans):
            assert scan_p.early_terminated == scan_s.early_terminated


class TestFaultParity:
    def test_transient_faults_absorbed_identically(self):
        """Seeded per-partition fault schedules are identical, so the
        parallel scan absorbs the same retries the serial one does.

        Fault rolls are keyed on (partition id, access count), so both
        runs must see the same partitions with the same counter state:
        one catalog, fresh same-seed injector per run. (A parallel
        LIMIT scan speculatively loads a few partitions past the cut —
        injector state after such a query is not comparable, but the
        per-query profile is exact.)
        """
        spec = FaultSpec(timeout_rate=0.05, throttle_rate=0.03,
                         latency_rate=0.04, latency_ms=5.0)
        catalog = make_catalog(1)
        for seed in (11, 23, 47):
            for sql in QUERIES:
                results = {}
                for workers in (1, 4):
                    catalog.scan_parallelism = workers
                    catalog.enable_fault_injection(
                        injector=FaultInjector(seed=seed,
                                               storage=spec),
                        retry_policy=RetryPolicy(max_attempts=8))
                    results[workers] = catalog.sql(sql)
                want, got = results[1], results[4]
                assert got.rows == want.rows, sql
                ps, pp = want.profile, got.profile
                assert pp.exec_ms == pytest.approx(ps.exec_ms), sql
                assert pp.total_retries == ps.total_retries, sql
                assert pp.total_backoff_ms == pytest.approx(
                    ps.total_backoff_ms), sql
                assert (pp.retry_stats.injected_latency_ms
                        == pytest.approx(
                            ps.retry_stats.injected_latency_ms)), sql

    def test_permanent_fault_raises_same_typed_error(self):
        serial = make_catalog(1, injector=FaultInjector(seed=1),
                              retry_policy=RetryPolicy())
        parallel = make_catalog(4, injector=FaultInjector(seed=1),
                                retry_policy=RetryPolicy())
        for catalog in (serial, parallel):
            victim = catalog.tables["t"].partitions[10].partition_id
            catalog.storage.fault_injector.mark_unavailable(
                STORAGE, victim)
            with pytest.raises(PartitionUnavailableError):
                catalog.sql("SELECT * FROM t")


class TestServiceIntegration:
    def test_service_sets_catalog_parallelism(self):
        catalog = make_catalog(1)
        service = QueryService(catalog, scan_parallelism=4)
        assert catalog.scan_parallelism == 4
        result = service.sql("SELECT * FROM t WHERE id < 500")
        assert result.profile.scan_parallelism == 4
        snap = service.describe()
        assert snap["scan_parallelism"] == 4
        assert "pruning_time_ms" in snap
        assert "scans_vectorized" in snap

    def test_service_default_keeps_catalog_setting(self):
        catalog = make_catalog(3)
        QueryService(catalog)
        assert catalog.scan_parallelism == 3
