"""Tests for filter pruning (§3), fully-matching detection (§4.2), and
LIMIT pruning (§4)."""

import pytest

from repro.expr.ast import And, Compare, EndsWith, Like, col, lit
from repro.expr.pruning import TriState
from repro.pruning.base import PruneCategory, PruningResult, ScanSet
from repro.pruning.filter_pruning import FilterPruner, is_prunable
from repro.pruning.fully_matching import find_fully_matching_inverted
from repro.pruning.limit_pruning import LimitPruneOutcome, LimitPruner
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)


def make_scan_set(n_rows=100, rows_per_partition=10, layout=None):
    rows = [(i, f"s{i:04d}") for i in range(n_rows)]
    table = build_table("t", SCHEMA, rows,
                        rows_per_partition=rows_per_partition,
                        layout=layout or Layout.sorted_by("x"))
    return ScanSet((p.partition_id, p.zone_map)
                   for p in table.partitions)


class TestIsPrunable:
    def test_comparison_prunable(self):
        assert is_prunable(Compare(">", col("x"), lit(1)))

    def test_literal_not_prunable(self):
        assert not is_prunable(lit(True))

    def test_opaque_string_pred_not_prunable(self):
        assert not is_prunable(EndsWith(col("s"), "x"))

    def test_nested(self):
        assert is_prunable(And(lit(True),
                               Compare(">", col("x"), lit(1))))


class TestFilterPruner:
    def test_prunes_sorted_table(self):
        scan_set = make_scan_set()
        pruner = FilterPruner(Compare(">=", col("x"), lit(80)), SCHEMA)
        result = pruner.prune(scan_set)
        assert result.technique == PruneCategory.FILTER
        assert result.before == 10
        assert result.after == 2
        assert result.pruning_ratio == pytest.approx(0.8)

    def test_fully_matching_detected(self):
        scan_set = make_scan_set()
        pruner = FilterPruner(Compare(">=", col("x"), lit(75)), SCHEMA)
        result = pruner.prune(scan_set)
        # partitions [80..89] and [90..99] fully match; [70..79] partly
        assert len(result.fully_matching_ids) == 2
        assert set(result.fully_matching_ids) <= \
            set(result.kept.partition_ids)

    def test_fully_matching_disabled(self):
        scan_set = make_scan_set()
        pruner = FilterPruner(Compare(">=", col("x"), lit(75)), SCHEMA,
                              detect_fully_matching=False)
        result = pruner.prune(scan_set)
        assert result.fully_matching_ids == []

    def test_random_layout_prunes_nothing(self):
        scan_set = make_scan_set(layout=Layout.random(seed=2))
        pruner = FilterPruner(
            And(Compare(">=", col("x"), lit(40)),
                Compare("<", col("x"), lit(60))), SCHEMA)
        result = pruner.prune(scan_set)
        assert result.after == result.before

    def test_whole_scan_set_pruned(self):
        scan_set = make_scan_set()
        pruner = FilterPruner(Compare(">", col("x"), lit(10_000)),
                              SCHEMA)
        result = pruner.prune(scan_set)
        assert result.after == 0
        assert result.pruning_ratio == 1.0

    def test_widening_used_for_like(self):
        rows = [(i, f"group{i // 10}_{i}") for i in range(100)]
        table = build_table("t", SCHEMA, rows, rows_per_partition=10,
                            layout=Layout.sorted_by("s"))
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        pruner = FilterPruner(Like(col("s"), "group7%x"), SCHEMA)
        result = pruner.prune(scan_set)
        assert result.after < result.before

    def test_classify_matches_verdicts(self):
        scan_set = make_scan_set()
        pruner = FilterPruner(Compare(">=", col("x"), lit(75)), SCHEMA)
        verdicts = [pruner.classify(zm) for _, zm in scan_set]
        assert verdicts.count(TriState.NEVER) == 7
        assert verdicts.count(TriState.MAYBE) == 1
        assert verdicts.count(TriState.ALWAYS) == 2


class TestInvertedFullyMatching:
    def test_agrees_with_filter_pruner(self):
        scan_set = make_scan_set()
        predicate = Compare(">=", col("x"), lit(75))
        pruner = FilterPruner(predicate, SCHEMA)
        result = pruner.prune(scan_set)
        inverted = find_fully_matching_inverted(predicate, scan_set,
                                                SCHEMA)
        assert set(inverted) == set(result.fully_matching_ids)

    def test_no_predicates_means_all_fully_matching(self):
        scan_set = make_scan_set()
        inverted = find_fully_matching_inverted(lit(True), scan_set,
                                                SCHEMA)
        assert set(inverted) == set(scan_set.partition_ids)


class TestScanSet:
    def test_restrict_preserves_order(self):
        scan_set = make_scan_set()
        ids = scan_set.partition_ids
        restricted = scan_set.restrict([ids[3], ids[1]])
        assert restricted.partition_ids == [ids[1], ids[3]]

    def test_reorder(self):
        scan_set = make_scan_set()
        ids = scan_set.partition_ids
        reordered = scan_set.reorder(list(reversed(ids)))
        assert reordered.partition_ids == list(reversed(ids))

    def test_total_rows(self):
        assert make_scan_set().total_rows() == 100

    def test_contains_and_zone_map(self):
        scan_set = make_scan_set()
        pid = scan_set.partition_ids[0]
        assert pid in scan_set
        assert scan_set.zone_map(pid).row_count == 10
        with pytest.raises(KeyError):
            scan_set.zone_map(-1)


class TestLimitPruner:
    def apply_filter(self, predicate):
        scan_set = make_scan_set()
        pruner = FilterPruner(predicate, SCHEMA)
        return pruner.prune(scan_set)

    def test_prunes_to_single_partition(self):
        filtered = self.apply_filter(Compare(">=", col("x"), lit(75)))
        report = LimitPruner(3).prune(filtered.kept,
                                      filtered.fully_matching_ids)
        assert report.outcome == LimitPruneOutcome.PRUNED_TO_ONE
        assert report.result.after == 1
        kept = report.result.kept.partition_ids[0]
        assert kept in filtered.fully_matching_ids

    def test_prunes_to_many_for_large_k(self):
        filtered = self.apply_filter(Compare(">=", col("x"), lit(75)))
        # 20 fully-matching rows exist; k=15 needs both fm partitions.
        report = LimitPruner(15).prune(filtered.kept,
                                       filtered.fully_matching_ids)
        assert report.outcome == LimitPruneOutcome.PRUNED_TO_MANY
        assert report.result.after == 2

    def test_greedy_minimal_cover(self):
        # fully-matching rows (20) >= k=11 needs 2 partitions (10+10);
        # the greedy picks the largest first.
        filtered = self.apply_filter(Compare(">=", col("x"), lit(70)))
        report = LimitPruner(11).prune(filtered.kept,
                                       filtered.fully_matching_ids)
        assert report.result.kept.total_rows() >= 11

    def test_insufficient_rows_reorders(self):
        filtered = self.apply_filter(Compare(">=", col("x"), lit(75)))
        report = LimitPruner(100).prune(filtered.kept,
                                        filtered.fully_matching_ids)
        assert report.outcome == LimitPruneOutcome.INSUFFICIENT_ROWS
        assert report.result.after == filtered.after  # nothing dropped
        # fully-matching partitions come first now
        first = report.result.kept.partition_ids[0]
        assert first in filtered.fully_matching_ids

    def test_no_fully_matching(self):
        scan_set = make_scan_set(layout=Layout.random(seed=1))
        report = LimitPruner(5).prune(scan_set, [])
        assert report.outcome == LimitPruneOutcome.NO_FULLY_MATCHING

    def test_already_minimal(self):
        scan_set = make_scan_set(n_rows=10, rows_per_partition=10)
        assert len(scan_set) == 1
        report = LimitPruner(5).prune(scan_set,
                                      scan_set.partition_ids)
        assert report.outcome == LimitPruneOutcome.ALREADY_MINIMAL

    def test_limit_zero_drops_everything(self):
        scan_set = make_scan_set()
        report = LimitPruner(0).prune(scan_set, [])
        assert report.result.after == 0

    def test_limit_zero_on_single_partition(self):
        """Regression: the already-minimal fast path used to win over
        the k=0 check, so a one-partition scan set kept its partition
        (and loaded it) for LIMIT 0."""
        scan_set = make_scan_set(n_rows=10, rows_per_partition=10)
        assert len(scan_set) == 1
        report = LimitPruner(0).prune(scan_set,
                                      scan_set.partition_ids)
        assert report.outcome == LimitPruneOutcome.PRUNED_TO_ONE
        assert report.result.after == 0
        assert report.result.pruned == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            LimitPruner(-1)

    def test_outcome_pruned_flag(self):
        assert LimitPruneOutcome.PRUNED_TO_ONE.pruned
        assert not LimitPruneOutcome.NO_FULLY_MATCHING.pruned
