"""Differential tests for secondary sketches (pruning/sketches.py).

The engine with sketch pruning enabled must return bit-identical rows
to the same engine without sketches (the scalar no-sketch oracle), and
the scalar and vectorized sketch probes must agree partition by
partition — over adversarial unicode, NULL-heavy columns, degraded or
fault-injected metadata, and interleaved DML/recluster.
"""

from __future__ import annotations

from collections import Counter

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.catalog import Catalog
from repro.expr import ast
from repro.expr.eval import evaluate_predicate
from repro.faults import METADATA, FaultInjector, FaultSpec
from repro.pruning import ScanSet
from repro.pruning.sketches import (
    _IMPOSSIBLE,
    DictionarySketch,
    HistogramSketch,
    NGramSketch,
    ShapeSkipSet,
    SketchConfig,
    SketchIndex,
    SketchPruner,
    compile_sketch_probes,
    is_sketch_prunable,
    normalize_member,
)
from repro.types import DataType, Field, Schema

SCHEMA = Schema([Field("s", DataType.VARCHAR),
                 Field("k", DataType.INTEGER),
                 Field("v", DataType.DOUBLE)])

#: hand-picked adversarial strings: combining marks, BMP edge, the
#: maximum codepoint (the prefix-successor trap), and near-misses of
#: each other's 3-gram sets
NASTY_FIXED = [
    "", "a", "ab", "abc", "abcd", "aabbcc", "héllo", "éclair",
    "\U0010ffff", "ab\U0010ffff", "\U0010ffff\U0010ffffx",
    "ＡＢＣ", "￿-￿", "  spaced  ", "abcabc",
]
NASTY = st.one_of(
    st.sampled_from(NASTY_FIXED),
    st.text(alphabet=st.characters(min_codepoint=32,
                                   max_codepoint=0x10FFFF),
            max_size=10))


def make_rows(texts, ints, doubles):
    n = max(len(texts), len(ints), len(doubles), 1)
    rows = []
    for i in range(n):
        rows.append([
            texts[i % len(texts)] if texts else None,
            ints[i % len(ints)] if ints else None,
            doubles[i % len(doubles)] if doubles else None,
        ])
    return rows


def build_pair(rows, rows_per_partition=4):
    """(sketched catalog, plain oracle catalog) over identical rows."""
    sketched = Catalog(rows_per_partition=rows_per_partition)
    sketched.create_table_from_rows("t", SCHEMA, rows)
    sketched.enable_sketches(SketchConfig(dictionary_max_entries=32))
    plain = Catalog(rows_per_partition=rows_per_partition)
    plain.create_table_from_rows("t", SCHEMA, rows)
    return sketched, plain


def freeze(rows):
    return Counter(tuple(map(repr, row)) for row in rows)


def assert_equivalent(sketched, plain, sql):
    got = sketched.sql(sql)
    want = plain.sql(sql)
    assert freeze(got.rows) == freeze(want.rows), sql
    return got


def assert_pruner_sound(catalog, predicate):
    """Scalar == vectorized verdicts, and every pruned partition
    provably has zero rows satisfying the predicate."""
    schema = catalog.schema_of("t")
    sketches = catalog.sketches_of("t")
    index = catalog.sketch_index("t")
    scan_set = catalog.scan_set("t")
    scalar = SketchPruner(predicate, schema, sketches)
    vector = SketchPruner(predicate, schema, sketches, index=index)
    kept_scalar = scalar.prune(scan_set).kept.partition_ids
    kept_vector = vector.prune(scan_set).kept.partition_ids
    assert kept_scalar == kept_vector
    pruned = set(scan_set.partition_ids) - set(kept_scalar)
    by_id = {p.partition_id: p
             for p in catalog.tables["t"].partitions}
    for pid in pruned:
        mask = evaluate_predicate(predicate, by_id[pid].columns(),
                                  schema)
        assert not mask.any(), (
            f"partition {pid} pruned but has matching rows")


def sql_safe(needle: str) -> bool:
    return "'" not in needle and "\\" not in needle


class TestUnitSketches:
    def test_ngram_no_false_negatives(self):
        values = ["hello world", "héllo", None, "", "ab"]
        sketch = NGramSketch.build(values, SketchConfig())
        for value in values:
            if value:
                assert sketch.might_match_runs([value])
        assert not sketch.might_match_runs(["zzz"])

    def test_ngram_all_null_column_rejects(self):
        sketch = NGramSketch.build([None, None], SketchConfig())
        # CONTAINS over an all-NULL column is NULL everywhere: a
        # needle-bearing probe must prune, which is sound.
        assert not sketch.might_match_runs(["abc"])

    def test_ngram_too_distinct_fails_open(self):
        values = [f"unique-string-{i:06d}" for i in range(2000)]
        assert NGramSketch.build(
            values, SketchConfig(max_ngrams=64)) is None

    def test_dictionary_membership(self):
        sketch = DictionarySketch.build(
            [1, 2, 3, None], DataType.INTEGER, SketchConfig())
        for v in (1, 2, 3):
            assert sketch.might_contain(v)
        assert not sketch.might_contain(99)

    def test_dictionary_overflow_fails_open(self):
        assert DictionarySketch.build(
            list(range(100)), DataType.INTEGER,
            SketchConfig(dictionary_max_entries=16)) is None

    def test_histogram_occupancy(self):
        sketch = HistogramSketch.build(
            [0.0, 1.0, 100.0], SketchConfig(histogram_buckets=10))
        for v in (0.0, 1.0, 100.0):
            assert sketch.might_contain(v)
        assert not sketch.might_contain(-5.0)
        assert not sketch.might_contain(50.0)  # empty middle bucket

    def test_histogram_nan_fails_open(self):
        assert HistogramSketch.build(
            [1.0, float("nan")], SketchConfig()) is None

    def test_normalize_negative_zero(self):
        # -0.0 == 0.0 must hash identically for DOUBLE dictionaries.
        a = normalize_member(-0.0, DataType.DOUBLE)
        b = normalize_member(0.0, DataType.DOUBLE)
        assert repr(a) == repr(b) == "0.0"

    def test_normalize_bool_is_not_int(self):
        assert normalize_member(True, DataType.BOOLEAN) is True
        assert normalize_member(True, DataType.INTEGER) is None

    def test_normalize_cross_type_equality(self):
        # 3 == 3.0: both sides reach one canonical value.
        assert normalize_member(3.0, DataType.INTEGER) == 3
        assert normalize_member(3, DataType.DOUBLE) == 3.0
        # 2.5 can never equal an INTEGER: the candidate is droppable.
        assert normalize_member(2.5, DataType.INTEGER) is _IMPOSSIBLE

    def test_probe_compilation(self):
        pred = ast.And(
            ast.Contains(ast.col("s"), "needle"),
            ast.Compare("=", ast.col("k"), ast.lit(3)),
            ast.Compare(">", ast.col("v"), ast.lit(0.0)))
        probes = compile_sketch_probes(pred, SCHEMA)
        assert {p.kind for p in probes} == {"ngram", "member"}
        assert is_sketch_prunable(pred, SCHEMA)
        # disjunctions are never probed
        assert not is_sketch_prunable(
            ast.Or(ast.Contains(ast.col("s"), "xyz"),
                   ast.Compare("=", ast.col("k"), ast.lit(1))),
            SCHEMA)

    def test_short_needle_not_probed(self):
        assert not is_sketch_prunable(
            ast.Contains(ast.col("s"), "ab"), SCHEMA, ngram_size=3)


class TestDifferentialHypothesis:
    @settings(max_examples=25, deadline=None)
    @given(
        texts=st.lists(st.one_of(NASTY, st.none()),
                       min_size=1, max_size=30),
        ints=st.lists(st.one_of(st.integers(-50, 50), st.none()),
                      min_size=1, max_size=30),
        needle=NASTY,
    )
    def test_engine_matches_no_sketch_oracle(self, texts, ints,
                                             needle):
        rows = make_rows(texts, ints, [0.5, None, -0.0, 3.25])
        sketched, plain = build_pair(rows)
        queries = [
            "SELECT * FROM t WHERE k = 7",
            "SELECT * FROM t WHERE k IN (1, 2, 60)",
        ]
        if sql_safe(needle):
            queries += [
                f"SELECT * FROM t WHERE CONTAINS(s, '{needle}')",
                f"SELECT * FROM t WHERE ENDSWITH(s, '{needle}')",
                "SELECT s, k FROM t WHERE "
                f"CONTAINS(s, '{needle}') AND k = 3",
            ]
            if "%" not in needle and "_" not in needle:
                queries.append(
                    f"SELECT * FROM t WHERE s LIKE '%{needle}%'")
        for sql in queries:
            assert_equivalent(sketched, plain, sql)

    @settings(max_examples=25, deadline=None)
    @given(
        texts=st.lists(st.one_of(NASTY, st.none()),
                       min_size=1, max_size=25),
        ints=st.lists(st.one_of(st.integers(-30, 30), st.none()),
                      min_size=1, max_size=25),
        doubles=st.lists(
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False,
                          width=32),
                st.none()),
            min_size=1, max_size=25),
        needle=NASTY,
        literal=st.integers(-35, 35),
    )
    def test_pruner_sound_and_scalar_equals_vectorized(
            self, texts, ints, doubles, needle, literal):
        rows = make_rows(texts, ints, doubles)
        sketched, _ = build_pair(rows)
        predicates = [
            ast.Contains(ast.col("s"), needle),
            ast.EndsWith(ast.col("s"), needle),
            ast.Compare("=", ast.col("k"), ast.lit(literal)),
            ast.Compare("=", ast.col("v"), ast.lit(float(literal))),
            ast.InList(ast.col("k"), [1, 2, 3]),
            ast.And(ast.Contains(ast.col("s"), needle),
                    ast.Compare("=", ast.col("k"),
                                ast.lit(literal))),
        ]
        if "%" not in needle and "_" not in needle:
            predicates.append(ast.Like(ast.col("s"), f"%{needle}%"))
        for predicate in predicates:
            assert_pruner_sound(sketched, predicate)

    @settings(max_examples=20, deadline=None)
    @given(ints=st.lists(st.one_of(st.integers(-20, 20), st.none()),
                         min_size=1, max_size=40),
           point=st.integers(-25, 25))
    def test_null_heavy_equality(self, ints, point):
        rows = make_rows([None, "x"], ints, [None])
        sketched, plain = build_pair(rows)
        assert_equivalent(sketched, plain,
                          f"SELECT * FROM t WHERE k = {point}")
        assert_pruner_sound(
            sketched, ast.Compare("=", ast.col("k"), ast.lit(point)))


class TestFaultTolerance:
    def _rows(self):
        return [[f"value-{i % 5}", i % 9, float(i)]
                for i in range(48)]

    def test_sketch_metadata_outage_fails_open(self):
        sketched, plain = build_pair(self._rows())
        injector = FaultInjector(seed=7)
        sketched.enable_fault_injection(injector)
        injector.mark_unavailable(METADATA, ("sketches", "t"))
        sql = "SELECT * FROM t WHERE CONTAINS(s, 'value-3')"
        got = assert_equivalent(sketched, plain, sql)
        # No sketch pruning happened, but the query still answered.
        assert got.profile.scans[0].sketch_result is None

    def test_full_metadata_outage_still_correct(self):
        sketched, plain = build_pair(self._rows())
        injector = FaultInjector(seed=11)
        sketched.enable_fault_injection(injector)
        injector.set_outage(METADATA)
        sql = "SELECT * FROM t WHERE CONTAINS(s, 'value-2') AND k = 2"
        assert_equivalent(sketched, plain, sql)
        injector.set_outage(METADATA, down=False)
        got = assert_equivalent(sketched, plain, sql)
        assert got.profile.scans[0].sketch_result is not None

    def test_degraded_partitions_never_sketch_pruned(self):
        sketched, _ = build_pair(self._rows())
        base = sketched.scan_set("t")
        victim = base.partition_ids[0]
        degraded = ScanSet(base.entries, degraded_ids=[victim])
        pruner = SketchPruner(
            ast.Contains(ast.col("s"), "no-such-needle"),
            SCHEMA, sketched.sketches_of("t"),
            index=sketched.sketch_index("t"))
        result = pruner.prune(degraded)
        assert victim in result.kept.partition_ids
        assert victim not in result.pruned_ids

    def test_transient_faults_equivalent(self):
        sketched, plain = build_pair(self._rows())
        injector = FaultInjector(
            seed=13, metadata=FaultSpec(timeout_rate=0.2))
        sketched.enable_fault_injection(injector)
        for point in range(6):
            assert_equivalent(
                sketched, plain,
                f"SELECT * FROM t WHERE k = {point} "
                f"AND CONTAINS(s, 'value-{point}')")


class TestDmlAndRecluster:
    @settings(max_examples=12, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 10**6), min_size=1, max_size=4),
        needle=st.sampled_from(["alpha", "beta", "gamma", "zzz"]),
    )
    def test_interleaved_dml_stays_equivalent(self, seeds, needle):
        rows = [[f"{w}-{i}", i % 11, float(i % 5)]
                for i, w in enumerate(
                    ["alpha", "beta", "gamma"] * 10)]
        sketched, plain = build_pair(rows)
        sql = (f"SELECT * FROM t WHERE CONTAINS(s, '{needle}') "
               f"AND k = 4")
        for seed in seeds:
            step = seed % 3
            if step == 0:
                new = [[f"alpha-new-{seed}", seed % 11,
                        float(seed % 7)]]
                sketched.insert("t", new)
                plain.insert("t", new)
            elif step == 1:
                pred = ast.Compare("=", ast.col("k"),
                                   ast.lit(seed % 11))
                sketched.delete_where("t", pred)
                plain.delete_where("t", pred)
            else:
                sketched.recluster("t", "k")
            assert_equivalent(sketched, plain, sql)
            assert_pruner_sound(
                sketched, ast.Contains(ast.col("s"), needle))

    def test_recluster_rebuilds_sketches_for_all_partitions(self):
        rows = [[f"word-{i % 4}", i % 6, float(i)]
                for i in range(60)]
        sketched, _ = build_pair(rows)
        before_ids = set(sketched.scan_set("t").partition_ids)
        sketched.recluster("t", "k")
        after_ids = set(sketched.scan_set("t").partition_ids)
        assert after_ids != before_ids  # rewrite actually happened
        sketches = sketched.sketches_of("t")
        assert after_ids <= set(sketches)  # every partition re-sketched
        for pid in before_ids - after_ids:
            assert pid not in sketches  # no stale entries

    def test_update_where_rebuilds(self):
        rows = [[f"word-{i % 4}", i % 6, float(i)]
                for i in range(24)]
        sketched, plain = build_pair(rows)
        pred = ast.Compare("=", ast.col("k"), ast.lit(2))
        sketched.update_where("t", pred, "s", lambda old: "rewritten")
        plain.update_where("t", pred, "s", lambda old: "rewritten")
        assert_equivalent(
            sketched, plain,
            "SELECT * FROM t WHERE CONTAINS(s, 'rewritten')")
        assert_pruner_sound(
            sketched, ast.Contains(ast.col("s"), "word-1"))


class TestSkipSets:
    @staticmethod
    def _pair():
        """Zone maps too wide to prune, sketches disabled (empty
        column set) so only the runtime scan can prove emptiness."""
        rows = []
        for p in range(8):
            for i in range(8):
                if p == 0:
                    k = 3 if i % 2 else 0
                else:
                    k = 7 if i % 2 else 0
                rows.append([f"s{p}-{i}", k, float(k)])
        sketched = Catalog(rows_per_partition=8)
        sketched.create_table_from_rows("t", SCHEMA, rows)
        sketched.enable_sketches(SketchConfig(columns=()))
        plain = Catalog(rows_per_partition=8)
        plain.create_table_from_rows("t", SCHEMA, rows)
        return sketched, plain

    def test_second_execution_skips_proven_empty(self):
        sketched, plain = self._pair()
        sql = "SELECT * FROM t WHERE k = 3"
        first = assert_equivalent(sketched, plain, sql)
        assert not first.profile.scans[0].skip_set_hit
        assert sketched.skip_sets.stats()["records"] == 1
        second = assert_equivalent(sketched, plain, sql)
        assert second.profile.scans[0].skip_set_hit
        assert second.profile.scans[0].skip_set_pruned == 7

    def test_version_bump_invalidates(self):
        sketched, plain = self._pair()
        sql = "SELECT * FROM t WHERE k = 3"
        sketched.sql(sql)
        sketched.sql(sql)  # records, then hits
        new = [["fresh-row", 3, 3.0]]
        sketched.insert("t", new)
        plain.insert("t", new)
        result = assert_equivalent(sketched, plain, sql)
        assert not result.profile.scans[0].skip_set_hit
        assert any(r[0] == "fresh-row" for r in result.rows)

    def test_incomplete_scans_never_recorded(self):
        sketched, _ = self._pair()
        sketched.sql("SELECT * FROM t WHERE k = 3 LIMIT 2")
        assert sketched.skip_sets.stats()["records"] == 0

    def test_lru_and_drop_table(self):
        skip = ShapeSkipSet(max_entries=2)
        preds = [ast.Compare("=", ast.col("k"), ast.lit(i))
                 for i in range(3)]
        for pred in preds:
            assert skip.record("t", pred, 1, [7])
        assert len(skip) == 2  # LRU evicted the oldest
        assert skip.lookup("t", preds[0], 1) is None
        assert skip.lookup("t", preds[2], 1) == frozenset({7})
        skip.drop_table("T")
        assert len(skip) == 0

    def test_stale_version_lookup_evicts(self):
        skip = ShapeSkipSet()
        pred = ast.Compare("=", ast.col("k"), ast.lit(1))
        skip.record("t", pred, version=1, empty_ids=[4, 5])
        assert skip.lookup("t", pred, version=2) is None
        assert skip.stats()["invalidations"] == 1
        assert len(skip) == 0


class TestIndexCoverage:
    def test_cuckoo_backed_sketches_take_scalar_path(self):
        rows = [[f"text-{i % 3}", i, 0.0] for i in range(24)]
        catalog = Catalog(rows_per_partition=4)
        catalog.create_table_from_rows("t", SCHEMA, rows)
        catalog.enable_sketches(SketchConfig(filter_kind="cuckoo"))
        assert catalog.sketches_of("t")
        assert_pruner_sound(catalog,
                            ast.Contains(ast.col("s"), "text-1"))
        assert_pruner_sound(catalog,
                            ast.Contains(ast.col("s"), "absent"))

    def test_index_row_lookup_misses_fall_back(self):
        rows = [["abc", 1, 0.0]] * 8
        sketched, _ = build_pair(rows)
        # An index over no partitions covers nothing: scalar path only.
        empty_index = SketchIndex([])
        pruner = SketchPruner(ast.Contains(ast.col("s"), "zzz"),
                              SCHEMA, dict(sketched.sketches_of("t")),
                              index=empty_index)
        result = pruner.prune(sketched.scan_set("t"))
        assert not result.kept.partition_ids  # scalar probes pruned all


class TestPersistenceRoundTrip:
    def test_save_load_preserves_sketch_config(self, tmp_path):
        rows = [[f"word-{i % 4}", i % 6, float(i)]
                for i in range(24)]
        sketched, _ = build_pair(rows)
        sketched.save(tmp_path / "snap")
        restored = Catalog.load(tmp_path / "snap")
        assert restored.sketch_config == sketched.sketch_config
        assert restored.sketches_of("t")
        sql = "SELECT * FROM t WHERE CONTAINS(s, 'word-2')"
        assert freeze(restored.sql(sql).rows) \
            == freeze(sketched.sql(sql).rows)

    def test_plain_snapshot_loads_without_sketches(self, tmp_path):
        plain = Catalog(rows_per_partition=4)
        plain.create_table_from_rows(
            "t", SCHEMA, [["a", 1, 0.0]] * 8)
        plain.save(tmp_path / "snap")
        restored = Catalog.load(tmp_path / "snap")
        assert restored.sketch_config is None

    def test_durability_recovery_rebuilds_sketches(self, tmp_path):
        first = Catalog(rows_per_partition=4)
        first.enable_durability(tmp_path / "dur")
        first.enable_sketches()
        rows = [[f"word-{i % 4}", i % 6, float(i)]
                for i in range(24)]
        first.create_table_from_rows("t", SCHEMA, rows)
        first.checkpoint()
        first.insert("t", [["word-extra", 99, 1.0]])

        recovered = Catalog.recover(tmp_path / "dur",
                                    rows_per_partition=4)
        assert recovered.sketch_config is not None
        sketches = recovered.sketches_of("t")
        scan_ids = set(recovered.scan_set("t").partition_ids)
        assert scan_ids <= set(sketches)  # WAL-replayed insert too
        got = recovered.sql("SELECT * FROM t WHERE k = 99")
        assert len(got.rows) == 1
