"""Tests for the adaptive pruning tree (§3.2): reordering and cutoff."""

from repro.expr.ast import And, Compare, EndsWith, Like, Or, col, lit
from repro.pruning.base import ScanSet
from repro.pruning.filter_pruning import FilterPruner
from repro.pruning.pruning_tree import PruningTree, TreeConfig
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, y=DataType.INTEGER,
                   s=DataType.VARCHAR)


def make_scan_set(n_rows=1000, rows_per_partition=10):
    rows = [(i, i % 7, f"s{i:05d}") for i in range(n_rows)]
    table = build_table("t", SCHEMA, rows,
                        rows_per_partition=rows_per_partition,
                        layout=Layout.sorted_by("x"))
    return ScanSet((p.partition_id, p.zone_map)
                   for p in table.partitions)


SELECTIVE = Compare(">=", col("x"), lit(900))      # prunes 90%
INEFFECTIVE = Compare(">=", col("y"), lit(0))      # prunes nothing
OPAQUE = EndsWith(col("s"), "7")                   # never prunable


class TestCorrectness:
    def test_matches_plain_pruner(self):
        predicate = And(SELECTIVE, INEFFECTIVE)
        scan_set = make_scan_set()
        tree_result = PruningTree(predicate, SCHEMA).prune(scan_set)
        plain_result = FilterPruner(
            predicate, SCHEMA,
            detect_fully_matching=False).prune(scan_set)
        assert set(tree_result.kept.partition_ids) == \
            set(plain_result.kept.partition_ids)

    def test_or_requires_all_children_never(self):
        predicate = Or(SELECTIVE, Compare("<", col("x"), lit(50)))
        scan_set = make_scan_set()
        result = PruningTree(predicate, SCHEMA).prune(scan_set)
        # keeps x<50 partitions (5) and x>=900 partitions (10)
        assert result.after == 15

    def test_single_leaf_tree(self):
        result = PruningTree(SELECTIVE, SCHEMA).prune(make_scan_set())
        assert result.after == 10


class TestReordering:
    def test_selective_leaf_moves_first(self):
        predicate = And(INEFFECTIVE, OPAQUE, SELECTIVE)
        config = TreeConfig(reorder_interval=8, enable_cutoff=False)
        tree = PruningTree(predicate, SCHEMA, config)
        tree.prune(make_scan_set())
        root_children = tree.root.children
        labels = [c.stats.label for c in root_children]
        assert labels[0] == SELECTIVE.to_sql()

    def test_reordering_reduces_work(self):
        predicate = And(OPAQUE, INEFFECTIVE, SELECTIVE)
        scan_set = make_scan_set()
        adaptive = PruningTree(
            predicate, SCHEMA,
            TreeConfig(reorder_interval=8, enable_cutoff=False))
        adaptive.prune(scan_set)
        static = PruningTree(
            predicate, SCHEMA,
            TreeConfig(enable_reorder=False, enable_cutoff=False))
        static.prune(scan_set)
        assert adaptive.simulated_ms < static.simulated_ms

    def test_disabled_reordering_keeps_order(self):
        predicate = And(INEFFECTIVE, SELECTIVE)
        tree = PruningTree(
            predicate, SCHEMA,
            TreeConfig(enable_reorder=False, enable_cutoff=False))
        tree.prune(make_scan_set())
        labels = [c.stats.label for c in tree.root.children]
        assert labels[0] == INEFFECTIVE.to_sql()


class TestCutoff:
    def test_ineffective_and_child_cut(self):
        # INEFFECTIVE first so it is evaluated on every partition and
        # accumulates enough samples to be judged.
        predicate = And(INEFFECTIVE, SELECTIVE)
        config = TreeConfig(cutoff_min_samples=16,
                            enable_reorder=False)
        tree = PruningTree(predicate, SCHEMA, config)
        tree.prune(make_scan_set())
        stats = {s.label: s for s in tree.node_stats()}
        assert stats[INEFFECTIVE.to_sql()].cut
        assert not stats[SELECTIVE.to_sql()].cut

    def test_or_children_never_cut(self):
        predicate = Or(INEFFECTIVE, SELECTIVE)
        config = TreeConfig(cutoff_min_samples=8)
        tree = PruningTree(predicate, SCHEMA, config)
        tree.prune(make_scan_set())
        # direct children of OR are not below an AND; never cut
        for child in tree.root.children:
            assert not child.stats.cut

    def test_whole_or_under_and_may_be_cut(self):
        ineffective_or = Or(INEFFECTIVE, OPAQUE)
        predicate = And(ineffective_or, SELECTIVE)
        config = TreeConfig(cutoff_min_samples=16,
                            enable_reorder=False)
        tree = PruningTree(predicate, SCHEMA, config)
        tree.prune(make_scan_set())
        or_stats = [s for s in tree.node_stats() if s.label == "OR"]
        assert or_stats[0].cut

    def test_cutoff_never_loses_correctness(self):
        predicate = And(SELECTIVE, INEFFECTIVE)
        scan_set = make_scan_set()
        tree = PruningTree(predicate, SCHEMA,
                           TreeConfig(cutoff_min_samples=8))
        result = tree.prune(scan_set)
        plain = FilterPruner(predicate, SCHEMA,
                             detect_fully_matching=False).prune(scan_set)
        # cutoff only keeps extra partitions, never drops extra ones
        assert set(plain.kept.partition_ids) <= \
            set(result.kept.partition_ids)

    def test_cutoff_disabled(self):
        predicate = And(SELECTIVE, INEFFECTIVE)
        tree = PruningTree(predicate, SCHEMA,
                           TreeConfig(enable_cutoff=False))
        tree.prune(make_scan_set())
        assert not any(s.cut for s in tree.node_stats())

    def test_stats_monitored(self):
        predicate = And(SELECTIVE, INEFFECTIVE)
        tree = PruningTree(predicate, SCHEMA,
                           TreeConfig(enable_cutoff=False))
        tree.prune(make_scan_set())
        stats = {s.label: s for s in tree.node_stats()}
        selective = stats[SELECTIVE.to_sql()]
        assert selective.evaluations == 100
        assert selective.prune_rate > 0.8
        assert selective.avg_cost_units > 0
