"""Tests for the SQL type system."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.types import (
    DataType,
    Field,
    Schema,
    common_numeric_type,
    comparable,
    date_to_days,
    days_to_date,
    infer_type,
)


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.VARCHAR.is_numeric
        assert not DataType.BOOLEAN.is_numeric
        assert not DataType.DATE.is_numeric

    def test_numpy_dtypes(self):
        assert DataType.INTEGER.numpy_dtype() == np.dtype(np.int64)
        assert DataType.DOUBLE.numpy_dtype() == np.dtype(np.float64)
        assert DataType.VARCHAR.numpy_dtype() == np.dtype(object)
        assert DataType.BOOLEAN.numpy_dtype() == np.dtype(np.bool_)
        assert DataType.DATE.numpy_dtype() == np.dtype(np.int64)


class TestDateConversion:
    def test_epoch(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_roundtrip(self):
        for date in (datetime.date(1992, 1, 1),
                     datetime.date(2024, 11, 5),
                     datetime.date(1969, 12, 31)):
            assert days_to_date(date_to_days(date)) == date

    def test_negative_days_before_epoch(self):
        assert date_to_days(datetime.date(1969, 12, 31)) == -1


class TestInferType:
    @pytest.mark.parametrize("value,expected", [
        (True, DataType.BOOLEAN),
        (7, DataType.INTEGER),
        (1.5, DataType.DOUBLE),
        ("x", DataType.VARCHAR),
        (datetime.date(2020, 1, 1), DataType.DATE),
        (np.int64(3), DataType.INTEGER),
        (np.float64(3.0), DataType.DOUBLE),
        (np.bool_(True), DataType.BOOLEAN),
    ])
    def test_inference(self, value, expected):
        assert infer_type(value) == expected

    def test_bool_is_not_integer(self):
        # bool is a subclass of int in Python; SQL keeps them distinct.
        assert infer_type(True) == DataType.BOOLEAN

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestPromotion:
    def test_int_int(self):
        assert common_numeric_type(
            DataType.INTEGER, DataType.INTEGER) == DataType.INTEGER

    def test_int_double(self):
        assert common_numeric_type(
            DataType.INTEGER, DataType.DOUBLE) == DataType.DOUBLE

    def test_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(DataType.VARCHAR, DataType.INTEGER)

    def test_comparable(self):
        assert comparable(DataType.INTEGER, DataType.DOUBLE)
        assert comparable(DataType.VARCHAR, DataType.VARCHAR)
        assert not comparable(DataType.VARCHAR, DataType.INTEGER)
        assert not comparable(DataType.DATE, DataType.INTEGER)


class TestSchema:
    def test_names_lowercased(self):
        schema = Schema([Field("Ts", DataType.INTEGER)])
        assert schema.names() == ["ts"]
        assert "TS" in schema

    def test_duplicate_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", DataType.INTEGER),
                    Field("A", DataType.DOUBLE)])

    def test_empty_field_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("", DataType.INTEGER)

    def test_index_and_dtype(self):
        schema = Schema.of(a=DataType.INTEGER, b=DataType.VARCHAR)
        assert schema.index_of("b") == 1
        assert schema.dtype_of("A") == DataType.INTEGER
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_select_preserves_order(self):
        schema = Schema.of(a=DataType.INTEGER, b=DataType.VARCHAR,
                           c=DataType.DOUBLE)
        sub = schema.select(["c", "a"])
        assert sub.names() == ["c", "a"]

    def test_concat_clash_rejected(self):
        left = Schema.of(a=DataType.INTEGER)
        right = Schema.of(a=DataType.DOUBLE)
        with pytest.raises(SchemaError):
            left.concat(right)

    def test_equality_and_hash(self):
        s1 = Schema.of(a=DataType.INTEGER)
        s2 = Schema.of(a=DataType.INTEGER)
        s3 = Schema.of(a=DataType.DOUBLE)
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3
