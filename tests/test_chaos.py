"""Seeded chaos suite: concurrent SELECT + DML under injected faults.

The differential invariant (the PR's acceptance bar): under a
*transient-only* fault schedule, every query must return exactly the
rows the fault-free oracle returns — faults may slow queries down
(retries, backoff, degraded scans) but never change results and never
surface non-typed exceptions. Permanent faults must fail with their
typed errors; a metadata-only outage must degrade to full scans, not
fail.

Kept separate from the tier-1 suite (see the ``chaos`` CI job):
the runs are heavier and exercise randomized-but-seeded schedules.
"""

from __future__ import annotations

import threading

import pytest

from oracle import run_plan
from repro import (
    Catalog,
    DataType,
    FaultInjector,
    FaultSpec,
    Layout,
    PartitionUnavailableError,
    ReproError,
    RetryPolicy,
    Schema,
)
from repro.faults import METADATA, STORAGE
from repro.service import QueryService

from conftest import make_events_rows

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)

#: ~9% total fault rate, transient-only: timeouts, throttling, wire
#: corruption (detected by checksums, retried), latency spikes.
TRANSIENT_STORAGE = FaultSpec(timeout_rate=0.03, throttle_rate=0.02,
                              corruption_rate=0.02, latency_rate=0.02,
                              latency_ms=25.0)
TRANSIENT_METADATA = FaultSpec(timeout_rate=0.04, throttle_rate=0.02,
                               latency_rate=0.02, latency_ms=10.0)

#: max_attempts=8 makes the per-operation leak probability ~0.09^8
#: (~4e-9): the retry layer absorbs the whole schedule in practice.
CHAOS_RETRIES = RetryPolicy(max_attempts=8)

CHAOS_SEEDS = (11, 23, 47)


def make_catalog(n_rows: int = 2000,
                 rows_per_partition: int = 100,
                 scan_parallelism: int = 1) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition,
                      scan_parallelism=scan_parallelism)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    return catalog


class TestChaosStress:
    """12 client threads, ~9% fault rate, zero tolerance for wrong
    rows or non-typed exceptions."""

    N_SELECT_THREADS = 8
    N_DML_THREADS = 4
    SELECTS_PER_THREAD = 20
    DML_ROUNDS = 5

    STABLE_QUERIES = [
        "SELECT * FROM events WHERE ts BETWEEN 150 AND 420",
        "SELECT * FROM events WHERE ts BETWEEN 1200 AND 1230",
        "SELECT count(*) AS c FROM events WHERE ts < 500",
        "SELECT category, count(*) AS c FROM events "
        "WHERE ts < 800 GROUP BY category",
        "SELECT min(ts) AS lo, max(ts) AS hi FROM events "
        "WHERE ts BETWEEN 300 AND 1700",
        "SELECT count(*) AS c FROM events "
        "WHERE category = 'alpha' AND ts < 2000",
        "SELECT * FROM events WHERE score >= 990000 AND ts < 2000",
        "SELECT * FROM events WHERE ts BETWEEN 60 AND 90 "
        "ORDER BY ts DESC LIMIT 10",
    ]

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_transient_chaos_matches_oracle(self, seed):
        self._run_chaos(seed)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_transient_chaos_with_parallel_scans(self, seed):
        """Same zero-tolerance stress with every scan fanning morsels
        out to 4 worker threads on top of the 12 client threads."""
        self._run_chaos(seed, scan_parallelism=4)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_transient_chaos_with_durability(self, seed, tmp_path):
        """Same stress with the WAL on and background checkpoints
        firing mid-storm; afterwards a recovery from the durability
        directory must reproduce the live catalog exactly."""
        self._run_chaos(seed, durability_dir=tmp_path / "wal")

    def _run_chaos(self, seed, scan_parallelism: int = 1,
                   durability_dir=None):
        catalog = make_catalog(2000,
                               scan_parallelism=scan_parallelism)
        # Oracle answers computed before any fault injection exists.
        expected = {
            sql: sorted(run_plan(catalog.plan_sql(sql), catalog)[1])
            for sql in self.STABLE_QUERIES
        }
        injector = catalog.enable_fault_injection(
            FaultInjector(seed=seed, storage=TRANSIENT_STORAGE,
                          metadata=TRANSIENT_METADATA),
            retry_policy=CHAOS_RETRIES)
        service = QueryService(catalog, slots_per_cluster=4,
                               max_queue_per_cluster=64,
                               min_clusters=1, max_clusters=3,
                               query_retry_policy=RetryPolicy(
                                   max_attempts=4),
                               durability_dir=durability_dir,
                               durability_checkpoint_bytes=64 * 1024)
        mismatches: list[str] = []
        errors: list[BaseException] = []
        untyped: list[BaseException] = []
        start = threading.Barrier(
            self.N_SELECT_THREADS + self.N_DML_THREADS)

        def record_error(exc: BaseException) -> None:
            errors.append(exc)
            if not isinstance(exc, ReproError):
                untyped.append(exc)

        def select_worker(worker: int):
            start.wait()
            for i in range(self.SELECTS_PER_THREAD):
                sql = self.STABLE_QUERIES[
                    (worker + i) % len(self.STABLE_QUERIES)]
                try:
                    got = sorted(service.sql(sql).rows)
                    if got != expected[sql]:
                        mismatches.append(sql)
                except BaseException as exc:  # noqa: BLE001
                    record_error(exc)

        def dml_worker(worker: int):
            start.wait()
            base = 10_000 + worker * 1_000
            for _ in range(self.DML_ROUNDS):
                try:
                    rows = [(base + i, "dmlcat", 1.0, i)
                            for i in range(40)]
                    service.insert("events", rows)
                    service.sql(
                        f"UPDATE events SET score = score + 1 "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
                    service.sql(
                        f"DELETE FROM events "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
                except BaseException as exc:  # noqa: BLE001
                    record_error(exc)

        threads = [threading.Thread(target=select_worker, args=(w,))
                   for w in range(self.N_SELECT_THREADS)]
        threads += [threading.Thread(target=dml_worker, args=(w,))
                    for w in range(self.N_DML_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not any(t.is_alive() for t in threads)

        # Differential invariant: transient-only faults never change
        # results and never leak non-typed exceptions.
        assert untyped == []
        assert errors == []
        assert mismatches == []

        # Every DML band was emptied: the data equals the seed data.
        with injector.paused():
            final = service.sql("SELECT count(*) AS c FROM events")
        assert final.rows == [(2000,)]

        # The schedule actually exercised the resilience machinery.
        assert injector.total_injected() > 0
        retries = (catalog.storage.stats.retries
                   + catalog.metadata.retry_stats.retries)
        assert retries > 0
        snapshot = service.metrics.snapshot()
        assert snapshot.get("retries", 0) >= 0  # exported series exists

        if durability_dir is not None:
            import time

            # Quiesce: let any in-flight background checkpoint land
            # before reading the directory from a second catalog.
            deadline = time.time() + 15
            while service._checkpointing and time.time() < deadline:
                time.sleep(0.02)
            assert not service._checkpointing
            assert snapshot["wal_appends"] > 0
            recovered = Catalog.recover(durability_dir)
            with injector.paused():
                for sql in self.STABLE_QUERIES:
                    assert sorted(recovered.sql(sql).rows) == \
                        sorted(service.sql(sql).rows), sql
            assert recovered.sql(
                "SELECT count(*) AS c FROM events").rows == [(2000,)]

    def test_same_seed_same_injection_counts(self):
        # Partition ids are globally monotonic, so determinism is
        # checked by replaying the same workload against the same
        # catalog with a fresh injector of the same seed.
        catalog = make_catalog(1000)

        def run_once() -> dict[str, int]:
            injector = catalog.enable_fault_injection(
                FaultInjector(seed=7, storage=TRANSIENT_STORAGE,
                              metadata=TRANSIENT_METADATA),
                retry_policy=CHAOS_RETRIES)
            for _ in range(5):
                catalog.sql("SELECT count(*) AS c FROM events "
                            "WHERE value >= 0")
            return injector.injected()

        first = run_once()
        assert first == run_once()
        assert sum(first.values()) > 0


class TestPermanentFaults:
    def test_lost_partition_fails_typed(self):
        catalog = make_catalog(1000)
        injector = catalog.enable_fault_injection(
            FaultInjector(seed=3), retry_policy=CHAOS_RETRIES)
        victim = catalog.tables["events"].partition_ids[2]
        injector.mark_unavailable(STORAGE, victim)
        service = QueryService(catalog, enable_result_cache=False)
        with pytest.raises(PartitionUnavailableError) as info:
            service.sql("SELECT * FROM events WHERE value >= 0")
        assert info.value.partition_id == victim
        # Pruning can still dodge the lost partition: a predicate that
        # excludes it succeeds (victim covers ts 200..299).
        result = service.sql("SELECT count(*) AS c FROM events "
                             "WHERE ts >= 900")
        assert result.rows == [(100,)]

    def test_metadata_outage_degrades_not_fails(self):
        catalog = make_catalog(1000)
        oracle = catalog.sql(
            "SELECT count(*) AS c FROM events WHERE ts < 300")
        injector = catalog.enable_fault_injection(
            FaultInjector(seed=3), retry_policy=CHAOS_RETRIES)
        injector.set_outage(METADATA)
        service = QueryService(catalog, enable_result_cache=False)
        result = service.sql(
            "SELECT count(*) AS c FROM events WHERE ts < 300")
        assert result.rows == oracle.rows
        assert result.degraded
        assert result.profile.degraded_partitions == 10
        assert service.metrics.counter("queries_degraded").value >= 1
        # Recovery: once the outage lifts, pruning (and the breaker)
        # come back.
        injector.set_outage(METADATA, down=False)
        breaker = catalog.metadata.breaker
        for _ in range(2 * breaker.probe_interval + 2):
            result = service.sql(
                "SELECT count(*) AS c FROM events WHERE ts < 300")
        assert not result.degraded
        assert result.profile.partitions_loaded == 3
