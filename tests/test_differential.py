"""Differential testing: the full engine vs the reference oracle on
generated workloads of every query kind.

The engine runs with all pruning techniques enabled; the oracle
(tests/oracle.py) executes the same logical plans with no partitioning
and no pruning. Any divergence means a pruning technique dropped or
duplicated rows.
"""

from collections import Counter

import pytest

from repro.sql import parse_select
from repro.sql.planner import plan_select
from repro.workload import Platform, PlatformConfig, WorkloadGenerator

from oracle import run_plan

N_QUERIES_PER_KIND = 25


@pytest.fixture(scope="module")
def platform():
    return Platform(PlatformConfig(
        seed=3, rows_per_partition=50, n_small_tables=3,
        n_medium_tables=3, n_large_tables=2, n_xlarge_tables=0,
        n_dim_tables=2, dim_rows=64))


def sort_columns(sql: str) -> list[int]:
    """Indexes of ORDER BY columns in the output (for tie handling)."""
    stmt = parse_select(sql)
    if not stmt.order_by:
        return []
    return list(range(len(stmt.order_by)))


def check_query(platform, sql: str) -> None:
    stmt = parse_select(sql)
    plan = plan_select(stmt, platform.catalog.schema_of)
    oracle_schema, oracle_rows = run_plan(plan, platform.catalog)
    engine = platform.catalog.sql(sql)
    assert engine.schema.names() == oracle_schema.names(), sql

    def freeze(rows):
        return Counter(tuple(map(repr, row)) for row in rows)

    if stmt.limit is not None:
        # The oracle applies the same LIMIT: counts must agree.
        assert engine.num_rows == len(oracle_rows), sql
        if stmt.order_by:
            # Ties make exact row sets ambiguous; the ordered prefix of
            # sort keys must agree and every engine row must appear in
            # the unlimited oracle result.
            unlimited = run_plan(
                _strip_limit(plan), platform.catalog)[1]
            pool = freeze(unlimited)
            for key, count in freeze(engine.rows).items():
                assert pool[key] >= count, sql
            # compare the sort-key value sequences
            key_positions = _order_key_positions(stmt, engine)
            engine_keys = [[repr(r[i]) for i in key_positions]
                           for r in engine.rows]
            oracle_keys = [[repr(r[i]) for i in key_positions]
                           for r in oracle_rows]
            assert engine_keys == oracle_keys, sql
        else:
            unlimited = run_plan(
                _strip_limit(plan), platform.catalog)[1]
            pool = freeze(unlimited)
            for key, count in freeze(engine.rows).items():
                assert pool[key] >= count, sql
    else:
        assert freeze(engine.rows) == freeze(oracle_rows), sql


def _strip_limit(plan):
    from repro.plan import logical as L

    if isinstance(plan, L.LogicalProject) and isinstance(
            plan.child, L.LogicalLimit):
        return L.LogicalProject(_strip_limit(plan.child), plan.exprs,
                                plan.names)
    if isinstance(plan, L.LogicalLimit):
        return plan.child
    return plan


def _order_key_positions(stmt, engine_result) -> list[int]:
    positions = []
    for order in stmt.order_by:
        # keys that survive into the output by name
        if order.expr is not None and hasattr(order.expr, "name"):
            name = order.expr.name.split(".")[-1]
            if name in engine_result.schema:
                positions.append(engine_result.schema.index_of(name))
    return positions


KINDS = ("select_pred", "select_nopred", "join", "limit_pred",
         "limit_nopred", "topk_plain", "topk_group_key",
         "topk_group_agg")


@pytest.mark.parametrize("kind", KINDS)
def test_engine_matches_oracle(platform, kind):
    generator = WorkloadGenerator(platform, seed=hash(kind) % 10_000)
    for query in generator.generate_of_kind(kind,
                                            N_QUERIES_PER_KIND):
        check_query(platform, query.sql)


HAND_WRITTEN = [
    # HAVING shapes
    "SELECT category, count(*) AS c FROM {fact} GROUP BY category "
    "HAVING count(*) > 10 ORDER BY category",
    "SELECT category, sum(score) AS s FROM {fact} GROUP BY category "
    "HAVING s >= 0 AND category <> 'cat00' ORDER BY s DESC LIMIT 3",
    "SELECT category, max(ts) AS m FROM {fact} GROUP BY category "
    "HAVING min(ts) >= 0 ORDER BY category LIMIT 4",
    # DISTINCT shapes
    "SELECT DISTINCT category FROM {fact} ORDER BY category",
    "SELECT DISTINCT category, ts % 2 AS parity FROM {fact} "
    "ORDER BY category, parity",
    # multi-key top-k
    "SELECT * FROM {fact} ORDER BY ts DESC, score ASC LIMIT 7",
    "SELECT * FROM {fact} WHERE ts >= 100 "
    "ORDER BY category ASC, ts DESC LIMIT 5",
    # expression ordering with strip projection
    "SELECT ts FROM {fact} ORDER BY abs(score - 500) LIMIT 4",
]


def test_hand_written_shapes_match_oracle(platform):
    fact = platform.fact_tables[-1]
    for template in HAND_WRITTEN:
        sql = template.format(fact=fact)
        check_query(platform, sql)


def test_dml_then_queries_match_oracle(platform):
    """DML through SQL followed by differential SELECT checks."""
    import random

    catalog = Platform(PlatformConfig(
        seed=17, rows_per_partition=25, n_small_tables=1,
        n_medium_tables=1, n_large_tables=1, n_xlarge_tables=0,
        n_dim_tables=1, dim_rows=32)).catalog
    table = "medium00"
    rows = catalog.tables[table].to_rows()
    shadow = list(rows)

    catalog.sql(f"DELETE FROM {table} WHERE score >= 900000")
    shadow = [r for r in shadow if not r[3] >= 900000]
    catalog.sql(f"UPDATE {table} SET score = score + 1 "
                f"WHERE category = 'cat01'")
    shadow = [(ts, c, v, s + 1 if c == 'cat01' else s, fk)
              for ts, c, v, s, fk in shadow]

    got = catalog.sql(
        f"SELECT ts, category, score FROM {table} "
        f"WHERE score < 1000000")
    expected = sorted((r[0], r[1], r[3]) for r in shadow)
    assert sorted(got.rows) == expected
