"""Tests for the catalog: DDL, DML rewrites, and the predicate cache
integrated end-to-end (§8.2)."""

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.errors import SchemaError
from repro.expr.ast import Compare, col, lit

SCHEMA = Schema.of(ts=DataType.INTEGER, score=DataType.INTEGER,
                   note=DataType.VARCHAR)


def make_catalog():
    catalog = Catalog(rows_per_partition=10)
    rows = [(i, (i * 37) % 1000, f"n{i}") for i in range(200)]
    catalog.create_table_from_rows("t", SCHEMA, rows,
                                   layout=Layout.sorted_by("ts"))
    return catalog


class TestDDL:
    def test_create_registers_metadata(self):
        catalog = make_catalog()
        assert len(catalog.scan_set("t")) == 20
        assert catalog.metadata.table_row_count("t") == 200

    def test_duplicate_table_rejected(self):
        catalog = make_catalog()
        with pytest.raises(SchemaError):
            catalog.create_table_from_rows("t", SCHEMA, [])

    def test_drop_table(self):
        catalog = make_catalog()
        catalog.drop_table("t")
        with pytest.raises(SchemaError):
            catalog.sql("SELECT * FROM t")
        assert len(catalog.storage) == 0

    def test_unknown_table(self):
        catalog = make_catalog()
        with pytest.raises(SchemaError):
            catalog.sql("SELECT * FROM missing")


class TestDML:
    def test_insert_creates_partitions(self):
        catalog = make_catalog()
        new_ids = catalog.insert("t", [(1000 + i, 5, "x")
                                       for i in range(15)])
        assert len(new_ids) == 2
        assert catalog.metadata.table_row_count("t") == 215
        result = catalog.sql("SELECT * FROM t WHERE ts >= 1000")
        assert result.num_rows == 15

    def test_delete_rewrites_partitions(self):
        catalog = make_catalog()
        deleted = catalog.delete_where(
            "t", Compare("<", col("ts"), lit(25)))
        assert deleted == 25
        assert catalog.metadata.table_row_count("t") == 175
        # Partition [20..29] was rewritten, not dropped entirely.
        result = catalog.sql("SELECT * FROM t WHERE ts < 40")
        assert result.num_rows == 15

    def test_delete_everything_in_partition_removes_it(self):
        catalog = make_catalog()
        before = len(catalog.scan_set("t"))
        catalog.delete_where("t", Compare("<", col("ts"), lit(10)))
        assert len(catalog.scan_set("t")) == before - 1

    def test_update_rewrites_values(self):
        catalog = make_catalog()
        updated = catalog.update_where(
            "t", Compare("<", col("ts"), lit(5)), "score",
            lambda old: old + 10_000)
        assert updated == 5
        result = catalog.sql("SELECT score FROM t WHERE ts < 5")
        assert all(score >= 10_000 for (score,) in result.rows)

    def test_update_refreshes_metadata(self):
        catalog = make_catalog()
        catalog.update_where("t", Compare("<", col("ts"), lit(10)),
                             "score", lambda old: 999_999)
        result = catalog.sql("SELECT * FROM t WHERE score = 999999")
        assert result.num_rows == 10
        # pruning still works against the rewritten partition metadata
        scan = result.profile.scans[0]
        assert scan.filter_result.after == 1


class TestPredicateCacheIntegration:
    def test_filter_cache_hit_restricts_scan(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t WHERE score >= 990"
        first = catalog.sql(sql)
        assert not first.profile.scans[0].cache_hit
        second = catalog.sql(sql)
        assert second.profile.scans[0].cache_hit
        assert sorted(second.rows) == sorted(first.rows)
        assert second.profile.partitions_loaded <= \
            first.profile.partitions_loaded

    def test_topk_cache_hit(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY score DESC LIMIT 5"
        first = catalog.sql(sql)
        second = catalog.sql(sql)
        assert second.profile.scans[0].cache_hit
        assert [r[1] for r in second.rows] == [r[1] for r in first.rows]
        assert second.profile.partitions_loaded <= 5

    def test_insert_keeps_cache_correct(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY score DESC LIMIT 1"
        catalog.sql(sql)
        catalog.insert("t", [(9999, 10**6, "big")])
        result = catalog.sql(sql)
        # new partition was appended to the cached scan list -> the new
        # maximum is found
        assert result.rows[0][1] == 10**6

    def test_delete_invalidates_topk_entry(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY score DESC LIMIT 1"
        first = catalog.sql(sql)
        top_ts = first.rows[0][0]
        catalog.delete_where("t", Compare("=", col("ts"), lit(top_ts)))
        result = catalog.sql(sql)
        assert not result.profile.scans[0].cache_hit
        oracle_best = max(
            (r for r in catalog.tables["t"].to_rows()),
            key=lambda r: r[1])
        assert result.rows[0][1] == oracle_best[1]

    def test_update_ordering_column_invalidates(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY score DESC LIMIT 1"
        catalog.sql(sql)
        catalog.update_where("t", Compare("=", col("ts"), lit(100)),
                             "score", lambda old: 10**7)
        result = catalog.sql(sql)
        assert result.rows[0][1] == 10**7

    def test_early_terminated_scan_not_cached(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        # LIMIT terminates the scan early; caching its partial view of
        # "partitions with matches" would be wrong.
        sql = "SELECT * FROM t WHERE score >= 0 LIMIT 1"
        catalog.sql(sql)
        assert catalog.predicate_cache.lookup_filter(
            "t", Compare(">=", col("score"), lit(0))) is None


class TestQueryResult:
    def test_column_accessor(self):
        catalog = make_catalog()
        result = catalog.sql("SELECT ts, score FROM t WHERE ts < 3")
        assert result.column("ts") == [0, 1, 2]
        assert result.num_rows == 3
        assert result.sql.startswith("SELECT")
