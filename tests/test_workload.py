"""Tests for distributions, SQL classification, the platform/workload
generator, and mini TPC-H."""

import random
from collections import Counter

import pytest

from repro.bench.stats import fraction_at_most
from repro.workload import (
    Platform,
    PlatformConfig,
    QueryClass,
    QueryMix,
    WorkloadGenerator,
    classify_sql,
    sample_limit_k,
    sample_selectivity,
    zipf_template_index,
)
from repro.workload.tpch import (
    TpchConfig,
    build_tpch,
    measure_query_pruning,
    tpch_queries,
)


class TestDistributions:
    def test_limit_k_cdf_matches_figure6(self):
        rng = random.Random(0)
        samples = [sample_limit_k(rng) for _ in range(20_000)]
        assert fraction_at_most(samples, 10_000) == \
            pytest.approx(0.97, abs=0.02)
        assert fraction_at_most(samples, 2_000_000) >= 0.995
        # most queries have k = 0 or 1
        small = sum(1 for s in samples if s <= 1) / len(samples)
        assert small > 0.35

    def test_selectivity_mostly_high(self):
        rng = random.Random(1)
        samples = [sample_selectivity(rng) for _ in range(10_000)]
        assert all(0 < s <= 1 for s in samples)
        assert fraction_at_most(samples, 0.01) == \
            pytest.approx(0.5, abs=0.05)

    def test_zipf_skewed(self):
        rng = random.Random(2)
        draws = Counter(zipf_template_index(rng, 100)
                        for _ in range(5000))
        assert draws[0] > draws.get(50, 0)
        # long tail exists
        assert len(draws) > 30


class TestClassify:
    @pytest.mark.parametrize("sql,expected", [
        ("SELECT * FROM t WHERE x > 1", QueryClass.PLAIN),
        ("SELECT * FROM t LIMIT 5", QueryClass.LIMIT_NO_PREDICATE),
        ("SELECT * FROM t WHERE x > 1 LIMIT 5",
         QueryClass.LIMIT_WITH_PREDICATE),
        ("SELECT * FROM t ORDER BY x DESC LIMIT 5",
         QueryClass.TOPK_ORDER_LIMIT),
        ("SELECT x, count(*) AS c FROM t GROUP BY x "
         "ORDER BY x DESC LIMIT 5", QueryClass.TOPK_GROUP_ORDER_KEY),
        ("SELECT y, sum(x) AS s FROM t GROUP BY y "
         "ORDER BY sum(x) DESC LIMIT 5",
         QueryClass.TOPK_GROUP_ORDER_AGG),
        ("SELECT y, sum(x) AS s FROM t GROUP BY y "
         "ORDER BY s DESC LIMIT 5", QueryClass.TOPK_GROUP_ORDER_AGG),
    ])
    def test_classification(self, sql, expected):
        assert classify_sql(sql) == expected

    def test_flags(self):
        assert QueryClass.LIMIT_NO_PREDICATE.is_limit
        assert QueryClass.TOPK_ORDER_LIMIT.is_topk
        assert not QueryClass.PLAIN.is_limit


@pytest.fixture(scope="module")
def platform():
    return Platform(PlatformConfig(
        seed=0, n_small_tables=4, n_medium_tables=2, n_large_tables=2,
        n_dim_tables=2, rows_per_partition=100))


class TestPlatform:
    def test_tables_created(self, platform):
        assert len(platform.fact_tables) == 8
        assert len(platform.dim_tables) == 2
        for name in platform.fact_tables:
            spec = platform.specs[name]
            table = platform.catalog.tables[name]
            assert table.num_partitions == spec.n_partitions

    def test_layout_diversity(self, platform):
        layouts = {platform.specs[n].layout
                   for n in platform.fact_tables}
        assert {"sorted", "clustered", "random"} <= layouts

    def test_deterministic(self):
        a = Platform(PlatformConfig(seed=7, n_small_tables=1,
                                    n_medium_tables=1,
                                    n_large_tables=0, n_dim_tables=1))
        b = Platform(PlatformConfig(seed=7, n_small_tables=1,
                                    n_medium_tables=1,
                                    n_large_tables=0, n_dim_tables=1))
        for name in a.catalog.tables:
            assert a.catalog.tables[name].to_rows() == \
                b.catalog.tables[name].to_rows()


class TestWorkloadGenerator:
    def test_mix_roughly_respected(self, platform):
        generator = WorkloadGenerator(platform, seed=3)
        queries = generator.generate(3000)
        kinds = Counter(q.kind for q in queries)
        assert kinds["select_pred"] / 3000 == pytest.approx(0.60,
                                                            abs=0.05)
        assert kinds["join"] / 3000 == pytest.approx(0.20, abs=0.04)
        limit_share = (kinds["limit_pred"]
                       + kinds["limit_nopred"]) / 3000
        assert limit_share == pytest.approx(0.026, abs=0.012)

    def test_all_queries_executable(self, platform):
        generator = WorkloadGenerator(platform, seed=4)
        for query in generator.generate(120):
            result = platform.catalog.sql(query.sql)
            assert result.profile.total_partitions >= 0

    def test_classification_agrees_with_kind(self, platform):
        generator = WorkloadGenerator(platform, seed=5)
        for query in generator.generate(300):
            cls = classify_sql(query.sql)
            if query.kind == "limit_pred":
                assert cls == QueryClass.LIMIT_WITH_PREDICATE
            elif query.kind == "limit_nopred":
                assert cls == QueryClass.LIMIT_NO_PREDICATE
            elif query.kind == "topk_plain":
                assert cls == QueryClass.TOPK_ORDER_LIMIT
            elif query.kind == "topk_group_key":
                assert cls == QueryClass.TOPK_GROUP_ORDER_KEY
            elif query.kind == "topk_group_agg":
                assert cls == QueryClass.TOPK_GROUP_ORDER_AGG

    def test_repetition_stream_mostly_singletons(self, platform):
        generator = WorkloadGenerator(platform, seed=6)
        stream = generator.topk_stream_with_repetition(400)
        counts = Counter(q.sql for q in stream)
        singletons = sum(1 for c in counts.values() if c == 1)
        assert singletons / len(counts) > 0.4


class TestTpch:
    @pytest.fixture(scope="class")
    def tpch(self):
        return build_tpch(TpchConfig(orders_count=2000))

    def test_tables_built(self, tpch):
        for table in ("lineitem", "orders", "customer", "part",
                      "supplier", "partsupp", "nation", "region"):
            assert table in tpch.tables
        assert tpch.tables["lineitem"].row_count > \
            tpch.tables["orders"].row_count

    def test_22_queries(self):
        queries = tpch_queries()
        assert [q.number for q in queries] == list(range(1, 23))

    def test_all_queries_measurable(self, tpch):
        for query in tpch_queries():
            total, pruned = measure_query_pruning(tpch, query)
            assert total > 0
            assert 0 <= pruned <= total

    def test_clustering_improves_pruning(self):
        clustered = build_tpch(TpchConfig(orders_count=1500,
                                          cluster=True))
        unclustered = build_tpch(TpchConfig(orders_count=1500,
                                            cluster=False))
        q6 = next(q for q in tpch_queries() if q.number == 6)
        _, pruned_clustered = measure_query_pruning(clustered, q6)
        _, pruned_unclustered = measure_query_pruning(unclustered, q6)
        assert pruned_clustered > pruned_unclustered

    def test_date_clustered_queries_prune_best(self, tpch):
        ratios = {}
        for query in tpch_queries():
            total, pruned = measure_query_pruning(tpch, query)
            ratios[query.number] = pruned / total
        # Q6 (tight shipdate range) beats Q1 (97% of dates kept)
        assert ratios[6] > ratios[1]
        # Q18 has no prunable predicates at all
        assert ratios[18] == 0.0
