"""Tests for the virtual warehouse simulation (§2, §4.4)."""

import pytest

from repro.engine.warehouse import Warehouse
from repro.expr.ast import Compare, col, lit
from repro.pruning.base import ScanSet
from repro.storage.builder import build_table
from repro.storage.storage_layer import StorageLayer
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)


def setup(n_rows=1000, rows_per_partition=50):
    table = build_table("t", SCHEMA,
                        [(i, f"s{i}") for i in range(n_rows)],
                        rows_per_partition=rows_per_partition)
    storage = StorageLayer()
    storage.put_all(table.partitions)
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)
    return storage, scan_set


class TestStriping:
    def test_round_robin(self):
        storage, scan_set = setup()
        warehouse = Warehouse(storage, n_workers=4)
        stripes = warehouse.stripe(scan_set)
        assert len(stripes) == 4
        assert sum(len(s) for s in stripes) == len(scan_set)
        assert len(stripes[0]) == 5

    def test_more_workers_than_partitions(self):
        storage, scan_set = setup(n_rows=100, rows_per_partition=50)
        warehouse = Warehouse(storage, n_workers=8)
        stripes = warehouse.stripe(scan_set)
        non_empty = [s for s in stripes if len(s)]
        assert len(non_empty) == 2

    def test_at_least_one_worker(self):
        storage, _ = setup()
        with pytest.raises(ValueError):
            Warehouse(storage, n_workers=0)


class TestScanRuntime:
    def test_parallelism_reduces_runtime(self):
        storage, scan_set = setup()
        t1 = Warehouse(storage, n_workers=1).scan_runtime_ms(scan_set)
        t8 = Warehouse(storage, n_workers=8).scan_runtime_ms(scan_set)
        assert t8 < t1
        assert t8 >= t1 / 8 * 0.9  # cannot beat perfect speedup

    def test_empty_scan_set(self):
        storage, _ = setup()
        warehouse = Warehouse(storage, n_workers=4)
        assert warehouse.scan_runtime_ms(ScanSet()) == 0.0


class TestLimitScan:
    """§4.4: without LIMIT pruning an n-worker warehouse reads >= n
    partitions even when one would suffice."""

    def test_reads_at_least_n_partitions(self):
        storage, scan_set = setup()
        for n_workers in (1, 4, 8):
            report = Warehouse(storage, n_workers).run_limit_scan(
                scan_set, SCHEMA, k=5)
            assert report.partitions_loaded >= min(n_workers,
                                                   len(scan_set))
            assert report.rows_produced == 5

    def test_single_worker_reads_one_partition(self):
        storage, scan_set = setup()
        report = Warehouse(storage, 1).run_limit_scan(
            scan_set, SCHEMA, k=5)
        assert report.partitions_loaded == 1
        assert report.rounds == 1

    def test_predicate_requires_more_rounds(self):
        storage, scan_set = setup()
        predicate = Compare(">=", col("x"), lit(900))
        report = Warehouse(storage, 2).run_limit_scan(
            scan_set, SCHEMA, k=5, predicate=predicate)
        # matching rows live in the last partitions; round-robin means
        # many rounds before reaching them
        assert report.rounds > 1
        assert report.rows_produced == 5

    def test_k_larger_than_table(self):
        storage, scan_set = setup(n_rows=100, rows_per_partition=50)
        report = Warehouse(storage, 4).run_limit_scan(
            scan_set, SCHEMA, k=10_000)
        assert report.partitions_loaded == len(scan_set)
        assert report.rows_produced == 100

    def test_per_worker_loads_sum(self):
        storage, scan_set = setup()
        report = Warehouse(storage, 4).run_limit_scan(
            scan_set, SCHEMA, k=5)
        assert sum(report.per_worker_loads) == report.partitions_loaded
