"""Tests for flow records and workload-level aggregation (§7)."""

import pytest

from repro.pruning.base import PruneCategory, PruningResult, ScanSet
from repro.pruning.flow import FlowRecord, PruningFlow


def result(technique, before, pruned):
    return PruningResult(
        technique=technique, before=before, kept=ScanSet(),
        pruned_ids=[-1] * pruned)


class TestFlowRecord:
    def test_from_results(self):
        record = FlowRecord.from_results(
            "q1", 100,
            [result(PruneCategory.FILTER, 100, 60),
             result(PruneCategory.JOIN, 40, 20)])
        assert record.pruned_by == {"filter": 60, "join": 20}
        assert record.final_partitions == 20
        assert record.overall_ratio == pytest.approx(0.8)

    def test_applied_and_combination(self):
        record = FlowRecord.from_results(
            "q1", 100,
            [result(PruneCategory.FILTER, 100, 60),
             result(PruneCategory.TOPK, 40, 0)])
        assert record.applied("filter")
        assert not record.applied("topk")
        assert record.combination() == ("filter",)

    def test_combination_ordering_follows_flow(self):
        record = FlowRecord.from_results(
            "q1", 100,
            [result(PruneCategory.TOPK, 10, 5),
             result(PruneCategory.FILTER, 100, 60)])
        assert record.combination() == ("filter", "topk")

    def test_ratio_relative_to_query_vs_stage(self):
        record = FlowRecord.from_results(
            "q1", 100, [result(PruneCategory.JOIN, 40, 20)])
        assert record.ratio("join") == pytest.approx(0.2)
        assert record.ratio("join", relative_to_query=False) == \
            pytest.approx(0.5)

    def test_zero_partitions(self):
        record = FlowRecord.from_results("q1", 0, [])
        assert record.overall_ratio == 0.0
        assert record.ratio("filter") == 0.0


class TestPruningFlow:
    def build_flow(self):
        flow = PruningFlow()
        flow.add(FlowRecord.from_results(
            "q1", 100, [result(PruneCategory.FILTER, 100, 90)]))
        flow.add(FlowRecord.from_results(
            "q2", 50, [result(PruneCategory.FILTER, 50, 0)],
            eligible={PruneCategory.FILTER: True}))
        flow.add(FlowRecord.from_results(
            "q3", 10,
            [result(PruneCategory.FILTER, 10, 5),
             result(PruneCategory.JOIN, 5, 3)]))
        return flow

    def test_technique_ratios_eligible_only(self):
        flow = self.build_flow()
        ratios = flow.technique_ratios(PruneCategory.FILTER)
        assert len(ratios) == 3
        assert ratios[0] == pytest.approx(0.9)
        join_ratios = flow.technique_ratios(PruneCategory.JOIN)
        assert len(join_ratios) == 1

    def test_combination_shares(self):
        shares = self.build_flow().combination_shares()
        assert shares[("filter",)] == pytest.approx(1 / 3)
        assert shares[("filter", "join")] == pytest.approx(1 / 3)
        assert shares[()] == pytest.approx(1 / 3)

    def test_technique_shares(self):
        shares = self.build_flow().technique_shares()
        assert shares["filter"] == pytest.approx(2 / 3)
        assert shares["join"] == pytest.approx(1 / 3)

    def test_platform_pruning_ratio(self):
        flow = self.build_flow()
        # pruned: 90 + 0 + 8 = 98 of 160 addressed
        assert flow.platform_pruning_ratio() == pytest.approx(98 / 160)

    def test_empty_flow(self):
        flow = PruningFlow()
        assert flow.platform_pruning_ratio() == 0.0
        assert flow.combination_shares() == {}
        assert flow.technique_shares() == {}
