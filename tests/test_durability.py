"""Durability: WAL, checkpoints, and the crash-at-every-point sweep.

The core gate of the durability subsystem: after a simulated crash at
*any* enumerated point on the commit path, recovery lands exactly on
the pre-commit or post-commit state — never a third state — verified
by schema/row/checksum fingerprints plus differential query results.
"""

from __future__ import annotations

import shutil
import struct

import pytest

from conftest import make_events_rows
from repro import (
    Catalog,
    DataType,
    Layout,
    QueryService,
    Schema,
)
from repro.durability import DurabilityManager, WriteAheadLog
from repro.durability.wal import iter_frames
from repro.errors import (
    DurabilityError,
    StorageError,
    WalCorruptionError,
)
from repro.faults import CRASH_POINTS, CrashInjector, SimulatedCrash

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)

DIMS_SCHEMA = Schema.of(k=DataType.INTEGER, v=DataType.VARCHAR)

#: crash points that fire on the DML commit path and their expected
#: recovery outcome ("pre" / "post" the crashed mutation)
DML_POINTS = {
    "pre-append": "pre",
    "mid-append": "pre",
    "post-append-pre-apply": "post",
}

CHECKPOINT_POINTS = ("mid-checkpoint", "post-rename")

DIFFERENTIAL_QUERIES = (
    "SELECT * FROM events ORDER BY ts, score",
    "SELECT category, value FROM events WHERE ts >= 20 "
    "ORDER BY ts, score",
    "SELECT count(*) AS c FROM events WHERE score < 500000",
    "SELECT * FROM events WHERE score >= 250000 "
    "ORDER BY ts, score LIMIT 7",
)


def mutation_sequence(seed: int):
    """A deterministic workload hitting every WAL record type.

    Returns ``[(label, callable), ...]``; the callables apply the
    mutation to any catalog, so the same sequence can drive both the
    durable catalog and the always-alive oracle.
    """
    rows = make_events_rows(60, seed=seed, null_every=7)
    extra = make_events_rows(30, seed=seed + 1)
    more = make_events_rows(20, seed=seed + 2)
    return [
        ("create", lambda c: c.create_table_from_rows(
            "events", SCHEMA, rows, layout=Layout.sorted_by("ts"))),
        ("insert", lambda c: c.insert("events", extra)),
        ("delete", lambda c: c.sql(
            "DELETE FROM events WHERE score >= 700000")),
        ("update", lambda c: c.sql(
            "UPDATE events SET value = 1.5 WHERE ts < 20")),
        ("create2", lambda c: c.create_table_from_rows(
            "dims", DIMS_SCHEMA, [(i, f"v{i}") for i in range(8)])),
        ("recluster", lambda c: c.recluster("events", "score")),
        ("drop", lambda c: c.drop_table("dims")),
        ("insert2", lambda c: c.insert("events", more)),
        ("delete2", lambda c: c.sql(
            "DELETE FROM events WHERE category = 'alpha'")),
    ]


def fingerprint(catalog: Catalog):
    """Content identity of a catalog: schemas, rows, and partition
    checksums per table (partition *ids* are deliberately excluded so
    an always-alive oracle catalog is comparable)."""
    out = {}
    for name, table in sorted(catalog.tables.items()):
        out[name] = (
            tuple((f.name, f.dtype.value) for f in table.schema),
            sorted(table.to_rows(), key=repr),
            sorted(p.compute_checksum() for p in table.partitions),
        )
    return out


def assert_queries_agree(recovered: Catalog, expected: Catalog):
    for sql in DIFFERENTIAL_QUERIES:
        assert recovered.sql(sql).rows == expected.sql(sql).rows, sql


def wal_frame_spans(data: bytes) -> list[tuple[int, int]]:
    """(start, end) byte spans of every frame, without CRC checks —
    corruption tests need the spans of frames they are about to damage."""
    header = struct.Struct("<IQI")
    spans = []
    offset = 0
    while offset + header.size <= len(data):
        length, _seq, _crc = header.unpack_from(data, offset)
        end = offset + header.size + length
        if end > len(data):
            break
        spans.append((offset, end))
        offset = end
    return spans


class TestCrashSweep:
    """The core gate: crash at every point, recover, and land exactly
    on the pre- or post-commit oracle."""

    #: (seed, index of the mutation to crash) — two seeds, and crash
    #: sites covering delete, create, recluster, drop, and insert
    CASES = [(11, 2), (11, 4), (11, 5), (23, 3), (23, 6), (23, 7)]

    @pytest.mark.parametrize("point", sorted(DML_POINTS))
    @pytest.mark.parametrize("seed,crash_idx", CASES)
    def test_dml_crash_recovers_to_oracle(self, tmp_path, point,
                                          seed, crash_idx):
        injector = CrashInjector()
        durable = Catalog(rows_per_partition=25)
        durable.enable_durability(tmp_path / "d",
                                  crash_injector=injector)
        oracle = Catalog(rows_per_partition=25)
        pre = post = None
        for index, (label, mutate) in enumerate(
                mutation_sequence(seed)):
            if index == crash_idx:
                pre = fingerprint(durable)
                injector.arm(point, at=1)
                with pytest.raises(SimulatedCrash):
                    mutate(durable)
                mutate(oracle)  # the always-alive post-commit oracle
                post = fingerprint(oracle)
                break
            mutate(durable)
            mutate(oracle)
        assert injector.fired == [point]
        assert pre != post  # the crashed mutation was not a no-op

        recovered = Catalog.recover(tmp_path / "d")
        got = fingerprint(recovered)
        expected = post if DML_POINTS[point] == "post" else pre
        assert got == expected
        assert got in (pre, post)  # no third state, ever
        assert_queries_agree(
            recovered,
            oracle if DML_POINTS[point] == "post" else durable)

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    @pytest.mark.parametrize("seed", (11, 23))
    def test_checkpoint_crash_loses_nothing(self, tmp_path, point,
                                            seed):
        injector = CrashInjector()
        durable = Catalog(rows_per_partition=25)
        durable.enable_durability(tmp_path / "d",
                                  crash_injector=injector)
        for _label, mutate in mutation_sequence(seed):
            mutate(durable)
        final = fingerprint(durable)
        injector.arm(point, at=1)
        with pytest.raises(SimulatedCrash):
            durable.checkpoint()
        assert injector.fired == [point]

        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == final
        # The half-finished checkpoint does not poison the next one.
        recovered.checkpoint()
        assert fingerprint(Catalog.recover(tmp_path / "d")) == final

    @pytest.mark.parametrize("seed", (11, 23))
    def test_recovery_is_deterministic(self, tmp_path, seed):
        """Two recoveries from copies of the same directory rebuild
        bit-identical catalogs — same partition ids, same checksums."""
        injector = CrashInjector()
        durable = Catalog(rows_per_partition=25)
        durable.enable_durability(tmp_path / "d",
                                  crash_injector=injector)
        sequence = mutation_sequence(seed)
        for _label, mutate in sequence[:-1]:
            mutate(durable)
        injector.arm("mid-append", at=1)
        with pytest.raises(SimulatedCrash):
            sequence[-1][1](durable)
        durable.durability.close()
        shutil.copytree(tmp_path / "d", tmp_path / "d2")

        first = Catalog.recover(tmp_path / "d")
        second = Catalog.recover(tmp_path / "d2")
        assert fingerprint(first) == fingerprint(second)
        for name in first.tables:
            assert first.tables[name].partition_ids == \
                second.tables[name].partition_ids

    def test_crash_points_cover_the_enumerated_set(self):
        assert set(DML_POINTS) | set(CHECKPOINT_POINTS) == \
            set(CRASH_POINTS)


class TestTornAndCorruptLogs:
    def _durable_catalog(self, tmp_path, seed=11):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        history = []
        for _label, mutate in mutation_sequence(seed):
            history.append(fingerprint(catalog))
            mutate(catalog)
        catalog.durability.close()
        return catalog, history, tmp_path / "d" / "wal.log"

    def test_garbage_tail_is_tolerated(self, tmp_path):
        catalog, _history, wal_path = self._durable_catalog(tmp_path)
        final = fingerprint(catalog)
        with open(wal_path, "ab") as handle:
            handle.write(b"\x07garbage")  # shorter than a header
        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == final
        assert recovered.durability.wal.torn_tail_repaired

    def test_truncated_final_record_drops_only_it(self, tmp_path):
        catalog, history, wal_path = self._durable_catalog(tmp_path)
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])  # tear the last frame
        recovered = Catalog.recover(tmp_path / "d")
        # State = everything up to (not including) the last mutation.
        assert fingerprint(recovered) == history[-1]

    def test_crc_corrupt_final_record_drops_only_it(self, tmp_path):
        catalog, history, wal_path = self._durable_catalog(tmp_path)
        data = bytearray(wal_path.read_bytes())
        start, end = wal_frame_spans(bytes(data))[-1]
        data[end - 1] ^= 0xFF  # flip a payload byte of the last frame
        wal_path.write_bytes(bytes(data))
        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == history[-1]
        assert recovered.durability.wal.torn_tail_repaired

    def test_corrupt_interior_record_fails_closed(self, tmp_path):
        _catalog, _history, wal_path = self._durable_catalog(tmp_path)
        data = bytearray(wal_path.read_bytes())
        spans = wal_frame_spans(bytes(data))
        assert len(spans) > 2
        _start, end = spans[0]
        data[end - 1] ^= 0xFF  # damage a frame with history after it
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            Catalog.recover(tmp_path / "d")

    def test_missing_interior_record_fails_closed(self, tmp_path):
        _catalog, _history, wal_path = self._durable_catalog(tmp_path)
        data = wal_path.read_bytes()
        spans = wal_frame_spans(data)
        assert len(spans) > 2
        start, end = spans[1]
        wal_path.write_bytes(data[:start] + data[end:])  # splice out
        with pytest.raises(WalCorruptionError):
            Catalog.recover(tmp_path / "d")

    def test_wal_corruption_error_is_typed(self):
        assert issubclass(WalCorruptionError, DurabilityError)
        assert issubclass(DurabilityError, StorageError)


class TestWriteAheadLog:
    def test_append_records_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        records = [{"op": "insert", "n": i} for i in range(5)]
        for record in records:
            wal.append(record)
        assert [r for _s, r in wal.records()] == records
        assert [s for s, _r in wal.records()] == [1, 2, 3, 4, 5]
        wal.close()

    def test_reopen_continues_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.append({"op": "a"})
        wal.close()
        reopened = WriteAheadLog(tmp_path / "w.log")
        assert reopened.last_seqno == 1
        seqno, _bytes = reopened.append({"op": "b"})
        assert seqno == 2
        reopened.close()

    def test_truncate_through_keeps_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        for i in range(6):
            wal.append({"n": i})
        wal.truncate_through(4)
        assert [s for s, _r in wal.records()] == [5, 6]
        assert wal.append({"n": 6})[0] == 7
        wal.close()

    def test_seq_floor_survives_full_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        for i in range(3):
            wal.append({"n": i})
        wal.truncate_through(3)
        assert wal.records() == []
        assert wal.last_seqno == 3  # remembered in-process
        wal.close()
        # A fresh open of the empty log needs the floor re-imposed
        # (the manager does this from the checkpoint's seqno).
        reopened = WriteAheadLog(tmp_path / "w.log")
        reopened.ensure_seq_floor(3)
        assert reopened.append({"n": 99})[0] == 4
        reopened.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.append({"op": "keep"})
        wal.close()
        with open(tmp_path / "w.log", "ab") as handle:
            handle.write(b"\x40\x00\x00\x00partial")
        reopened = WriteAheadLog(tmp_path / "w.log")
        assert reopened.torn_tail_repaired
        assert [r for _s, r in reopened.records()] == [{"op": "keep"}]
        # the torn bytes are physically gone
        spans = wal_frame_spans((tmp_path / "w.log").read_bytes())
        assert (tmp_path / "w.log").stat().st_size == spans[-1][1]
        reopened.close()

    def test_iter_frames_rejects_interior_gap(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        for i in range(3):
            wal.append({"n": i})
        wal.close()
        data = wal_path = (tmp_path / "w.log").read_bytes()
        spans = wal_frame_spans(data)
        spliced = data[:spans[1][0]] + data[spans[1][1]:]
        with pytest.raises(WalCorruptionError):
            list(iter_frames(spliced))


class TestCheckpointsAndRecovery:
    def test_checkpoint_bounds_replay(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        sequence = mutation_sequence(11)
        for _label, mutate in sequence[:4]:
            mutate(catalog)
        catalog.checkpoint()
        assert catalog.durability.wal.size() == 0  # truncated behind
        for _label, mutate in sequence[4:]:
            mutate(catalog)

        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == fingerprint(catalog)
        # Only the post-checkpoint tail was replayed — no double-apply.
        stats = recovered.durability.stats()
        assert stats["recovered"]["replayed"] == len(sequence) - 4

    def test_checkpoint_keeps_only_newest(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        for _label, mutate in mutation_sequence(11):
            mutate(catalog)
            catalog.checkpoint()
        checkpoints = catalog.durability.checkpoints.list()
        assert len(checkpoints) == 1

    def test_recover_into_nonempty_catalog_rejected(self, tmp_path):
        seeded = Catalog(rows_per_partition=25)
        seeded.enable_durability(tmp_path / "d")
        mutation_sequence(11)[0][1](seeded)

        occupied = Catalog()
        occupied.create_table_from_rows(
            "other", DIMS_SCHEMA, [(1, "x")])
        with pytest.raises(DurabilityError):
            occupied.enable_durability(tmp_path / "d")

    def test_enable_durability_is_idempotent(self, tmp_path):
        catalog = Catalog()
        manager = catalog.enable_durability(tmp_path / "d")
        assert catalog.enable_durability(tmp_path / "d") is manager

    def test_checkpoint_requires_durability(self):
        with pytest.raises(DurabilityError):
            Catalog().checkpoint()

    def test_tables_created_before_enable_survive(self, tmp_path):
        """The baseline checkpoint captures pre-durability tables."""
        catalog = Catalog(rows_per_partition=25)
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(40, seed=5))
        catalog.enable_durability(tmp_path / "d")
        catalog.sql("DELETE FROM events WHERE ts >= 30")
        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == fingerprint(catalog)

    def test_recovered_catalog_keeps_logging(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        mutation_sequence(11)[0][1](catalog)
        catalog.durability.close()

        recovered = Catalog.recover(tmp_path / "d")
        recovered.sql("DELETE FROM events WHERE ts < 10")
        final = fingerprint(recovered)
        assert fingerprint(Catalog.recover(tmp_path / "d")) == final


class TestObservability:
    def test_explain_analyze_reports_wal_traffic(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        mutation_sequence(11)[0][1](catalog)
        report = catalog.explain_analyze(
            "DELETE FROM events WHERE ts < 5")
        assert "-- wal: 1 appends / " in report
        assert "wal:append" in report  # the trace event line

    def test_explain_analyze_silent_without_durability(self):
        catalog = Catalog(rows_per_partition=25)
        mutation_sequence(11)[0][1](catalog)
        report = catalog.explain_analyze(
            "DELETE FROM events WHERE ts < 5")
        assert "-- wal:" not in report

    def test_service_durability_surface(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        service = QueryService(catalog,
                               durability_dir=tmp_path / "d")
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(60, seed=3))
        service.sql("DELETE FROM events WHERE ts >= 50")
        service.insert("events", make_events_rows(10, seed=4))

        snap = service.describe()
        assert snap["durability"]["wal_appends"] >= 3
        assert snap["durability"]["last_seqno"] >= 3
        metrics = service.metrics.snapshot()
        assert metrics["wal_appends"] >= 1
        assert metrics["wal_bytes"] > 0
        records = service.telemetry.records()
        assert any(r.wal_appends for r in records)
        assert any(r.to_dict()["wal_bytes"] for r in records)

        catalog.durability.close()
        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == fingerprint(catalog)

    def test_service_background_checkpoint_fires(self, tmp_path):
        import time

        catalog = Catalog(rows_per_partition=10)
        service = QueryService(
            catalog, durability_dir=tmp_path / "d",
            durability_checkpoint_bytes=256)
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(30, seed=3))
        for round_ in range(4):
            service.insert("events",
                           make_events_rows(10, seed=round_ + 10))
            service.sql(f"DELETE FROM events WHERE score >= "
                        f"{900000 - round_}")
        deadline = time.time() + 10
        while time.time() < deadline:
            if service.metrics.counter("checkpoints").value >= 1:
                break
            time.sleep(0.02)
        assert service.metrics.counter("checkpoints").value >= 1
        assert service.describe()["checkpoints"] >= 1
        # Durable state stays recoverable mid-stream.
        recovered = Catalog.recover(tmp_path / "d2")  # fresh dir OK
        assert recovered.tables == {}


class TestWalStatsAccounting:
    def test_manager_stats_shape(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        mutation_sequence(11)[0][1](catalog)
        stats = catalog.durability.stats()
        assert stats["wal_appends"] == 1
        assert stats["wal_bytes"] > 0
        assert stats["last_seqno"] == 1
        assert stats["checkpoints_written"] == 1  # the baseline

    def test_noop_dml_logs_nothing(self, tmp_path):
        catalog = Catalog(rows_per_partition=25)
        catalog.enable_durability(tmp_path / "d")
        mutation_sequence(11)[0][1](catalog)
        before = catalog.durability.wal.appends
        catalog.sql("DELETE FROM events WHERE ts < 0")  # matches none
        catalog.insert("events", [])
        assert catalog.durability.wal.appends == before
