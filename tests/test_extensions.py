"""Tests for the extension features: string-stats truncation, scan-set
serialization, cuckoo/xor filters, deferred runtime filter pruning,
Iceberg-backed catalog tables, pruning-informed join-side selection,
and EXPLAIN."""

import random

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.errors import SchemaError, StorageError
from repro.expr.ast import And, Compare, EndsWith, col, lit
from repro.expr.pruning import TriState, prune_partition
from repro.formats import IcebergTable, ParquetFile
from repro.plan.compiler import CompilerOptions
from repro.pruning.base import ScanSet
from repro.pruning.filters import CuckooFilter, XorFilter
from repro.pruning.join_pruning import JoinPruner, build_summary
from repro.pruning.pruning_tree import PruningTree, TreeConfig
from repro.storage.builder import build_table
from repro.storage.micropartition import MicroPartition
from repro.storage.zonemap import truncate_string_stats
from repro.types import Schema as _Schema


# ----------------------------------------------------------------------
# String statistics truncation
# ----------------------------------------------------------------------
class TestStringStatsTruncation:
    SCHEMA = Schema.of(s=DataType.VARCHAR)

    def make_stats(self, values):
        part = MicroPartition.from_rows(self.SCHEMA,
                                        [(v,) for v in values])
        return part.zone_map.stats("s"), part

    def test_short_strings_unchanged(self):
        stats, _ = self.make_stats(["abc", "xyz"])
        assert truncate_string_stats(stats, 8) is stats

    def test_min_simply_cut(self):
        stats, _ = self.make_stats(["aaaaaaaaaa", "zz"])
        truncated = truncate_string_stats(stats, 4)
        assert truncated.min_value == "aaaa"

    def test_max_rounded_up(self):
        stats, _ = self.make_stats(["a", "zebra_very_long"])
        truncated = truncate_string_stats(stats, 4)
        assert truncated.max_value >= "zebra_very_long"
        assert len(truncated.max_value) <= 5

    def test_truncation_stays_sound(self):
        """Pruning with truncated stats never produces false negatives."""
        rng = random.Random(0)
        alphabet = "abz\U0010ffff"
        for _ in range(200):
            values = ["".join(rng.choice(alphabet)
                              for _ in range(rng.randint(0, 12)))
                      for _ in range(rng.randint(1, 8))]
            stats, part = self.make_stats(values)
            truncated = truncate_string_stats(stats, 3)
            # every value must stay inside the truncated bounds
            for value in values:
                assert truncated.min_value <= value \
                    <= truncated.max_value

    def test_zone_map_with_truncated_strings_prunes_soundly(self):
        part = MicroPartition.from_rows(
            self.SCHEMA, [("prefix_long_string_value_1",),
                          ("prefix_long_string_value_2",)])
        truncated = part.zone_map.with_truncated_strings(6)
        predicate = Compare("=", col("s"),
                            lit("prefix_long_string_value_1"))
        verdict = prune_partition(predicate, truncated, self.SCHEMA)
        assert verdict != TriState.NEVER


# ----------------------------------------------------------------------
# Scan-set serialization
# ----------------------------------------------------------------------
class TestScanSetSerialization:
    def make_scan_set(self, n_rows=200):
        schema = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)
        table = build_table("t", schema,
                            [(i, f"s{i}") for i in range(n_rows)],
                            rows_per_partition=20)
        zone_maps = {p.partition_id: p.zone_map
                     for p in table.partitions}
        return ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions), zone_maps

    def test_roundtrip(self):
        scan_set, zone_maps = self.make_scan_set()
        data = scan_set.serialize()
        restored = ScanSet.deserialize(data, zone_maps.__getitem__)
        assert restored.partition_ids == scan_set.partition_ids

    def test_empty(self):
        data = ScanSet().serialize()
        assert ScanSet.deserialize(data, lambda pid: None) \
            .partition_ids == []

    def test_pruning_shrinks_payload(self):
        scan_set, zone_maps = self.make_scan_set()
        pruned = scan_set.restrict(scan_set.partition_ids[:2])
        assert pruned.serialized_size() < scan_set.serialized_size()

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            ScanSet.deserialize(b"XXXX\x00\x00\x00\x00",
                                lambda pid: None)

    def test_truncated_payload_rejected(self):
        scan_set, zone_maps = self.make_scan_set()
        data = scan_set.serialize()
        with pytest.raises(StorageError):
            ScanSet.deserialize(data[:-1] if data[-1] < 0x80
                                else data[:6],
                                zone_maps.__getitem__)

    def test_trailing_bytes_rejected(self):
        scan_set, zone_maps = self.make_scan_set()
        data = scan_set.serialize() + b"\x00"
        with pytest.raises(StorageError):
            ScanSet.deserialize(data, zone_maps.__getitem__)


# ----------------------------------------------------------------------
# Cuckoo and Xor filters
# ----------------------------------------------------------------------
class TestCuckooFilter:
    def test_no_false_negatives(self):
        rng = random.Random(1)
        values = [rng.randrange(10**9) for _ in range(3000)]
        cuckoo = CuckooFilter(expected_items=3000)
        assert cuckoo.add_all(values)
        assert all(cuckoo.might_contain(v) for v in values)

    def test_false_positive_rate(self):
        rng = random.Random(2)
        values = set(rng.randrange(10**9) for _ in range(4000))
        cuckoo = CuckooFilter(expected_items=4000)
        cuckoo.add_all(values)
        probes = [rng.randrange(10**9) for _ in range(4000)]
        fp = sum(1 for p in probes
                 if p not in values and cuckoo.might_contain(p))
        assert fp / len(probes) < 0.05

    def test_delete_support(self):
        cuckoo = CuckooFilter(expected_items=16)
        cuckoo.add("alpha")
        assert cuckoo.might_contain("alpha")
        assert cuckoo.remove("alpha")
        assert cuckoo.count == 0
        assert not cuckoo.remove("alpha")

    def test_strings(self):
        cuckoo = CuckooFilter(expected_items=8)
        cuckoo.add_all(["a", "b", "c"])
        assert all(cuckoo.might_contain(v) for v in ("a", "b", "c"))

    def test_range_probe(self):
        # size the filter generously so the 8-bit fingerprint FP rate
        # stays negligible over the enumerated probe range
        cuckoo = CuckooFilter(expected_items=256)
        cuckoo.add_all([100, 200])
        assert cuckoo.might_overlap_range(95, 105)
        assert not cuckoo.might_overlap_range(300, 400)
        assert cuckoo.might_overlap_range(0, 10**9)  # too wide

    def test_none_ignored(self):
        cuckoo = CuckooFilter(expected_items=4)
        assert cuckoo.add(None)
        assert not cuckoo.might_contain(None)


class TestXorFilter:
    def test_no_false_negatives(self):
        rng = random.Random(3)
        values = [rng.randrange(10**9) for _ in range(3000)]
        xor = XorFilter(values)
        assert all(xor.might_contain(v) for v in values)

    def test_false_positive_rate(self):
        rng = random.Random(4)
        values = set(rng.randrange(10**9) for _ in range(4000))
        xor = XorFilter(values)
        probes = [rng.randrange(10**9) for _ in range(4000)]
        fp = sum(1 for p in probes
                 if p not in values and xor.might_contain(p))
        assert fp / len(probes) < 0.05

    def test_smaller_than_bloom_per_key(self):
        from repro.pruning.summaries import BloomFilter

        values = list(range(5000))
        xor = XorFilter(values)
        bloom = BloomFilter(expected_items=5000, fpp=0.004)
        bloom.add_all(values)
        # ~9.84 bits/key for 8-bit xor vs ~11.5+ bits/key for Bloom at
        # a comparable false-positive rate.
        assert xor.nbytes() < bloom.nbytes()

    def test_empty(self):
        xor = XorFilter([])
        assert not xor.might_contain(5)
        assert not xor.might_overlap_range(0, 10)

    def test_as_join_summary(self):
        summary = build_summary([5, 95], kind="xor")
        schema = Schema.of(v=DataType.INTEGER, s=DataType.VARCHAR)
        table = build_table("t", schema,
                            [(i, "x") for i in range(100)],
                            rows_per_partition=10)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        result = JoinPruner("v", summary).prune(scan_set)
        assert result.after == 2

    def test_cuckoo_as_join_summary(self):
        summary = build_summary([5, 95], kind="cuckoo")
        schema = Schema.of(v=DataType.INTEGER, s=DataType.VARCHAR)
        table = build_table("t", schema,
                            [(i, "x") for i in range(100)],
                            rows_per_partition=10)
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        result = JoinPruner("v", summary).prune(scan_set)
        # probabilistic: both matching partitions kept, small slack
        # for false positives
        kept_ranges = [zm.stats("v").min_value
                       for _, zm in result.kept]
        assert 0 in kept_ranges and 90 in kept_ranges
        assert result.after <= 4


# ----------------------------------------------------------------------
# Deferred runtime filter pruning (§3.2)
# ----------------------------------------------------------------------
class TestDeferredRuntimePruning:
    def make_catalog(self):
        schema = Schema.of(ts=DataType.INTEGER, tag=DataType.VARCHAR,
                           noise=DataType.INTEGER)
        rows = [(i, f"tag{i % 5}", i * 13 % 997) for i in range(4000)]
        catalog = Catalog(rows_per_partition=40)
        catalog.create_table_from_rows("t", schema, rows,
                                       layout=Layout.sorted_by("ts"))
        return catalog

    def options(self, defer):
        return CompilerOptions(
            use_pruning_tree=True,
            defer_cutoff_to_runtime=defer,
            tree_config=TreeConfig(cutoff_min_samples=16,
                                   enable_reorder=False),
        )

    def test_cut_filters_deferred_to_scan(self):
        catalog = self.make_catalog()
        # noise >= 0 is ineffective at compile time and gets cut;
        # with deferral it reappears as a runtime pruner on the scan.
        sql = ("SELECT * FROM t WHERE noise >= 0 AND "
               "ts >= 3900")
        result = catalog.sql(sql, self.options(defer=True))
        assert result.num_rows == 100
        explain = catalog.explain(sql, self.options(defer=True))
        assert "deferred runtime filter pruning" in explain

    def test_tree_cut_predicates_exposed(self):
        schema = Schema.of(ts=DataType.INTEGER, tag=DataType.VARCHAR,
                           noise=DataType.INTEGER)
        rows = [(i, f"tag{i % 5}", i % 7) for i in range(4000)]
        table = build_table("t", schema, rows, rows_per_partition=40,
                            layout=Layout.sorted_by("ts"))
        scan_set = ScanSet((p.partition_id, p.zone_map)
                           for p in table.partitions)
        predicate = And(Compare(">=", col("noise"), lit(0)),
                        EndsWith(col("tag"), "3"),
                        Compare(">=", col("ts"), lit(3900)))
        tree = PruningTree(predicate, schema,
                           TreeConfig(cutoff_min_samples=16,
                                      enable_reorder=False))
        tree.prune(scan_set)
        cut = tree.cut_predicates()
        assert Compare(">=", col("noise"), lit(0)) in cut
        assert EndsWith(col("tag"), "3") in cut

    def test_results_identical_with_and_without_deferral(self):
        catalog = self.make_catalog()
        sql = "SELECT * FROM t WHERE noise >= 0 AND ts >= 3500"
        with_deferral = catalog.sql(sql, self.options(defer=True))
        without = catalog.sql(sql, self.options(defer=False))
        assert sorted(with_deferral.rows) == sorted(without.rows)


# ----------------------------------------------------------------------
# Iceberg-backed catalog tables (§8.1)
# ----------------------------------------------------------------------
class TestIcebergCatalog:
    SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)

    def make_iceberg(self, with_stats=True):
        files = [
            ParquetFile.write(
                self.SCHEMA,
                [(i, f"s{i}") for i in range(base, base + 400)],
                row_group_rows=100, page_rows=50,
                write_statistics=with_stats,
                write_page_index=with_stats)
            for base in range(0, 2000, 400)]
        return IcebergTable.from_files("lake", self.SCHEMA, files)

    def test_sql_over_iceberg(self):
        catalog = Catalog()
        catalog.create_table_from_iceberg(self.make_iceberg())
        result = catalog.sql("SELECT * FROM lake WHERE x >= 1900")
        assert result.num_rows == 100
        scan = result.profile.scans[0]
        assert scan.total_partitions == 20  # one per row group
        assert scan.filter_result.after == 1

    def test_missing_stats_no_pruning_until_backfill(self):
        catalog = Catalog()
        catalog.create_table_from_iceberg(
            self.make_iceberg(with_stats=False))
        before = catalog.sql("SELECT * FROM lake WHERE x >= 1900")
        assert before.num_rows == 100
        assert before.profile.scans[0].filter_result.after == 20

        repaired = catalog.backfill_iceberg_metadata("lake")
        assert repaired == 20
        after = catalog.sql("SELECT * FROM lake WHERE x >= 1900")
        assert after.num_rows == 100
        assert after.profile.scans[0].filter_result.after == 1

    def test_topk_over_iceberg(self):
        catalog = Catalog()
        catalog.create_table_from_iceberg(self.make_iceberg())
        result = catalog.sql(
            "SELECT * FROM lake ORDER BY x DESC LIMIT 3")
        assert [r[0] for r in result.rows] == [1999, 1998, 1997]
        assert result.profile.scans[0].topk_skipped > 15

    def test_backfill_requires_iceberg_table(self):
        catalog = Catalog()
        catalog.create_table_from_rows("plain", self.SCHEMA,
                                       [(1, "a")])
        with pytest.raises(SchemaError):
            catalog.backfill_iceberg_metadata("plain")

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.create_table_from_iceberg(self.make_iceberg())
        with pytest.raises(SchemaError):
            catalog.create_table_from_iceberg(self.make_iceberg())


# ----------------------------------------------------------------------
# Pruning-informed join-side selection (§2.1)
# ----------------------------------------------------------------------
class TestJoinSideSwap:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=100)
        big = Schema.of(key=DataType.INTEGER, payload=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "big", big, [(i % 50, f"p{i}") for i in range(5000)])
        small = Schema.of(k=DataType.INTEGER, name=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "small", small, [(i, f"n{i}") for i in range(50)])
        return catalog

    def test_small_left_side_becomes_build(self):
        catalog = self.make_catalog()
        # small (50 rows) is on the left; with the swap it becomes the
        # build side and the big table's scan gets probe-side pruning.
        explain = catalog.explain(
            "SELECT * FROM small JOIN big ON k = key")
        assert "probe-side pruning: on" in explain

    def test_swapped_join_results_and_column_order(self):
        catalog = self.make_catalog()
        result = catalog.sql(
            "SELECT * FROM small JOIN big ON k = key "
            "WHERE big.key < 2")
        # left table's columns still come first
        assert result.schema.names() == ["k", "name", "key", "payload"]
        assert result.num_rows == 200  # 2 keys x 100 occurrences
        assert all(row[0] == row[2] for row in result.rows)

    def test_swap_disabled(self):
        catalog = self.make_catalog()
        options = CompilerOptions(enable_join_side_swap=False)
        result = catalog.sql(
            "SELECT * FROM small JOIN big ON k = key "
            "WHERE big.key < 2", options)
        assert result.num_rows == 200
        assert result.schema.names() == ["k", "name", "key", "payload"]

    def test_results_identical_with_and_without_swap(self):
        catalog = self.make_catalog()
        sql = "SELECT * FROM small JOIN big ON k = key WHERE k < 5"
        swapped = catalog.sql(sql)
        plain = catalog.sql(
            sql, CompilerOptions(enable_join_side_swap=False))
        assert sorted(swapped.rows) == sorted(plain.rows)


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------
class TestExplain:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=100)
        schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER)
        catalog.create_table_from_rows(
            "t", schema, [(i, i * 3 % 100) for i in range(2000)],
            layout=Layout.sorted_by("ts"))
        return catalog

    def test_scan_annotations(self):
        catalog = self.make_catalog()
        explain = catalog.explain("SELECT * FROM t WHERE ts >= 1900")
        assert "Scan t" in explain
        assert "partitions: 1/20" in explain
        assert "filter pruned 19" in explain

    def test_topk_annotations(self):
        catalog = self.make_catalog()
        explain = catalog.explain(
            "SELECT * FROM t ORDER BY ts DESC LIMIT 5")
        assert "TopK [ts DESC, k=5] (shared boundary)" in explain
        assert "top-k boundary pruning" in explain

    def test_limit_annotations(self):
        catalog = self.make_catalog()
        explain = catalog.explain("SELECT * FROM t LIMIT 5")
        assert "limit pruning: pruned_to_one" in explain

    def test_subtree_elimination_rendered(self):
        catalog = self.make_catalog()
        explain = catalog.explain(
            "SELECT * FROM t WHERE ts > 99999 AND FALSE")
        assert "Empty" in explain

    def test_group_by_topk_hint_rendered(self):
        catalog = self.make_catalog()
        explain = catalog.explain(
            "SELECT ts, count(*) AS c FROM t GROUP BY ts "
            "ORDER BY ts DESC LIMIT 3")
        assert "top-k aware" in explain

    def test_explain_does_not_execute(self):
        catalog = self.make_catalog()
        catalog.storage.stats.reset()
        catalog.explain("SELECT * FROM t")
        assert catalog.storage.stats.partitions_loaded == 0


# ----------------------------------------------------------------------
# Metadata-only aggregates
# ----------------------------------------------------------------------
class TestMetadataAggregates:
    def make_catalog(self, with_nulls=True):
        catalog = Catalog(rows_per_partition=100)
        schema = Schema.of(ts=DataType.INTEGER, v=DataType.DOUBLE)
        rows = [(i, None if with_nulls and i % 5 == 0 else float(i % 7))
                for i in range(1000)]
        catalog.create_table_from_rows("t", schema, rows,
                                       layout=Layout.random(seed=1))
        return catalog

    def test_count_min_max_from_metadata(self):
        catalog = self.make_catalog()
        result = catalog.sql(
            "SELECT count(*) AS n, count(v) AS c, min(ts) AS lo, "
            "max(ts) AS hi FROM t")
        assert result.rows == [(1000, 800, 0, 999)]
        assert result.profile.partitions_loaded == 0
        assert result.profile.scans[0].metadata_only

    def test_matches_execution_oracle(self):
        catalog = self.make_catalog()
        sql = "SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM t"
        metadata = catalog.sql(sql)
        executed = catalog.sql(
            sql, CompilerOptions(enable_metadata_aggregates=False))
        assert metadata.rows == executed.rows
        assert executed.profile.partitions_loaded > 0

    def test_all_null_column_min_is_null(self):
        catalog = Catalog(rows_per_partition=10)
        schema = Schema.of(x=DataType.INTEGER, v=DataType.DOUBLE)
        catalog.create_table_from_rows(
            "t", schema, [(i, None) for i in range(20)])
        result = catalog.sql("SELECT min(v) AS lo, count(v) AS c FROM t")
        assert result.rows == [(None, 0)]
        assert result.profile.partitions_loaded == 0

    def test_predicate_blocks_shortcut(self):
        catalog = self.make_catalog()
        result = catalog.sql("SELECT count(*) AS n FROM t WHERE ts < 10")
        assert result.rows == [(10,)]
        assert result.profile.partitions_loaded > 0

    def test_group_by_blocks_shortcut(self):
        catalog = self.make_catalog()
        result = catalog.sql(
            "SELECT ts, count(*) AS n FROM t GROUP BY ts LIMIT 5")
        assert result.profile.partitions_loaded > 0

    def test_avg_blocks_shortcut(self):
        catalog = self.make_catalog()
        result = catalog.sql("SELECT avg(v) AS m FROM t")
        assert result.profile.partitions_loaded > 0

    def test_missing_stats_fall_back_to_execution(self):
        catalog = Catalog(rows_per_partition=100)
        schema = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)
        files = [ParquetFile.write(
            schema, [(i, "a") for i in range(200)],
            row_group_rows=100, write_statistics=False,
            write_page_index=False)]
        catalog.create_table_from_iceberg(
            IcebergTable.from_files("raw", schema, files))
        result = catalog.sql("SELECT min(x) AS lo FROM raw")
        assert result.rows == [(0,)]
        assert result.profile.partitions_loaded > 0

    def test_date_columns_roundtrip(self):
        import datetime

        catalog = Catalog(rows_per_partition=10)
        schema = Schema.of(d=DataType.DATE)
        days = [datetime.date(2024, 1, 1) + datetime.timedelta(days=i)
                for i in range(30)]
        catalog.create_table_from_rows("t", schema,
                                       [(d,) for d in days])
        result = catalog.sql("SELECT min(d) AS lo, max(d) AS hi FROM t")
        assert result.rows == [(days[0], days[-1])]
        assert result.profile.partitions_loaded == 0

    def test_explain_shows_metadata_aggregate(self):
        catalog = self.make_catalog()
        explain = catalog.explain("SELECT count(*) FROM t")
        assert "MetadataAggregate" in explain
        assert "no data read" in explain


# ----------------------------------------------------------------------
# Clustering information and reclustering
# ----------------------------------------------------------------------
class TestClusteringMaintenance:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=100)
        schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER)
        rows = [(i, i * 3 % 1000) for i in range(2000)]
        catalog.create_table_from_rows("t", schema, rows,
                                       layout=Layout.random(seed=4))
        return catalog

    def test_clustering_information_random_layout(self):
        catalog = self.make_catalog()
        info = catalog.clustering_information("t", "ts")
        assert info.partition_count == 20
        assert info.average_depth > 10
        assert info.max_depth <= 20
        assert sum(info.depth_histogram.values()) == 20

    def test_recluster_improves_depth_and_pruning(self):
        catalog = self.make_catalog()
        before = catalog.sql("SELECT * FROM t WHERE ts >= 1900")
        assert before.profile.partitions_loaded == 20

        catalog.recluster("t", "ts")
        info = catalog.clustering_information("t", "ts")
        assert info.average_depth == 1.0

        after = catalog.sql("SELECT * FROM t WHERE ts >= 1900")
        assert sorted(after.rows) == sorted(before.rows)
        assert after.profile.partitions_loaded == 1

    def test_recluster_preserves_rows(self):
        catalog = self.make_catalog()
        before = sorted(catalog.tables["t"].to_rows())
        catalog.recluster("t", "v")
        assert sorted(catalog.tables["t"].to_rows()) == before

    def test_recluster_requires_keys(self):
        catalog = self.make_catalog()
        with pytest.raises(SchemaError):
            catalog.recluster("t")

    def test_recluster_invalidates_predicate_cache(self):
        catalog = self.make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM t ORDER BY v DESC LIMIT 3"
        catalog.sql(sql)
        catalog.recluster("t", "ts")
        result = catalog.sql(sql)
        assert not result.profile.scans[0].cache_hit
        oracle = sorted(catalog.tables["t"].to_rows(),
                        key=lambda r: -r[1])[:3]
        assert [r[1] for r in result.rows] == [r[1] for r in oracle]

    def test_string_column_clustering_info(self):
        catalog = Catalog(rows_per_partition=10)
        schema = Schema.of(s=DataType.VARCHAR)
        catalog.create_table_from_rows(
            "t", schema, [(f"k{i:04d}",) for i in range(100)],
            layout=Layout.sorted_by("s"))
        info = catalog.clustering_information("t", "s")
        assert info.average_depth == 1.0


# ----------------------------------------------------------------------
# Compile-time vs runtime pruning balance (§3.2)
# ----------------------------------------------------------------------
class TestCompileRuntimeBalance:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=20)
        schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER)
        catalog.create_table_from_rows(
            "t", schema, [(i, i % 9) for i in range(2000)],
            layout=Layout.sorted_by("ts"))
        return catalog

    def test_large_scan_set_pushes_pruning_to_runtime(self):
        catalog = self.make_catalog()
        options = CompilerOptions(compile_prune_partition_limit=50)
        result = catalog.sql("SELECT * FROM t WHERE ts >= 1960",
                             options)
        assert result.num_rows == 40
        scan = result.profile.scans[0]
        # nothing pruned at compile time...
        assert scan.partitions_loaded == 2
        # ...but runtime pruning still skipped the rest, attributed to
        # the filter technique
        assert scan.filter_result is not None
        assert scan.filter_result.pruned == 98
        # compile time stayed below the compile-pruned variant's: the
        # per-partition checks moved to execution time
        compile_pruned = catalog.sql(
            "SELECT * FROM t WHERE ts >= 1960", CompilerOptions())
        assert result.profile.compile_ms < \
            compile_pruned.profile.compile_ms
        assert result.profile.exec_ms > \
            compile_pruned.profile.exec_ms

    def test_small_scan_set_still_pruned_at_compile_time(self):
        catalog = self.make_catalog()
        options = CompilerOptions(compile_prune_partition_limit=500)
        result = catalog.sql("SELECT * FROM t WHERE ts >= 1960",
                             options)
        scan = result.profile.scans[0]
        assert scan.filter_result.after == 2
        assert scan.partitions_loaded == 2

    def test_runtime_pruning_matches_compile_results(self):
        catalog = self.make_catalog()
        sql = "SELECT * FROM t WHERE ts BETWEEN 300 AND 459"
        runtime = catalog.sql(
            sql, CompilerOptions(compile_prune_partition_limit=10))
        compile_time = catalog.sql(sql, CompilerOptions())
        assert sorted(runtime.rows) == sorted(compile_time.rows)
        assert runtime.profile.partitions_loaded == \
            compile_time.profile.partitions_loaded

    def test_limit_pruning_lost_when_deferred(self):
        # The documented trade-off: runtime-only pruning cannot find
        # fully-matching partitions, so LIMIT pruning does not fire.
        catalog = self.make_catalog()
        options = CompilerOptions(compile_prune_partition_limit=10)
        result = catalog.sql(
            "SELECT * FROM t WHERE ts >= 1000 LIMIT 3", options)
        assert result.num_rows == 3
        scan = result.profile.scans[0]
        report = scan.limit_report
        assert report is None or not report.outcome.pruned


# ----------------------------------------------------------------------
# Projection pushdown (§2: PAX column-level reads)
# ----------------------------------------------------------------------
class TestProjectionPushdown:
    def make_catalog(self):
        catalog = Catalog(rows_per_partition=100)
        schema = Schema.of(ts=DataType.INTEGER, wide_a=DataType.VARCHAR,
                           wide_b=DataType.VARCHAR, v=DataType.INTEGER,
                           fk=DataType.INTEGER)
        rows = [(i, "x" * 40, "y" * 40, i % 7, i % 10)
                for i in range(1000)]
        catalog.create_table_from_rows("t", schema, rows,
                                       layout=Layout.sorted_by("ts"))
        catalog.create_table_from_rows(
            "d", Schema.of(k=DataType.INTEGER, name=DataType.VARCHAR),
            [(i, f"n{i}") for i in range(10)])
        return catalog

    def reads(self, catalog, sql, **options):
        catalog.storage.stats.reset()
        result = catalog.sql(sql, CompilerOptions(**options))
        return result, catalog.storage.stats.bytes_read

    def test_narrow_projection_reads_fewer_bytes(self):
        catalog = self.make_catalog()
        sql = "SELECT ts FROM t WHERE ts < 150"
        narrow, narrow_bytes = self.reads(catalog, sql)
        full, full_bytes = self.reads(catalog, sql,
                                      enable_projection_pushdown=False)
        assert narrow.rows == full.rows
        assert narrow_bytes < full_bytes / 3

    def test_predicate_columns_always_read(self):
        catalog = self.make_catalog()
        result, _ = self.reads(catalog,
                               "SELECT wide_a FROM t WHERE v = 3")
        expected = [("x" * 40,)] * sum(
            1 for r in catalog.tables["t"].to_rows() if r[3] == 3)
        assert result.rows == expected

    def test_select_star_reads_everything(self):
        catalog = self.make_catalog()
        sql = "SELECT * FROM t WHERE ts < 100"
        on, on_bytes = self.reads(catalog, sql)
        off, off_bytes = self.reads(catalog, sql,
                                    enable_projection_pushdown=False)
        assert on_bytes == off_bytes
        assert on.rows == off.rows

    def test_join_keys_preserved(self):
        catalog = self.make_catalog()
        sql = ("SELECT ts, d.name FROM t JOIN d ON fk = d.k "
               "WHERE ts < 50")
        narrow, narrow_bytes = self.reads(catalog, sql)
        full, full_bytes = self.reads(catalog, sql,
                                      enable_projection_pushdown=False)
        assert sorted(narrow.rows) == sorted(full.rows)
        assert narrow_bytes < full_bytes

    def test_aggregate_inputs_preserved(self):
        catalog = self.make_catalog()
        result, _ = self.reads(
            catalog,
            "SELECT v, count(*) AS c FROM t WHERE ts < 700 "
            "GROUP BY v ORDER BY v")
        oracle = {}
        for r in catalog.tables["t"].to_rows():
            if r[0] < 700:
                oracle[r[3]] = oracle.get(r[3], 0) + 1
        assert result.rows == sorted(oracle.items())

    def test_order_by_column_preserved(self):
        catalog = self.make_catalog()
        result, _ = self.reads(
            catalog, "SELECT ts FROM t ORDER BY v DESC LIMIT 3")
        assert result.num_rows == 3

    def test_count_star_still_counts(self):
        catalog = self.make_catalog()
        # force execution (not metadata aggregate) with a predicate
        result, _ = self.reads(
            catalog, "SELECT count(*) AS n FROM t WHERE ts < 500")
        assert result.rows == [(500,)]
