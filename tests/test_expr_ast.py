"""Tests for expression AST construction, typing, SQL rendering."""

import pytest

from repro.errors import TypeMismatchError
from repro.expr import ast
from repro.expr.ast import (
    And,
    Arith,
    Cast,
    ColumnRef,
    Compare,
    Contains,
    EndsWith,
    FunctionCall,
    If,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    StartsWith,
    between,
    col,
    lit,
)
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, y=DataType.DOUBLE,
                   s=DataType.VARCHAR, b=DataType.BOOLEAN,
                   d=DataType.DATE)


class TestTyping:
    def test_column_ref(self):
        assert col("X").dtype(SCHEMA) == DataType.INTEGER

    def test_literal_inference(self):
        assert lit(1).dtype(SCHEMA) == DataType.INTEGER
        assert lit("a").dtype(SCHEMA) == DataType.VARCHAR

    def test_null_literal_needs_dtype(self):
        with pytest.raises(TypeMismatchError):
            Literal(None)
        assert Literal(None, DataType.VARCHAR).dtype(SCHEMA) == \
            DataType.VARCHAR

    def test_arith_promotion(self):
        assert Arith("+", col("x"), lit(1)).dtype(SCHEMA) == \
            DataType.INTEGER
        assert Arith("*", col("x"), col("y")).dtype(SCHEMA) == \
            DataType.DOUBLE

    def test_division_always_double(self):
        assert Arith("/", col("x"), lit(2)).dtype(SCHEMA) == \
            DataType.DOUBLE

    def test_arith_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            Arith("+", col("s"), lit(1)).dtype(SCHEMA)

    def test_unknown_operator_rejected(self):
        with pytest.raises(TypeMismatchError):
            Arith("**", col("x"), lit(1))
        with pytest.raises(TypeMismatchError):
            Compare("==", col("x"), lit(1))

    def test_compare_is_boolean(self):
        assert Compare("<", col("x"), lit(5)).dtype(SCHEMA) == \
            DataType.BOOLEAN

    def test_compare_incompatible(self):
        with pytest.raises(TypeMismatchError):
            Compare("=", col("s"), lit(1)).dtype(SCHEMA)

    def test_boolean_ops_require_boolean(self):
        with pytest.raises(TypeMismatchError):
            And(col("x"), col("b")).dtype(SCHEMA)
        with pytest.raises(TypeMismatchError):
            Not(col("x")).dtype(SCHEMA)

    def test_variadic_needs_two_children(self):
        with pytest.raises(TypeMismatchError):
            And(col("b"))

    def test_if_branch_types(self):
        expr = If(col("b"), col("x"), col("y"))
        assert expr.dtype(SCHEMA) == DataType.DOUBLE
        with pytest.raises(TypeMismatchError):
            If(col("b"), col("x"), col("s")).dtype(SCHEMA)

    def test_like_requires_varchar(self):
        with pytest.raises(TypeMismatchError):
            Like(col("x"), "a%").dtype(SCHEMA)

    def test_in_list_typing(self):
        assert InList(col("x"), [1, 2]).dtype(SCHEMA) == \
            DataType.BOOLEAN
        with pytest.raises(TypeMismatchError):
            InList(col("x"), ["a"]).dtype(SCHEMA)
        with pytest.raises(TypeMismatchError):
            InList(col("x"), [])

    def test_function_typing(self):
        assert FunctionCall("abs", [col("x")]).dtype(SCHEMA) == \
            DataType.INTEGER
        assert FunctionCall("length", [col("s")]).dtype(SCHEMA) == \
            DataType.INTEGER
        assert FunctionCall("year", [col("d")]).dtype(SCHEMA) == \
            DataType.INTEGER
        with pytest.raises(TypeMismatchError):
            FunctionCall("abs", [col("s")]).dtype(SCHEMA)
        with pytest.raises(TypeMismatchError):
            FunctionCall("nosuch", [col("x")])
        with pytest.raises(TypeMismatchError):
            FunctionCall("abs", [col("x"), col("y")])

    def test_cast_rules(self):
        assert Cast(col("x"), DataType.DOUBLE).dtype(SCHEMA) == \
            DataType.DOUBLE
        with pytest.raises(TypeMismatchError):
            Cast(col("s"), DataType.INTEGER).dtype(SCHEMA)


class TestStructure:
    def test_equality_structural(self):
        a = And(Compare("<", col("x"), lit(5)), IsNull(col("s")))
        b = And(Compare("<", col("x"), lit(5)), IsNull(col("s")))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_literals(self):
        assert Compare("<", col("x"), lit(5)) != \
            Compare("<", col("x"), lit(6))

    def test_column_refs_collects_all(self):
        expr = If(Compare("=", col("s"), lit("a")),
                  Arith("*", col("x"), lit(2)), col("y"))
        assert expr.column_refs() == {"s", "x", "y"}

    def test_walk_preorder(self):
        expr = Not(Compare("<", col("x"), lit(5)))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Not", "Compare", "ColumnRef", "Literal"]

    def test_with_children_rebuilds(self):
        expr = Compare("<", col("x"), lit(5))
        rebuilt = expr.with_children([col("y"), lit(9)])
        assert rebuilt == Compare("<", col("y"), lit(9))


class TestSqlRendering:
    def test_to_sql(self):
        expr = And(Compare(">=", col("x"), lit(5)),
                   Like(col("s"), "Marked-%-Ridge"))
        sql = expr.to_sql()
        assert "x >= 5" in sql
        assert "LIKE 'Marked-%-Ridge'" in sql

    def test_string_escaping(self):
        assert Literal("it's").to_sql() == "'it''s'"

    def test_shape_hides_literals(self):
        a = Compare("<", col("x"), lit(5)).shape()
        b = Compare("<", col("x"), lit(99)).shape()
        assert a == b
        assert "5" not in a

    def test_between_desugars(self):
        expr = between(col("x"), lit(1), lit(9))
        assert isinstance(expr, And)
        assert expr.children()[0] == Compare(">=", col("x"), lit(1))


class TestLikeHelpers:
    def test_literal_prefix(self):
        assert Like(col("s"), "abc%def").literal_prefix == "abc"
        assert Like(col("s"), "%abc").literal_prefix == ""
        assert Like(col("s"), "ab_c").literal_prefix == "ab"

    def test_is_exact(self):
        assert Like(col("s"), "abc").is_exact
        assert not Like(col("s"), "abc%").is_exact

    def test_string_predicates(self):
        for node_type in (StartsWith, EndsWith, Contains):
            node = node_type(col("s"), "abc")
            assert node.dtype(SCHEMA) == DataType.BOOLEAN
            with pytest.raises(TypeMismatchError):
                node_type(col("x"), "abc").dtype(SCHEMA)
