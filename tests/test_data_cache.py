"""Warehouse-local partition cache: unit, property, differential,
and wiring tests (PR 5).

The acceptance bar mirrors the chaos suite's: the cache is a pure
performance layer, so every query must return exactly the same rows
with caching on and off — across interleaved DML, recluster rewrites,
and seeded transient faults. On top of that, segmented-LRU/byte-budget
invariants are checked property-style with hypothesis.
"""

from __future__ import annotations

import threading

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import (
    Catalog,
    DataType,
    FaultInjector,
    FaultSpec,
    Layout,
    PartitionCache,
    RetryPolicy,
    Schema,
    StorageError,
)
from repro.cache.prefetcher import Prefetcher
from repro.storage.metadata_store import MetadataStore
from repro.storage.micropartition import MicroPartition
from repro.storage.storage_layer import StorageLayer

SCHEMA = Schema.of(ts=DataType.INTEGER, score=DataType.INTEGER,
                   note=DataType.VARCHAR)


def make_partition(ts0: int = 0, n: int = 10) -> MicroPartition:
    # Fixed-width notes keep every partition the same byte size, so
    # the LRU/budget tests can reason in whole entries.
    rows = [(ts0 + i, (ts0 + i) * 7 % 100, f"n{ts0 + i:06d}")
            for i in range(n)]
    return MicroPartition.from_rows(SCHEMA, rows)


def make_catalog(n_rows: int = 1000, rows_per_partition: int = 50,
                 **kwargs) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition, **kwargs)
    rows = [(i, (i * 37) % 1000, f"n{i}") for i in range(n_rows)]
    catalog.create_table_from_rows("events", SCHEMA, rows,
                                   layout=Layout.sorted_by("ts"))
    return catalog


# ----------------------------------------------------------------------
# PartitionCache unit tests
# ----------------------------------------------------------------------
class TestPartitionCache:
    def test_put_then_get_hits(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition)
        assert cache.get(partition.partition_id) is partition
        snap = cache.stats()
        assert snap.hits == 1 and snap.misses == 0
        assert snap.bytes_saved == partition.nbytes()

    def test_miss_recorded(self):
        cache = PartitionCache(1 << 20)
        assert cache.get(999) is None
        assert cache.stats().misses == 1

    def test_column_subset_charges_fewer_bytes(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition, columns=["ts", "score"])
        charged = cache.stats().resident_bytes
        assert charged == partition.project_bytes(["score", "ts"])
        assert charged < partition.nbytes()

    def test_partial_entry_misses_for_wider_read(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition, columns=["ts"])
        # The resident subset does not cover {ts, note}: miss.
        assert cache.get(partition.partition_id,
                         columns=["ts", "note"]) is None
        # But it serves narrower reads.
        assert cache.get(partition.partition_id,
                         columns=["ts"]) is partition

    def test_put_widens_resident_columns(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition, columns=["ts"])
        narrow = cache.stats().resident_bytes
        cache.put(partition, columns=["note"])
        assert cache.stats().resident_bytes > narrow
        assert cache.get(partition.partition_id,
                         columns=["ts", "note"]) is partition

    def test_full_put_covers_everything(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition)  # columns=None: all columns resident
        assert cache.get(partition.partition_id,
                         columns=["ts", "score", "note"]) is partition

    def test_checksum_mismatch_invalidates(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition)
        wrong = partition.checksum ^ 1
        assert cache.get(partition.partition_id,
                         expected_checksum=wrong) is None
        snap = cache.stats()
        assert snap.invalidations == 1
        assert partition.partition_id not in cache

    def test_over_budget_put_rejected(self):
        partition = make_partition()
        cache = PartitionCache(partition.nbytes() - 1)
        assert cache.put(partition) == []
        assert len(cache) == 0
        assert cache.stats().rejected == 1

    def test_eviction_is_probation_lru_first(self):
        parts = [make_partition(i * 10) for i in range(4)]
        size = parts[0].nbytes()
        cache = PartitionCache(size * 3)
        for p in parts[:3]:
            cache.put(p)
        # Promote parts[0] to protected; probation LRU is parts[1].
        cache.get(parts[0].partition_id)
        evicted = cache.put(parts[3])
        assert evicted == [parts[1].partition_id]
        assert parts[0].partition_id in cache

    def test_hit_promotes_to_protected(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition)
        assert cache.segment_ids()["probation"] == \
            [partition.partition_id]
        cache.get(partition.partition_id)
        assert cache.segment_ids()["protected"] == \
            [partition.partition_id]

    def test_protected_overflow_demotes_lru(self):
        parts = [make_partition(i * 10) for i in range(4)]
        size = parts[0].nbytes()
        # Budget fits all four; protected capped at half of it.
        cache = PartitionCache(size * 4, protected_fraction=0.5)
        for p in parts:
            cache.put(p)
            cache.get(p.partition_id)  # promote each immediately
        segments = cache.segment_ids()
        assert len(segments["protected"]) == 2
        # The two oldest promotions were demoted back, in LRU order.
        assert segments["probation"] == [p.partition_id
                                         for p in parts[:2]]
        assert len(cache) == 4

    def test_invalidate_and_clear(self):
        cache = PartitionCache(1 << 20)
        partition = make_partition()
        cache.put(partition)
        assert cache.invalidate(partition.partition_id)
        assert not cache.invalidate(partition.partition_id)
        cache.put(partition)
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0

    def test_metadata_unregister_invalidates(self):
        metadata = MetadataStore()
        cache = PartitionCache(1 << 20).attach(metadata)
        partition = make_partition()
        metadata.register("t", partition.partition_id,
                          partition.zone_map)
        cache.put(partition)
        metadata.unregister("t", partition.partition_id)
        assert partition.partition_id not in cache
        assert cache.stats().invalidations == 1

    def test_attach_twice_rejected(self):
        cache = PartitionCache(1 << 20).attach(MetadataStore())
        with pytest.raises(ValueError):
            cache.attach(MetadataStore())

    def test_close_detaches_and_clears(self):
        metadata = MetadataStore()
        cache = PartitionCache(1 << 20).attach(metadata)
        partition = make_partition()
        metadata.register("t", partition.partition_id,
                          partition.zone_map)
        cache.put(partition)
        cache.close()
        assert len(cache) == 0
        # No longer subscribed: this must not raise or re-count.
        metadata.unregister("t", partition.partition_id)
        assert cache.stats().invalidations == 0

    def test_warm_from_copies_hottest_first(self):
        parts = [make_partition(i * 10) for i in range(3)]
        size = parts[0].nbytes()
        donor = PartitionCache(size * 3)
        for p in parts:
            donor.put(p)
        donor.get(parts[2].partition_id)  # hottest: protected
        fresh = PartitionCache(size)  # room for exactly one entry
        assert fresh.warm_from(donor) == 1
        assert parts[2].partition_id in fresh

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            PartitionCache(0)
        with pytest.raises(ValueError):
            PartitionCache(100, protected_fraction=1.5)


# ----------------------------------------------------------------------
# Property tests: budget + segmented-LRU invariants
# ----------------------------------------------------------------------
PARTS = [make_partition(i * 100) for i in range(8)]
PART_SIZE = PARTS[0].nbytes()

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 7)),
        st.tuples(st.just("get"), st.integers(0, 7)),
        st.tuples(st.just("invalidate"), st.integers(0, 7)),
    ),
    min_size=1, max_size=60)


class TestCacheProperties:
    @given(ops=ops, capacity=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_budget_and_accounting_invariants(self, ops, capacity):
        cache = PartitionCache(PART_SIZE * capacity)
        for op, i in ops:
            partition = PARTS[i]
            if op == "put":
                cache.put(partition)
            elif op == "get":
                cache.get(partition.partition_id)
            else:
                cache.invalidate(partition.partition_id)
            snap = cache.stats()
            # Budget is a hard ceiling and accounting is exact.
            assert snap.resident_bytes <= cache.budget_bytes
            assert snap.resident_bytes == PART_SIZE * snap.entries
            segments = cache.segment_ids()
            resident = segments["probation"] + segments["protected"]
            # An entry lives in exactly one segment.
            assert len(resident) == len(set(resident)) == snap.entries

    @given(ops=ops)
    @settings(max_examples=60, deadline=None)
    def test_resident_entries_always_servable(self, ops):
        """Whatever the op sequence, a resident id always serves the
        exact partition object that was put (never stale bytes)."""
        cache = PartitionCache(PART_SIZE * 4)
        for op, i in ops:
            partition = PARTS[i]
            if op == "put":
                cache.put(partition)
            elif op == "get":
                got = cache.get(partition.partition_id, record=False)
                assert got is None or got is partition
            else:
                cache.invalidate(partition.partition_id)
                assert partition.partition_id not in cache

    @given(hot=st.integers(0, 3), rounds=st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_hot_entry_survives_one_shot_wash(self, hot, rounds):
        """Segmented LRU's point: a repeatedly referenced partition is
        never evicted by a stream of one-shot scans."""
        cache = PartitionCache(PART_SIZE * 3)
        cache.put(PARTS[hot])
        cache.get(PARTS[hot].partition_id)  # promote
        others = [p for p in PARTS if p is not PARTS[hot]]
        for r in range(rounds):
            cache.put(others[r % len(others)])
            assert PARTS[hot].partition_id in cache


# ----------------------------------------------------------------------
# Prefetcher
# ----------------------------------------------------------------------
class TestPrefetcher:
    def make_storage(self, n=6):
        storage = StorageLayer()
        parts = [make_partition(i * 10) for i in range(n)]
        for p in parts:
            storage.put(p)
        return storage, parts

    def test_prefetch_populates_cache_in_scan_order(self):
        storage, parts = self.make_storage()
        cache = PartitionCache(1 << 20)
        order = [p.partition_id for p in parts]
        prefetcher = Prefetcher(cache, storage, order, window=2)
        try:
            for pid in order:
                claimed = prefetcher.claim(pid)
                assert cache.get(pid, record=False) is not None \
                    or not claimed
        finally:
            prefetcher.close()
        assert cache.stats().prefetch_loads >= 1

    def test_prefetch_failure_never_populates(self):
        storage, parts = self.make_storage(3)
        missing = parts[1].partition_id
        storage.delete(missing)
        cache = PartitionCache(1 << 20)
        order = [p.partition_id for p in parts]
        prefetcher = Prefetcher(cache, storage, order, window=3)
        try:
            assert prefetcher.claim(missing) is False
        finally:
            prefetcher.close()
        assert missing not in cache

    def test_close_is_idempotent(self):
        storage, parts = self.make_storage(2)
        cache = PartitionCache(1 << 20)
        prefetcher = Prefetcher(cache, storage,
                                [p.partition_id for p in parts])
        prefetcher.close()
        prefetcher.close()


# ----------------------------------------------------------------------
# Engine wiring: hits, prefetch, invalidation end-to-end
# ----------------------------------------------------------------------
class TestCatalogWiring:
    SQL = "SELECT ts, score FROM events WHERE ts >= 200"

    def test_second_run_is_all_hits(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        cold = catalog.sql(self.SQL)
        hot = catalog.sql(self.SQL)
        assert cold.rows == hot.rows
        assert cold.profile.data_cache_hits == 0
        assert cold.profile.data_cache_misses > 0
        assert hot.profile.data_cache_misses == 0
        assert hot.profile.data_cache_hits == \
            hot.profile.partitions_loaded
        assert hot.profile.data_cache_bytes_saved > 0

    def test_loaded_counters_identical_on_and_off(self):
        """partitions_loaded / rows_scanned / bytes_scanned describe
        the logical scan and must not depend on where bytes came
        from (the differential suite's accounting half)."""
        cached = make_catalog()
        cached.enable_data_cache()
        plain = make_catalog()
        cached.sql(self.SQL)  # warm
        hot = cached.sql(self.SQL).profile
        off = plain.sql(self.SQL).profile
        assert hot.partitions_loaded == off.partitions_loaded
        assert (sum(s.rows_scanned for s in hot.scans)
                == sum(s.rows_scanned for s in off.scans))
        assert (sum(s.bytes_scanned for s in hot.scans)
                == sum(s.bytes_scanned for s in off.scans))

    def test_hot_run_reads_no_storage_bytes(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        catalog.sql(self.SQL)  # warm
        before = catalog.storage.stats.snapshot()
        catalog.sql(self.SQL)
        delta = catalog.storage.stats.diff(before)
        assert delta.bytes_read == 0
        assert delta.cache_hits > 0

    def test_hot_run_is_simulated_faster(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        cold = catalog.sql(self.SQL).profile.exec_ms
        hot = catalog.sql(self.SQL).profile.exec_ms
        assert hot < cold

    def test_dml_rewrite_invalidates_stale_partitions(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        catalog.sql(self.SQL)  # warm
        catalog.sql("UPDATE events SET score = 1 WHERE ts < 300")
        assert catalog.data_cache.stats().invalidations > 0
        fresh = catalog.sql(
            "SELECT score FROM events WHERE ts < 300")
        assert all(row == (1,) for row in fresh.rows)

    def test_recluster_invalidates_everything_rewritten(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        catalog.sql(self.SQL)  # warm
        catalog.recluster("events", "score")
        result = catalog.sql(
            "SELECT count(*) AS c FROM events WHERE score < 500")
        plain = make_catalog()
        plain.recluster("events", "score")
        assert result.rows == plain.sql(
            "SELECT count(*) AS c FROM events WHERE score < 500").rows

    def test_explain_analyze_shows_cache_line(self):
        catalog = make_catalog()
        catalog.enable_data_cache()
        catalog.sql(self.SQL)
        text = catalog.explain_analyze(self.SQL)
        assert "data cache:" in text

    def test_per_query_cache_override(self):
        catalog = make_catalog()  # no catalog-level cache
        cache = PartitionCache(1 << 24).attach(catalog.metadata)
        catalog.sql(self.SQL, cache=cache)
        hot = catalog.sql(self.SQL, cache=cache)
        assert hot.profile.data_cache_hits > 0
        # Without the override the catalog stays uncached.
        plain = catalog.sql(self.SQL)
        assert plain.profile.data_cache_hits == 0
        assert plain.profile.data_cache_misses == 0

    def test_parallel_scan_uses_cache(self):
        catalog = make_catalog(scan_parallelism=4)
        catalog.enable_data_cache()
        cold = catalog.sql(self.SQL)
        hot = catalog.sql(self.SQL)
        assert cold.rows == hot.rows
        assert hot.profile.data_cache_hits == \
            hot.profile.partitions_loaded

    def test_enable_is_idempotent(self):
        catalog = make_catalog()
        first = catalog.enable_data_cache()
        assert catalog.enable_data_cache() is first


# ----------------------------------------------------------------------
# Differential: cache on/off bit-identical under DML + chaos
# ----------------------------------------------------------------------
QUERIES = [
    "SELECT * FROM events WHERE ts BETWEEN 100 AND 400",
    "SELECT count(*) AS c FROM events WHERE ts < 600",
    "SELECT note FROM events WHERE score >= 900",
    "SELECT score, count(*) AS c FROM events "
    "WHERE ts < 800 GROUP BY score",
    "SELECT * FROM events WHERE ts BETWEEN 30 AND 90 "
    "ORDER BY ts DESC LIMIT 7",
    "SELECT min(ts) AS lo, max(ts) AS hi FROM events",
]

DML = [
    "UPDATE events SET score = 7 WHERE ts BETWEEN 50 AND 150",
    "DELETE FROM events WHERE ts BETWEEN 700 AND 720",
    "UPDATE events SET note = 'x' WHERE score < 100",
]


class TestDifferential:
    def run_script(self, catalog: Catalog) -> list[list]:
        outputs = []
        for step, dml in enumerate(DML + [None]):
            for sql in QUERIES:
                outputs.append(sorted(catalog.sql(sql).rows))
                # Re-run immediately: hot path must agree with itself.
                outputs.append(sorted(catalog.sql(sql).rows))
            if dml is not None:
                catalog.sql(dml)
            if step == 1:
                catalog.recluster("events", "score")
        return outputs

    def test_cache_on_off_bit_identical(self):
        cached = make_catalog(2000, rows_per_partition=100)
        cached.enable_data_cache(budget_bytes=1 << 22)
        plain = make_catalog(2000, rows_per_partition=100)
        assert self.run_script(cached) == self.run_script(plain)
        assert cached.data_cache.stats().hits > 0

    def test_tiny_budget_still_correct(self):
        """Constant eviction pressure must only cost hits, never
        rows."""
        cached = make_catalog(2000, rows_per_partition=100)
        # ~3 partitions' worth: almost everything washes out.
        partition = cached.storage.peek(
            cached.scan_set("events").partition_ids[0])
        cached.enable_data_cache(budget_bytes=partition.nbytes() * 3)
        plain = make_catalog(2000, rows_per_partition=100)
        assert self.run_script(cached) == self.run_script(plain)
        assert cached.data_cache.stats().evictions > 0

    @pytest.mark.parametrize("seed", [11, 23])
    def test_chaos_cache_on_off_bit_identical(self, seed):
        """Transient faults + caching: same rows as the uncached,
        fault-free oracle. Corrupt/unavailable loads must never
        populate the cache."""
        spec = FaultSpec(timeout_rate=0.04, throttle_rate=0.03,
                         corruption_rate=0.04, latency_rate=0.02,
                         latency_ms=1.0)
        cached = make_catalog(2000, rows_per_partition=100)
        cached.enable_data_cache(budget_bytes=1 << 22)
        cached.enable_fault_injection(
            FaultInjector(seed=seed, storage=spec),
            retry_policy=RetryPolicy(max_attempts=8))
        oracle = make_catalog(2000, rows_per_partition=100)
        assert self.run_script(cached) == self.run_script(oracle)

    def test_concurrent_queries_share_cache(self):
        catalog = make_catalog(2000, rows_per_partition=100)
        catalog.enable_data_cache()
        expected = {sql: sorted(catalog.sql(sql).rows)
                    for sql in QUERIES}
        mismatches: list[str] = []
        errors: list[BaseException] = []

        def worker():
            try:
                for _ in range(5):
                    for sql in QUERIES:
                        if sorted(catalog.sql(sql).rows) \
                                != expected[sql]:
                            mismatches.append(sql)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not mismatches
        assert catalog.data_cache.stats().hits > 0


# ----------------------------------------------------------------------
# Per-cluster caches: WarehousePool + QueryService
# ----------------------------------------------------------------------
class TestClusterCaches:
    def test_service_serves_hot_queries_from_cluster_cache(self):
        from repro.service import QueryService

        catalog = make_catalog()
        service = QueryService(catalog, data_cache_bytes=1 << 24,
                               enable_result_cache=False)
        sql = "SELECT ts, score FROM events WHERE ts >= 200"
        cold = service.sql(sql)
        hot = service.sql(sql)
        assert cold.rows == hot.rows
        assert hot.profile.data_cache_hits > 0
        described = service.describe()
        assert described["data_cache"]["hits"] > 0
        assert described["data_cache"]["clusters"]

    def test_scale_in_closes_cache_scale_out_warms(self):
        from repro.service.pool import WarehousePool

        metadata = MetadataStore()
        built: dict[str, PartitionCache] = {}

        def factory(name: str) -> PartitionCache:
            cache = PartitionCache(1 << 24, name=name)
            cache.attach(metadata)
            built[name] = cache
            return cache

        pool = WarehousePool(slots_per_cluster=1,
                             max_queue_per_cluster=8,
                             min_clusters=1, max_clusters=2,
                             scale_out_queue_depth=0,
                             scale_in_idle_checks=1,
                             cache_factory=factory)
        partition = make_partition()
        donor = pool.clusters[0]
        donor.cache.put(partition)
        donor.cache.get(partition.partition_id)  # hottest entry
        first, _ = pool.acquire()
        second, _ = pool.acquire()  # saturated: scales out + warms
        assert pool.n_clusters == 2
        fresh = pool.clusters[1].cache
        assert partition.partition_id in fresh
        pool.release(first)
        pool.release(second)  # idle observation: scale back in
        assert pool.n_clusters == 1
        assert len(built["cluster-1"]) == 0  # closed on retirement
        # The surviving cluster still hears metadata events; the
        # retired one is detached and stays empty.
        metadata.register("t", partition.partition_id,
                          partition.zone_map)
        donor.cache.put(partition)
        metadata.unregister("t", partition.partition_id)
        assert partition.partition_id not in donor.cache
        assert len(built["cluster-1"]) == 0


# ----------------------------------------------------------------------
# put() id-collision guard (satellite bugfix)
# ----------------------------------------------------------------------
class TestPutCollision:
    def test_foreign_partition_with_live_id_rejected(self):
        storage = StorageLayer()
        original = make_partition(0)
        storage.put(original)
        impostor = make_partition(500)
        impostor.partition_id = original.partition_id
        with pytest.raises(StorageError):
            storage.put(impostor)
        # The original bytes are untouched.
        assert storage.peek(original.partition_id) is original

    def test_reput_of_same_object_is_idempotent(self):
        storage = StorageLayer()
        partition = make_partition(0)
        storage.put(partition)
        assert storage.put(partition) == partition.partition_id

    def test_id_free_after_delete(self):
        storage = StorageLayer()
        original = make_partition(0)
        storage.put(original)
        storage.delete(original.partition_id)
        replacement = make_partition(500)
        replacement.partition_id = original.partition_id
        assert storage.put(replacement) == original.partition_id
