"""Tests for query tracing and fleet telemetry (repro.obs).

Covers the span tree (generator safety, EXPLAIN ANALYZE rendering,
the tracing-disabled fast path), per-query telemetry records, the
bounded sink, service wiring (annotation, cache hits, failures), and
the fleet aggregation/report layer over a synthetic workload.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Catalog, DataType, Layout, Schema
from repro.faults.retry import RetryStats
from repro.obs import (
    Span,
    Tracer,
    TelemetryRecord,
    TelemetrySink,
    fleet_json,
    fleet_summary,
    latency_percentiles,
    render_fleet_report,
    render_span_tree,
    technique_ratio_cdfs,
)
from repro.service import QueryService
from repro.workload import Platform, PlatformConfig, WorkloadGenerator

from conftest import make_events_rows

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)


def make_catalog(n_rows: int = 1000, **kwargs) -> Catalog:
    catalog = Catalog(rows_per_partition=100, **kwargs)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    return catalog


# ----------------------------------------------------------------------
# Span / Tracer units
# ----------------------------------------------------------------------
class TestSpan:
    def test_end_is_idempotent(self):
        span = Span("s")
        span.end()
        first = span.end_s
        span.end()
        assert span.end_s == first

    def test_duration_zero_while_open(self):
        span = Span("s")
        assert not span.finished
        assert span.duration_ms == 0.0

    def test_annotate_merges_and_chains(self):
        span = Span("s", {"a": 1})
        assert span.annotate(b=2) is span
        assert span.attrs == {"a": 1, "b": 2}

    def test_find_and_iter(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", key="v"):
                pass
        root = tracer.finish()
        assert root.find("inner").attrs == {"key": "v"}
        assert [s.name for s in root.iter_spans()] == \
            ["query", "outer", "inner"]

    def test_to_dict_nested(self):
        tracer = Tracer()
        with tracer.span("child"):
            pass
        payload = tracer.finish().to_dict()
        assert payload["name"] == "query"
        assert payload["children"][0]["name"] == "child"
        json.dumps(payload)  # JSON-friendly


class TestTracer:
    def test_nesting_follows_stack(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        root = tracer.finish()
        a = root.children[0]
        assert [c.name for c in a.children] == ["b", "c"]

    def test_start_span_does_not_touch_stack(self):
        tracer = Tracer()
        with tracer.span("exec") as exec_span:
            scan = tracer.start_span("scan", parent=exec_span)
            with tracer.span("sibling"):
                pass
            scan.end()
        root = tracer.finish()
        exec_ = root.children[0]
        assert [c.name for c in exec_.children] == ["scan", "sibling"]

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        event = tracer.event("retry", error="Timeout")
        assert event.finished
        assert event.duration_ms == 0.0

    def test_finish_repairs_abandoned_span(self):
        # A LIMIT can abandon a scan generator mid-flight: its span
        # never sees end(). finish() must clamp it, not crash.
        tracer = Tracer()
        abandoned = tracer.start_span("scan")
        root = tracer.finish()
        assert abandoned.finished
        assert abandoned.end_s == root.end_s

    def test_disturbed_stack_tolerated(self):
        # Exiting an outer contextmanager while an inner stack span is
        # still open (abandoned generator) must not corrupt the stack.
        tracer = Tracer()
        outer_cm = tracer.span("outer")
        outer = outer_cm.__enter__()
        inner_cm = tracer.span("inner")
        inner_cm.__enter__()
        outer_cm.__exit__(None, None, None)  # inner never exited
        root = tracer.finish()
        assert tracer.current is root
        assert outer.finished
        assert root.find("inner").finished


class TestRenderSpanTree:
    def test_renders_durations_and_attrs(self):
        tracer = Tracer()
        with tracer.span("compile", table="t"):
            pass
        tracer.event("retry", error="Timeout")
        text = render_span_tree(tracer.finish())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "ms" in lines[0]
        assert "[table=t]" in text
        assert "·" in text            # events render a dot, not 0.00
        assert "[error=Timeout]" in text


# ----------------------------------------------------------------------
# Catalog integration
# ----------------------------------------------------------------------
class TestCatalogTracing:
    def test_select_trace_tree_shape(self):
        catalog = make_catalog()
        result = catalog.sql(
            "SELECT * FROM events WHERE ts BETWEEN 100 AND 150")
        trace = result.profile.trace
        assert trace is not None
        names = [s.name for s in trace.iter_spans()]
        for expected in ("parse", "plan", "compile", "prune:filter",
                         "execute", "scan:events"):
            assert expected in names
        assert all(s.finished for s in trace.iter_spans())

    def test_filter_prune_span_attrs(self):
        catalog = make_catalog()
        result = catalog.sql("SELECT * FROM events WHERE ts < 100")
        prune = result.profile.trace.find("prune:filter")
        assert prune.attrs["table"] == "events"
        assert prune.attrs["after"] <= prune.attrs["before"]

    def test_scan_span_survives_limit_abandonment(self):
        catalog = make_catalog()
        result = catalog.sql("SELECT * FROM events LIMIT 3")
        trace = result.profile.trace
        scan = trace.find("scan:events")
        assert scan is not None
        assert scan.finished

    def test_topk_event_recorded(self):
        catalog = make_catalog()
        result = catalog.sql(
            "SELECT * FROM events ORDER BY score DESC LIMIT 5")
        assert result.profile.trace.find("prune:topk") is not None

    def test_dml_trace(self):
        catalog = make_catalog()
        result = catalog.sql("DELETE FROM events WHERE ts < 50")
        trace = result.profile.trace
        assert trace.find("parse") is not None
        assert trace.find("dml") is not None

    def test_tracing_disabled(self):
        catalog = make_catalog(enable_tracing=False)
        result = catalog.sql("SELECT * FROM events WHERE ts < 100")
        assert result.profile.trace is None

    def test_explain_analyze_appends_span_tree(self):
        catalog = make_catalog()
        report = catalog.explain_analyze(
            "SELECT * FROM events WHERE ts < 100")
        assert "-- trace:" in report
        assert "scan:events" in report

    def test_predicate_cache_hit_event(self):
        catalog = make_catalog()
        catalog.enable_predicate_cache()
        sql = "SELECT * FROM events WHERE ts BETWEEN 10 AND 40"
        catalog.sql(sql)
        result = catalog.sql(sql)  # cache hit
        hit = result.profile.trace.find("predicate_cache:hit")
        assert hit is not None
        assert hit.attrs["kind"] == "filter"


# ----------------------------------------------------------------------
# Telemetry records and sink
# ----------------------------------------------------------------------
class TestTelemetryRecord:
    def test_from_result_fields(self):
        catalog = make_catalog()
        catalog.enable_telemetry()
        sql = "SELECT * FROM events WHERE ts BETWEEN 100 AND 199"
        result = catalog.sql(sql)
        record = catalog.telemetry.get(result.profile.query_id)
        assert record is not None
        assert record.sql == sql
        assert record.kind == "select"
        assert record.tables == ("events",)
        assert record.status == "ok"
        assert record.partitions_total == 10
        assert record.partitions_pruned > 0
        assert record.partitions_loaded + record.partitions_pruned \
            <= record.partitions_total
        assert "filter" in record.pruned_by_technique
        assert "filter" in record.eligible_techniques
        assert 0.0 <= record.pruning_ratio <= 1.0
        assert record.rows_returned == result.num_rows
        assert record.bytes_scanned > 0
        assert record.wall_ms > 0
        assert record.simulated_ms > 0

    def test_technique_ratio(self):
        record = TelemetryRecord(
            partitions_total=10,
            pruned_by_technique={"filter": 4})
        assert record.technique_ratio("filter") == 0.4
        assert record.technique_ratio("topk") == 0.0
        assert TelemetryRecord().technique_ratio("filter") == 0.0

    def test_to_dict_round_trips_json(self):
        catalog = make_catalog()
        catalog.enable_telemetry()
        catalog.sql("SELECT count(*) AS c FROM events")
        record = catalog.telemetry.records()[-1]
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["status"] == "ok"

    def test_dml_recorded(self):
        catalog = make_catalog()
        catalog.enable_telemetry()
        catalog.sql("DELETE FROM events WHERE ts < 10")
        record = catalog.telemetry.records()[-1]
        assert record.kind == "dml"


class TestTelemetrySink:
    def _record(self, i):
        return TelemetryRecord(query_id=f"q{i}", simulated_ms=float(i))

    def test_ring_eviction(self):
        sink = TelemetrySink(capacity=3)
        for i in range(5):
            sink.record(self._record(i))
        assert len(sink) == 3
        assert sink.dropped == 2
        assert sink.total_recorded == 5
        assert sink.get("q0") is None      # evicted from the index too
        assert sink.get("q4") is not None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TelemetrySink(capacity=0)

    def test_annotate(self):
        sink = TelemetrySink()
        sink.record(self._record(1))
        assert sink.annotate("q1", cluster="xl", queue_wait_ms=3.5)
        record = sink.get("q1")
        assert record.cluster == "xl"
        assert record.queue_wait_ms == 3.5
        assert not sink.annotate("missing", cluster="xl")
        with pytest.raises(AttributeError):
            sink.annotate("q1", no_such_field=1)

    def test_slow_queries_sorted(self):
        sink = TelemetrySink(slow_query_ms=5.0)
        for i in range(10):
            sink.record(self._record(i))
        slow = sink.slow_queries(n=3)
        assert [r.simulated_ms for r in slow] == [9.0, 8.0, 7.0]

    def test_summary_and_export(self, tmp_path):
        sink = TelemetrySink()
        sink.record(TelemetryRecord(
            query_id="a", partitions_total=10, partitions_pruned=9))
        sink.record(TelemetryRecord(query_id="b", status="error"))
        summary = sink.summary()
        assert summary["recorded"] == 2
        assert summary["errors"] == 1
        assert summary["fleet_pruning_ratio"] == 0.9
        path = tmp_path / "telemetry.json"
        text = sink.export_json(path)
        payload = json.loads(path.read_text())
        assert payload == json.loads(text)
        assert len(payload["records"]) == 2

    def test_summary_matches_brute_force_recomputation(self):
        """The running counters (O(1) summary) must always agree with
        a from-scratch walk over the retained ring — across eviction,
        in-place annotation, and maintenance (recluster) records."""
        import random as _random

        def brute_force(sink: TelemetrySink) -> dict:
            records = sink.records()
            pruned = sum(r.partitions_pruned for r in records)
            population = sum(r.partitions_total for r in records)
            maintenance = [r for r in records
                           if r.kind == "recluster"]
            return {
                "recorded": sink.total_recorded,
                "retained": len(records),
                "dropped": sink.dropped,
                "errors": sum(1 for r in records
                              if r.status == "error"),
                "result_cache_hits": sum(
                    1 for r in records if r.result_cache_hit),
                "predicate_cache_hits": sum(
                    1 for r in records if r.predicate_cache_hit),
                "plan_cache_hits": sum(
                    1 for r in records if r.plan_cache_hit),
                "data_cache_hits": sum(r.data_cache_hits
                                       for r in records),
                "data_cache_misses": sum(r.data_cache_misses
                                         for r in records),
                "data_cache_bytes_saved": sum(
                    r.data_cache_bytes_saved for r in records),
                "wal_appends": sum(r.wal_appends for r in records),
                "wal_bytes": sum(r.wal_bytes for r in records),
                "degraded_queries": sum(
                    1 for r in records if r.degraded),
                "retried_queries": sum(
                    1 for r in records if r.retries),
                "partitions_total": population,
                "partitions_pruned": pruned,
                "bytes_scanned": sum(r.bytes_scanned
                                     for r in records),
                "rows_returned": sum(r.rows_returned
                                     for r in records),
                "recluster_slices": len(maintenance),
                "recluster_partitions_rewritten": sum(
                    r.partitions_rewritten for r in maintenance),
                "recluster_bytes_rewritten": sum(
                    r.bytes_rewritten for r in maintenance),
                "fleet_pruning_ratio": round(pruned / population, 6)
                if population else 0.0,
            }

        rng = _random.Random(42)
        sink = TelemetrySink(capacity=16)  # small: force eviction
        for i in range(60):
            kind = rng.choice(["select", "select", "dml",
                               "recluster"])
            sink.record(TelemetryRecord(
                query_id=f"q{i}", kind=kind,
                status=rng.choice(["ok", "ok", "ok", "error"]),
                result_cache_hit=rng.random() < 0.2,
                predicate_cache_hit=rng.random() < 0.3,
                plan_cache_hit=rng.random() < 0.3,
                degraded=rng.random() < 0.1,
                retries=rng.randrange(3),
                partitions_total=rng.randrange(50),
                partitions_pruned=rng.randrange(20),
                data_cache_hits=rng.randrange(10),
                data_cache_misses=rng.randrange(10),
                data_cache_bytes_saved=rng.randrange(9999),
                wal_appends=rng.randrange(4),
                wal_bytes=rng.randrange(2048),
                bytes_scanned=rng.randrange(99999),
                rows_returned=rng.randrange(500),
                partitions_rewritten=rng.randrange(8),
                bytes_rewritten=rng.randrange(4096)))
            if rng.random() < 0.4:
                # In-place mutation of a retained record: the sink
                # must retract and re-add its contribution.
                victim = rng.choice(sink.records())
                sink.annotate(victim.query_id,
                              wal_appends=rng.randrange(4),
                              retries=rng.randrange(3),
                              rows_returned=rng.randrange(500))
            assert sink.summary() == brute_force(sink)
        sink.clear()
        summary = sink.summary()
        assert summary == brute_force(sink)
        assert summary["retained"] == 0
        assert summary["partitions_total"] == 0

    def test_concurrent_record(self):
        sink = TelemetrySink(capacity=64)
        barrier = threading.Barrier(8)

        def worker(w):
            barrier.wait()
            for i in range(50):
                sink.record(TelemetryRecord(query_id=f"w{w}-{i}"))

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sink.total_recorded == 400
        assert len(sink) == 64
        assert sink.dropped == 400 - 64


# ----------------------------------------------------------------------
# Service wiring
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def test_service_annotates_catalog_record(self):
        service = QueryService(make_catalog())
        result = service.sql("SELECT * FROM events WHERE ts < 100")
        record = service.telemetry.get(result.profile.query_id)
        assert record is not None
        assert record.cluster != ""
        assert record.wall_ms > 0
        # One record per query, not two.
        assert sum(1 for r in service.telemetry.records()
                   if r.query_id == result.profile.query_id) == 1

    def test_result_cache_hit_recorded(self):
        service = QueryService(make_catalog())
        sql = "SELECT * FROM events WHERE ts < 100"
        service.sql(sql)
        service.sql(sql)  # result-cache hit, never reaches the catalog
        hits = [r for r in service.telemetry.records()
                if r.status == "cache_hit"]
        assert len(hits) == 1
        assert hits[0].result_cache_hit

    def test_failure_recorded(self):
        service = QueryService(make_catalog())
        with pytest.raises(Exception):
            service.sql("SELECT * FROM no_such_table")
        errors = [r for r in service.telemetry.records()
                  if r.status == "error"]
        assert len(errors) == 1
        assert errors[0].error != ""

    def test_describe_includes_telemetry(self):
        service = QueryService(make_catalog())
        service.sql("SELECT count(*) AS c FROM events")
        snap = service.describe()
        assert snap["telemetry"]["recorded"] >= 1

    def test_bytes_scanned_metric(self):
        service = QueryService(make_catalog())
        service.sql("SELECT * FROM events WHERE ts < 100")
        assert service.metrics.counter("bytes_scanned").value > 0


# ----------------------------------------------------------------------
# Fleet aggregation and report
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_records():
    platform = Platform(PlatformConfig(
        seed=11, rows_per_partition=50, n_small_tables=2,
        n_medium_tables=2, n_large_tables=1, n_dim_tables=1,
        dim_rows=64))
    platform.catalog.enable_telemetry()
    generator = WorkloadGenerator(platform, seed=12)
    for query in generator.generate(80):
        platform.catalog.sql(query.sql)
    return platform.catalog.telemetry.records()


class TestFleetAggregation:
    def test_technique_cdfs(self, fleet_records):
        cdfs = technique_ratio_cdfs(fleet_records)
        assert set(cdfs) == {"filter", "sketch", "join", "limit",
                             "topk"}
        filter_cdf = cdfs["filter"]
        assert filter_cdf, "no filter-eligible queries in workload"
        thresholds = [t for t, _ in filter_cdf]
        fractions = [f for _, f in filter_cdf]
        assert thresholds[0] == 0.0 and thresholds[-1] == 1.0
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert fractions == sorted(fractions)  # CDF is monotone
        assert fractions[-1] == 1.0

    def test_cdfs_skip_ineligible(self):
        records = [TelemetryRecord(
            partitions_total=10, partitions_pruned=5,
            pruned_by_technique={"filter": 5},
            eligible_techniques=("filter",))]
        cdfs = technique_ratio_cdfs(records)
        assert cdfs["filter"]
        assert cdfs["topk"] == []

    def test_latency_percentiles(self, fleet_records):
        percentiles = latency_percentiles(fleet_records)
        assert "simulated_ms" in percentiles
        values = percentiles["simulated_ms"]
        assert values["p50"] <= values["p99"] <= values["p100"]

    def test_fleet_summary(self, fleet_records):
        summary = fleet_summary(fleet_records)
        assert summary["queries"] == len(fleet_records)
        assert summary["executed"] >= 1
        assert 0.0 <= summary["fleet_pruning_ratio"] <= 1.0
        assert summary["partitions_pruned"] <= \
            summary["partitions_total"]

    def test_fleet_json_serializable(self, fleet_records):
        json.dumps(fleet_json(fleet_records))

    def test_render_fleet_report(self, fleet_records):
        text = render_fleet_report(fleet_records,
                                   title="test fleet")
        assert "test fleet" in text
        assert "CDF" in text
        assert "filter" in text
        assert "simulated_ms" in text

    def test_render_empty(self):
        text = render_fleet_report([], title="empty")
        assert "empty" in text


# ----------------------------------------------------------------------
# Retry trace hook
# ----------------------------------------------------------------------
class TestRetryTraceHook:
    def test_hook_fires_on_retry(self):
        stats = RetryStats()
        seen = []
        stats.trace_hook = lambda error, delay: seen.append(
            (error, delay))
        stats.record_retry(TimeoutError("x"), delay_ms=2.5)
        assert seen == [("TimeoutError", 2.5)]
        assert stats.retries == 1

    def test_absorb_does_not_copy_hook(self):
        parent = RetryStats()
        parent.trace_hook = lambda error, delay: None
        local = RetryStats()
        local.record_retry(TimeoutError("x"), delay_ms=1.0)
        parent.absorb(local)
        assert local.trace_hook is None
        assert parent.retries == 1
