"""Telemetry-driven background reclustering: advisor, engine, service.

Covers the full layout loop (mine telemetry -> score keys -> budgeted
incremental rewrite -> converge), the recluster/telemetry bugfixes
that ride along (empty-table recluster no-op, degenerate clustering
depth), and the durability story: budget-sliced recluster interleaved
with DML chaos stays row-identical to a fault-free oracle, and a crash
mid-slice recovers to exactly the pre- or post-slice state.
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_events_rows
from repro import (
    Catalog,
    DataType,
    Layout,
    QueryService,
    Schema,
)
from repro.errors import SchemaError
from repro.faults import CrashInjector, SimulatedCrash
from repro.obs.fleet import fleet_summary, render_fleet_report
from repro.obs.telemetry import TelemetryRecord
from repro.recluster import (
    IncrementalReclusterer,
    ReclusterJob,
    ReclusterService,
    WorkloadAdvisor,
    best_advice,
)
from repro.storage.builder import build_table
from repro.storage.clustering import clustering_information
from repro.storage.micropartition import MicroPartition
from test_durability import DML_POINTS, fingerprint

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)


def sorted_rows(catalog: Catalog, table: str = "events"):
    return sorted(catalog.tables[table].to_rows(), key=repr)


def make_random_catalog(n: int = 1500, seed: int = 3,
                        rows_per_partition: int = 50) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n, seed=seed),
        layout=Layout.random(seed=seed))
    return catalog


def drain(engine: IncrementalReclusterer, job: ReclusterJob,
          limit: int = 400):
    """Run slices until the job finishes; returns all reports."""
    reports = []
    for _ in range(limit):
        report = engine.run_slice(job)
        reports.append(report)
        if report.done:
            return reports
    raise AssertionError("job did not terminate")


def heat_record(i: int, table: str = "events", column: str = "score",
                total: int = 10, pruned: int = 0,
                **overrides) -> TelemetryRecord:
    """A synthetic executed-query record filtering on one column."""
    fields = dict(
        query_id=f"h{i}", kind="select", status="ok",
        tables=(table,),
        partitions_total=total, partitions_pruned=pruned,
        filter_columns={table: (column,)},
        filter_pruning_by_table={table: (total, pruned)},
    )
    fields.update(overrides)
    return TelemetryRecord(**fields)


# ----------------------------------------------------------------------
# Satellite: empty-table recluster must be a true no-op
# ----------------------------------------------------------------------
class TestEmptyRecluster:
    def test_noop_leaves_version_caches_and_wal_alone(self, tmp_path):
        catalog = Catalog()
        catalog.enable_durability(tmp_path / "d")
        catalog.create_table_from_rows("empty", SCHEMA, [])
        events = []
        catalog.add_change_listener(
            lambda table, version: events.append((table, version)))
        version = catalog.table_versions(["empty"])["empty"]
        appends = catalog.durability.stats()["wal_appends"]

        assert catalog.recluster("empty", "score") == 0

        assert catalog.table_versions(["empty"])["empty"] == version
        assert events == []  # no listener fired, so no cache flushes
        assert catalog.durability.stats()["wal_appends"] == appends

    def test_result_cache_survives_empty_recluster(self):
        catalog = Catalog()
        catalog.create_table_from_rows("empty", SCHEMA, [])
        service = QueryService(catalog)
        sql = "SELECT count(*) AS c FROM empty"
        service.sql(sql)
        catalog.recluster("empty", "ts")
        service.sql(sql)
        assert service.metrics.counter("result_cache_hits").value == 1

    def test_nonempty_recluster_still_bumps_version(self):
        catalog = make_random_catalog(n=300)
        before = catalog.table_versions(["events"])["events"]
        catalog.recluster("events", "score")
        assert catalog.table_versions(["events"])["events"] > before


# ----------------------------------------------------------------------
# Satellite: degenerate zone maps score as already clustered
# ----------------------------------------------------------------------
class TestDegenerateClustering:
    def _partitions(self, value_lists):
        schema = Schema.of(k=DataType.INTEGER)
        return [MicroPartition.from_rows(schema, [(v,) for v in vals])
                for vals in value_lists]

    def test_all_null_column_scores_depth_one(self):
        parts = self._partitions([[None, None], [None], [None, None]])
        info = clustering_information(parts, "k")
        assert info.average_depth == 1.0
        assert info.max_depth == 1
        assert info.partition_count == 3
        assert info.depth_histogram == {1: 3}

    def test_single_partition_scores_depth_one(self):
        info = clustering_information(
            self._partitions([[5, 1, 9]]), "k")
        assert info.average_depth == 1.0
        assert info.max_depth == 1

    def test_empty_table_scores_zero(self):
        info = clustering_information([], "k")
        assert info.average_depth == 0.0
        assert info.partition_count == 0

    @settings(max_examples=60, deadline=None)
    @given(value_lists=st.lists(
        st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                 min_size=1, max_size=5),
        min_size=1, max_size=8))
    def test_depth_never_below_one_nor_crashes(self, value_lists):
        parts = self._partitions(value_lists)
        info = clustering_information(parts, "k")
        assert info.average_depth >= 1.0
        assert 1 <= info.max_depth <= len(parts)
        if all(all(v is None for v in vals) for vals in value_lists):
            assert info.average_depth == 1.0

    def test_advisor_never_recommends_degenerate_layouts(self):
        catalog = Catalog(rows_per_partition=10)
        catalog.create_table_from_rows(
            "nulls", SCHEMA,
            [(i, "a", 1.0, None) for i in range(50)])
        catalog.create_table_from_rows(
            "tiny", SCHEMA, make_events_rows(8))
        records = (
            [heat_record(i, table="nulls") for i in range(20)]
            + [heat_record(100 + i, table="tiny") for i in range(20)])
        assert WorkloadAdvisor().advise(records, catalog) == []

    def test_engine_converges_immediately_on_all_null_key(self):
        catalog = Catalog(rows_per_partition=10)
        catalog.create_table_from_rows(
            "nulls", SCHEMA, [(i, "a", 1.0, None) for i in range(50)])
        job = ReclusterJob(table="nulls", keys=("score",),
                           budget_bytes=1 << 20)
        report = IncrementalReclusterer(catalog).run_slice(job)
        assert report.done
        assert report.partitions_selected == 0
        assert report.reason == "converged"


# ----------------------------------------------------------------------
# Tentpole: telemetry wiring (the advisor's input signal)
# ----------------------------------------------------------------------
class TestFilterColumnTelemetry:
    def test_select_records_filter_columns_and_ratio(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        result = catalog.sql(
            "SELECT * FROM events WHERE score BETWEEN 0 AND 9999")
        record = catalog.telemetry.get(result.profile.query_id)
        assert record.filter_columns == {"events": ("score",)}
        total, pruned = record.filter_pruning_by_table["events"]
        assert total == catalog.tables["events"].num_partitions
        assert pruned >= 0

    def test_multi_column_predicate_lists_all_columns(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        result = catalog.sql(
            "SELECT * FROM events WHERE ts < 100 AND score < 1000")
        record = catalog.telemetry.get(result.profile.query_id)
        assert record.filter_columns == {"events": ("score", "ts")}

    def test_dml_records_filter_columns(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        catalog.sql("DELETE FROM events WHERE score < 1000")
        record = catalog.telemetry.records()[-1]
        assert record.kind == "dml"
        assert record.filter_columns == {"events": ("score",)}
        assert "events" in record.filter_pruning_by_table

    def test_unfiltered_query_has_no_filter_columns(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        result = catalog.sql("SELECT count(*) AS c FROM events")
        record = catalog.telemetry.get(result.profile.query_id)
        assert record.filter_columns == {}
        assert record.filter_pruning_by_table == {}

    def test_to_dict_carries_the_new_fields(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        result = catalog.sql("SELECT * FROM events WHERE ts < 50")
        payload = catalog.telemetry.get(
            result.profile.query_id).to_dict()
        assert payload["filter_columns"] == {"events": ["ts"]}
        assert "filter_pruning_by_table" in payload


# ----------------------------------------------------------------------
# Tentpole: workload advisor
# ----------------------------------------------------------------------
class TestWorkloadAdvisor:
    def test_recommends_hot_poorly_pruning_column(self):
        catalog = make_random_catalog()
        records = [heat_record(i) for i in range(10)]
        advice = best_advice(records, catalog)
        assert advice is not None
        assert (advice.table, advice.column) == ("events", "score")
        assert advice.queries == 10
        assert advice.pruning_ratio == 0.0
        assert advice.clustering_depth > 1.5
        assert advice.score > 0

    def test_cold_column_not_recommended(self):
        catalog = make_random_catalog()
        records = [heat_record(i) for i in range(5)]
        assert WorkloadAdvisor(min_queries=8).advise(
            records, catalog) == []

    def test_well_pruning_column_not_recommended(self):
        catalog = make_random_catalog()
        records = [heat_record(i, pruned=9) for i in range(10)]
        assert WorkloadAdvisor().advise(records, catalog) == []

    def test_well_clustered_table_not_recommended(self):
        catalog = Catalog(rows_per_partition=50)
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(1500),
            layout=Layout.sorted_by("score"))
        records = [heat_record(i) for i in range(10)]
        assert WorkloadAdvisor().advise(records, catalog) == []

    def test_ignores_failures_cache_hits_and_maintenance(self):
        catalog = make_random_catalog()
        records = (
            [heat_record(i, status="error") for i in range(10)]
            + [heat_record(20 + i, result_cache_hit=True)
               for i in range(10)]
            + [heat_record(40 + i, kind="recluster")
               for i in range(10)])
        assert WorkloadAdvisor().advise(records, catalog) == []

    def test_dropped_table_not_recommended(self):
        catalog = make_random_catalog()
        records = [heat_record(i, table="ghost") for i in range(10)]
        assert WorkloadAdvisor().advise(records, catalog) == []

    def test_ranks_hotter_worse_column_first(self):
        catalog = make_random_catalog()
        records = (
            [heat_record(i, column="score") for i in range(20)]
            + [heat_record(100 + i, column="ts", pruned=4)
               for i in range(10)])
        ranked = WorkloadAdvisor().advise(records, catalog)
        assert [a.column for a in ranked] == ["score", "ts"]
        assert ranked[0].score > ranked[1].score

    def test_advises_from_real_catalog_telemetry(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()
        rng = random.Random(5)
        for _ in range(12):
            lo = rng.randrange(900_000)
            catalog.sql(f"SELECT * FROM events WHERE score BETWEEN "
                        f"{lo} AND {lo + 20_000}")
        advice = best_advice(catalog.telemetry.records(), catalog)
        assert advice is not None
        assert (advice.table, advice.column) == ("events", "score")


# ----------------------------------------------------------------------
# Tentpole: incremental budgeted engine
# ----------------------------------------------------------------------
class TestIncrementalEngine:
    def test_slices_respect_budget_and_preserve_rows(self):
        catalog = make_random_catalog()
        before_rows = sorted_rows(catalog)
        budget = 48 * 1024
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=budget)
        reports = drain(IncrementalReclusterer(catalog), job)
        assert all(r.bytes_rewritten <= budget for r in reports)
        assert job.slices > 1  # genuinely incremental, not one rewrite
        assert sorted_rows(catalog) == before_rows

    def test_depth_converges(self):
        catalog = make_random_catalog()
        initial = clustering_information(
            catalog.tables["events"].partitions,
            "score").average_depth
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=64 * 1024)
        drain(IncrementalReclusterer(catalog), job)
        final = clustering_information(
            catalog.tables["events"].partitions,
            "score").average_depth
        assert initial > 10
        assert final < initial / 3

    def test_done_job_is_inert(self):
        catalog = make_random_catalog(n=400)
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=1 << 20)
        engine = IncrementalReclusterer(catalog)
        drain(engine, job)
        version = catalog.table_versions(["events"])["events"]
        report = engine.run_slice(job)
        assert report.done and report.partitions_selected == 0
        assert catalog.table_versions(["events"])["events"] == version

    def test_budget_too_small_to_merge_finishes(self):
        catalog = make_random_catalog(n=400)
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=1)  # cannot fit two partitions
        report = IncrementalReclusterer(catalog).run_slice(job)
        assert report.done
        assert "budget" in report.reason

    def test_unknown_key_raises(self):
        catalog = make_random_catalog(n=200)
        job = ReclusterJob(table="events", keys=("nope",),
                           budget_bytes=1 << 20)
        with pytest.raises(SchemaError):
            IncrementalReclusterer(catalog).run_slice(job)

    def test_job_validation(self):
        with pytest.raises(SchemaError):
            ReclusterJob(table="t", keys=(), budget_bytes=1)
        with pytest.raises(SchemaError):
            ReclusterJob(table="t", keys=("k",), budget_bytes=0)

    def test_slices_are_wal_logged_and_recoverable(self, tmp_path):
        catalog = Catalog(rows_per_partition=50)
        catalog.enable_durability(tmp_path / "d")
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(600, seed=9),
            layout=Layout.random(seed=9))
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=32 * 1024)
        engine = IncrementalReclusterer(catalog)
        engine.run_slice(job)
        engine.run_slice(job)
        recovered = Catalog.recover(tmp_path / "d")
        assert fingerprint(recovered) == fingerprint(catalog)

    def test_improves_filter_pruning_ratio(self):
        catalog = make_random_catalog()
        catalog.enable_telemetry()

        def ratio():
            result = catalog.sql(
                "SELECT * FROM events WHERE score BETWEEN "
                "100000 AND 140000")
            scan = result.profile.scans[0]
            return scan.partitions_pruned / scan.total_partitions

        before = ratio()
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=64 * 1024)
        drain(IncrementalReclusterer(catalog), job)
        assert ratio() >= before + 0.2


# ----------------------------------------------------------------------
# Satellite: DML chaos differential + crash injection mid-slice
# ----------------------------------------------------------------------
def _apply_dml(op: str, catalog: Catalog, rng: random.Random,
               batch_seed: int) -> None:
    if op == "insert":
        catalog.insert("events",
                       make_events_rows(30, seed=batch_seed))
    elif op == "delete":
        cutoff = rng.randrange(100_000, 900_000)
        catalog.sql(f"DELETE FROM events WHERE score >= {cutoff}")
    elif op == "update":
        cutoff = rng.randrange(50, 400)
        catalog.sql(f"UPDATE events SET value = 2.5 "
                    f"WHERE ts < {cutoff}")


class TestChaosDifferential:
    DIFFERENTIAL = (
        "SELECT * FROM events ORDER BY ts, score",
        "SELECT count(*) AS c FROM events WHERE score < 500000",
        "SELECT category, value FROM events WHERE score >= 250000 "
        "ORDER BY ts, score LIMIT 9",
    )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000),
           ops=st.lists(st.sampled_from(
               ["insert", "delete", "update", "slice"]),
               min_size=3, max_size=10))
    def test_sliced_recluster_with_dml_matches_oracle(self, seed,
                                                      ops):
        subject = Catalog(rows_per_partition=40)
        subject.create_table_from_rows(
            "events", SCHEMA, make_events_rows(500, seed=seed),
            layout=Layout.random(seed=seed))
        oracle = Catalog(rows_per_partition=40)
        oracle.create_table_from_rows(
            "events", SCHEMA, make_events_rows(500, seed=seed))
        rng = random.Random(seed)
        oracle_rng = random.Random(seed)
        engine = IncrementalReclusterer(subject)
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=6 * 1024)
        for index, op in enumerate(ops):
            if op == "slice":
                engine.run_slice(job)
            else:
                _apply_dml(op, subject, rng, seed + index)
                _apply_dml(op, oracle, oracle_rng, seed + index)
        assert sorted_rows(subject) == sorted_rows(oracle)
        for sql in self.DIFFERENTIAL:
            assert subject.sql(sql).rows == oracle.sql(sql).rows, sql

    def _replay(self, root, crash_point=None):
        """Deterministic history: DML, two slices, then slice 3
        (optionally crashed). Returns (catalog, injector, pre)."""
        injector = CrashInjector() if crash_point else None
        catalog = Catalog(rows_per_partition=40)
        catalog.enable_durability(root, crash_injector=injector)
        catalog.create_table_from_rows(
            "events", SCHEMA, make_events_rows(500, seed=17),
            layout=Layout.random(seed=17))
        catalog.sql("DELETE FROM events WHERE score >= 800000")
        catalog.insert("events", make_events_rows(40, seed=18))
        engine = IncrementalReclusterer(catalog)
        job = ReclusterJob(table="events", keys=("score",),
                           budget_bytes=4 * 1024)
        engine.run_slice(job)
        engine.run_slice(job)
        pre = fingerprint(catalog)
        if crash_point is None:
            engine.run_slice(job)
            return catalog, injector, pre
        injector.arm(crash_point, at=1)
        with pytest.raises(SimulatedCrash):
            engine.run_slice(job)
        return catalog, injector, pre

    @pytest.mark.parametrize("point", sorted(DML_POINTS))
    def test_crash_mid_slice_recovers_pre_or_post(self, tmp_path,
                                                  point):
        # The fault-free duplicate supplies the post-slice state; the
        # whole history is deterministic, so fingerprints line up.
        _, _, dup_pre = self._replay(tmp_path / "dup")
        duplicate = Catalog.recover(tmp_path / "dup")
        post = fingerprint(duplicate)

        _, injector, pre = self._replay(tmp_path / "crash",
                                        crash_point=point)
        assert injector.fired == [point]
        assert pre == dup_pre  # histories agree up to the crash
        assert pre != post  # the crashed slice was not a no-op

        recovered = Catalog.recover(tmp_path / "crash")
        expected = post if DML_POINTS[point] == "post" else pre
        assert fingerprint(recovered) == expected
        # Rows are identical either way: recluster moves rows between
        # partitions, never changes them.
        assert sorted_rows(recovered) == sorted_rows(duplicate)


# ----------------------------------------------------------------------
# Tentpole: the background service loop
# ----------------------------------------------------------------------
def drifting_service(n: int = 3000,
                     rows_per_partition: int = 100) -> QueryService:
    """A service whose table is sorted by ts while the workload
    filters on score — the drift the advisor must detect."""
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n, seed=21),
        layout=Layout.sorted_by("ts"))
    return QueryService(catalog)


def run_score_queries(service: QueryService, count: int,
                      seed: int) -> list[float]:
    """Run score-range SELECTs; returns their filter pruning ratios."""
    rng = random.Random(seed)
    ratios = []
    for _ in range(count):
        lo = rng.randrange(900_000)
        result = service.sql(
            f"SELECT * FROM events WHERE score BETWEEN {lo} "
            f"AND {lo + 30_000}")
        scan = result.profile.scans[0]
        ratios.append(scan.partitions_pruned / scan.total_partitions)
    return ratios


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class TestReclusterService:
    def test_detects_drift_and_improves_median_ratio(self):
        service = drifting_service()
        before = run_score_queries(service, 15, seed=1)
        recluster = service.enable_reclustering(
            budget_bytes=24 * 1024)
        assert service.enable_reclustering() is recluster  # idempotent
        steps = 0
        while recluster.step() is not None:
            steps += 1
            assert steps < 500
        assert steps > 1
        after = run_score_queries(service, 15, seed=2)
        assert median(after) >= median(before) + 0.2

        snap = service.describe()
        status = snap["reclustering"]
        assert status["completed_jobs"]
        done = status["completed_jobs"][0]
        assert done["table"] == "events"
        assert done["keys"] == ["score"]
        assert done["bytes_rewritten"] > 0
        assert snap["recluster_jobs_started"] == 1
        assert snap["recluster_jobs_completed"] == 1
        assert snap["recluster_slices"] == steps
        assert snap["telemetry"]["recluster_slices"] == steps
        assert snap["telemetry"]["recluster_bytes_rewritten"] > 0

    def test_no_advice_means_no_work(self):
        service = drifting_service(n=600)
        # ts-sorted table + ts workload: pruning is already good.
        rng = random.Random(3)
        for _ in range(12):
            lo = rng.randrange(500)
            service.sql(f"SELECT * FROM events WHERE ts BETWEEN "
                        f"{lo} AND {lo + 40}")
        recluster = service.enable_reclustering()
        assert recluster.step() is None
        assert service.metrics.counter(
            "recluster_jobs_started").value == 0

    def test_manual_pause_resume(self):
        service = drifting_service(n=600)
        run_score_queries(service, 10, seed=4)
        recluster = service.enable_reclustering()
        recluster.pause()
        assert recluster.paused
        assert recluster.step() is None
        assert service.metrics.counter("recluster_slices").value == 0
        recluster.resume()
        assert recluster.step() is not None

    def test_pauses_under_admission_pressure(self):
        service = drifting_service(n=600)
        run_score_queries(service, 10, seed=5)
        # Threshold 0: any queue depth (including idle 0) counts as
        # pressure, so the loop must yield without touching the table.
        recluster = service.enable_reclustering(pause_queue_depth=0)
        assert recluster.step() is None
        assert recluster.paused
        assert service.metrics.counter("recluster_pauses").value == 1
        assert service.metrics.counter("recluster_slices").value == 0
        recluster.pause_queue_depth = 1_000  # pressure clears
        assert recluster.step() is not None
        assert not recluster.paused

    def test_maintenance_records_separated_in_fleet_report(self):
        service = drifting_service(n=1000)
        run_score_queries(service, 12, seed=6)
        recluster = service.enable_reclustering()
        while recluster.step() is not None:
            pass
        records = service.telemetry.records()
        summary = fleet_summary(records)
        assert summary["recluster_slices"] > 0
        assert summary["recluster_partitions_rewritten"] > 0
        # Maintenance never inflates the query aggregates.
        assert summary["queries"] == sum(
            1 for r in records if r.kind != "recluster")
        report = render_fleet_report(records)
        assert "reclustering:" in report
        assert "background slices" in report

    def test_background_thread_with_concurrent_traffic(self):
        service = drifting_service(n=1500)
        run_score_queries(service, 12, seed=7)
        oracle = Catalog(rows_per_partition=100)
        oracle.create_table_from_rows(
            "events", SCHEMA, make_events_rows(1500, seed=21))
        recluster = service.enable_reclustering(
            budget_bytes=64 * 1024, start=True)
        assert recluster.status()["running"]
        errors: list[BaseException] = []

        def reader():
            try:
                for _ in range(15):
                    result = service.sql(
                        "SELECT count(*) AS c FROM events")
                    assert result.rows[0][0] > 0
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for i in range(5):
                    service.sql(
                        f"DELETE FROM events WHERE score >= "
                        f"{950_000 - i * 10_000}")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        recluster.stop()
        assert not recluster.status()["running"]
        assert errors == []
        for i in range(5):
            oracle.sql(f"DELETE FROM events WHERE score >= "
                       f"{950_000 - i * 10_000}")
        assert sorted_rows(service.catalog) == sorted_rows(oracle)

    def test_trace_spans_recorded(self):
        from repro.obs.trace import Tracer

        service = drifting_service(n=800)
        run_score_queries(service, 10, seed=8)
        tracer = Tracer()
        recluster = ReclusterService(service, tracer=tracer)
        report = recluster.step()
        assert report is not None
        spans = [s for s in tracer.root.iter_spans()
                 if s.name == "recluster:slice"]
        assert spans
        assert spans[0].attrs["table"] == "events"
