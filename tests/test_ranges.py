"""Tests for min/max range derivation (§3.1) and tri-state pruning."""

import datetime

import pytest

from repro.expr.ast import (
    And,
    Arith,
    Cast,
    Compare,
    Contains,
    EndsWith,
    FunctionCall,
    If,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    StartsWith,
    col,
    lit,
)
from repro.expr.pruning import TriState, prune_partition
from repro.expr.ranges import ValueRange, derive_range
from repro.storage.micropartition import MicroPartition
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, y=DataType.DOUBLE,
                   s=DataType.VARCHAR, d=DataType.DATE)


def zone_map(rows):
    return MicroPartition.from_rows(SCHEMA, rows).zone_map


# x in [10, 20], y in [1.0, 2.0], s in ["apple", "pear"], d fixed year
ZM = zone_map([
    (10, 1.0, "apple", datetime.date(2024, 1, 5)),
    (20, 2.0, "pear", datetime.date(2024, 12, 5)),
    (15, 1.5, "fig", datetime.date(2024, 6, 5)),
])
ZM_WITH_NULLS = zone_map([
    (10, None, "apple", datetime.date(2024, 1, 5)),
    (None, 2.0, None, None),
])


def rng(expr, zm=ZM):
    return derive_range(expr, zm, SCHEMA)


class TestLeafRanges:
    def test_column(self):
        r = rng(col("x"))
        assert (r.lo, r.hi, r.maybe_null) == (10, 20, False)

    def test_column_with_nulls(self):
        r = rng(col("x"), ZM_WITH_NULLS)
        assert r.maybe_null

    def test_missing_stats_unknown(self):
        stripped = ZM.without_stats()
        r = rng(col("x"), stripped)
        assert not r.known

    def test_literal_point(self):
        r = rng(lit(5))
        assert (r.lo, r.hi) == (5, 5)

    def test_null_literal(self):
        r = rng(Literal(None, DataType.INTEGER))
        assert r.maybe_null and r.lo is None

    def test_date_literal_normalized_to_days(self):
        r = rng(lit(datetime.date(1970, 1, 2)))
        assert r.lo == 1


class TestArithmeticRanges:
    def test_addition(self):
        r = rng(Arith("+", col("x"), lit(5)))
        assert (r.lo, r.hi) == (15, 25)

    def test_subtraction(self):
        r = rng(Arith("-", col("x"), col("x")))
        assert (r.lo, r.hi) == (-10, 10)

    def test_multiplication_negative(self):
        r = rng(Arith("*", col("x"), lit(-2)))
        assert (r.lo, r.hi) == (-40, -20)

    def test_scaling_paper_example(self):
        # altit in [934, 7674] scaled by 0.3048 (§3.1)
        zm = zone_map([(934, 1.0, "a", datetime.date(2024, 1, 1)),
                       (7674, 1.0, "a", datetime.date(2024, 1, 1))])
        r = derive_range(Arith("*", col("x"), lit(0.3048)), zm, SCHEMA)
        assert r.lo == pytest.approx(284.68, abs=0.01)
        assert r.hi == pytest.approx(2339.04, abs=0.01)

    def test_division_safe_divisor(self):
        r = rng(Arith("/", col("x"), lit(2)))
        assert (r.lo, r.hi) == (5.0, 10.0)

    def test_division_by_possibly_zero_unknown(self):
        zm = zone_map([(-1, 1.0, "a", datetime.date(2024, 1, 1)),
                       (1, 1.0, "a", datetime.date(2024, 1, 1))])
        r = derive_range(Arith("/", lit(1), col("x")), zm, SCHEMA)
        assert not r.known
        assert r.maybe_null

    def test_division_by_constant_zero_null_only(self):
        r = rng(Arith("/", col("x"), lit(0)))
        assert r.known and r.lo is None and r.maybe_null

    def test_modulo_bounded_by_divisor(self):
        r = rng(Arith("%", col("x"), lit(7)))
        assert r.lo >= -7 and r.hi <= 7

    def test_negation(self):
        r = rng(Neg(col("x")))
        assert (r.lo, r.hi) == (-20, -10)


class TestComparisonRanges:
    def test_definitely_true(self):
        r = rng(Compare(">", col("x"), lit(5)))
        assert r.can_be_true and not r.can_be_false

    def test_definitely_false(self):
        r = rng(Compare(">", col("x"), lit(100)))
        assert not r.can_be_true and r.can_be_false

    def test_maybe(self):
        r = rng(Compare(">", col("x"), lit(15)))
        assert r.can_be_true and r.can_be_false

    def test_equality_point_ranges(self):
        zm = zone_map([(7, 1.0, "a", datetime.date(2024, 1, 1))])
        r = derive_range(Compare("=", col("x"), lit(7)), zm, SCHEMA)
        assert r.can_be_true and not r.can_be_false

    def test_nulls_block_certainty(self):
        r = rng(Compare(">", col("x"), lit(5)), ZM_WITH_NULLS)
        assert r.maybe_null


class TestBooleanRanges:
    def test_and_never_if_child_never(self):
        expr = And(Compare(">", col("x"), lit(100)),
                   Compare(">", col("y"), lit(0)))
        assert not rng(expr).can_be_true

    def test_or_always_if_child_always(self):
        expr = Or(Compare(">", col("x"), lit(5)),
                  Compare(">", col("y"), lit(100)))
        r = rng(expr)
        assert r.can_be_true and not r.can_be_false and not r.maybe_null

    def test_not_flips(self):
        r = rng(Not(Compare(">", col("x"), lit(100))))
        assert r.can_be_true and not r.can_be_false


class TestIfRanges:
    def test_condition_always_true_uses_then(self):
        expr = If(Compare(">", col("x"), lit(0)), lit(1), lit(2))
        r = rng(expr)
        assert (r.lo, r.hi) == (1, 1)

    def test_condition_never_true_uses_else(self):
        expr = If(Compare(">", col("x"), lit(100)), lit(1), lit(2))
        r = rng(expr)
        assert (r.lo, r.hi) == (2, 2)

    def test_uncertain_condition_unions(self):
        expr = If(Compare(">", col("x"), lit(15)), col("x"),
                  Neg(col("x")))
        r = rng(expr)
        assert (r.lo, r.hi) == (-20, 20)

    def test_paper_if_example(self):
        # §3.1: IF(unit='feet', altit*0.3048, altit) over mixed units
        schema = Schema.of(unit=DataType.VARCHAR,
                           altit=DataType.INTEGER)
        part = MicroPartition.from_rows(
            schema, [("feet", 934), ("meters", 7674)])
        expr = If(Compare("=", col("unit"), lit("feet")),
                  Arith("*", col("altit"), lit(0.3048)), col("altit"))
        r = derive_range(expr, part.zone_map, schema)
        assert r.lo == pytest.approx(284.68, abs=0.01)
        assert r.hi == 7674


class TestStringRanges:
    def test_startswith_overlap(self):
        r = rng(StartsWith(col("s"), "fi"))
        assert r.can_be_true and r.can_be_false

    def test_startswith_no_overlap(self):
        r = rng(StartsWith(col("s"), "zebra"))
        assert not r.can_be_true

    def test_startswith_all_match(self):
        zm = zone_map([(1, 1.0, "prefix_a", datetime.date(2024, 1, 1)),
                       (2, 1.0, "prefix_z", datetime.date(2024, 1, 1))])
        r = derive_range(StartsWith(col("s"), "prefix"), zm, SCHEMA)
        assert r.can_be_true and not r.can_be_false

    def test_like_pure_prefix_pattern_can_certify_always(self):
        zm = zone_map([(1, 1.0, "ab_1", datetime.date(2024, 1, 1)),
                       (2, 1.0, "ab_9", datetime.date(2024, 1, 1))])
        r = derive_range(Like(col("s"), "ab%"), zm, SCHEMA)
        assert r.can_be_true and not r.can_be_false

    def test_like_with_suffix_never_certifies(self):
        zm = zone_map([(1, 1.0, "ab_1", datetime.date(2024, 1, 1)),
                       (2, 1.0, "ab_9", datetime.date(2024, 1, 1))])
        r = derive_range(Like(col("s"), "ab%9"), zm, SCHEMA)
        assert r.can_be_true and r.can_be_false

    def test_like_exact_pattern_is_equality(self):
        r = rng(Like(col("s"), "zzz"))
        assert not r.can_be_true

    def test_endswith_contains_opaque(self):
        for expr in (EndsWith(col("s"), "x"), Contains(col("s"), "x")):
            r = rng(expr)
            assert r.can_be_true and r.can_be_false


class TestPrefixSuccessorSoundness:
    """Prefix pruning against pathological max-codepoint zone maps.

    A capped upper bound like ``prefix + chr(0x10FFFF)`` is unsound:
    real strings starting with the prefix can sort *above* it (any
    value with more trailing max codepoints), so a partition whose lo
    exceeds the capped bound would be pruned while containing matches.
    The fix computes the true prefix successor instead; these cases
    were NEVER (a wrong prune) under the capped bound.
    """

    def test_startswith_survives_max_codepoint_zone_map(self):
        value = "app" + "\U0010ffff" * 5  # starts with "app"!
        zm = zone_map([(1, 1.0, value, datetime.date(2024, 1, 1))])
        r = derive_range(StartsWith(col("s"), "app"), zm, SCHEMA)
        assert r.can_be_true

    def test_like_prefix_survives_max_codepoint_zone_map(self):
        value = "ab" + "\U0010ffff" * 5
        zm = zone_map([(1, 1.0, value, datetime.date(2024, 1, 1)),
                       (2, 1.0, value, datetime.date(2024, 1, 1))])
        r = derive_range(Like(col("s"), "ab%"), zm, SCHEMA)
        assert r.can_be_true and not r.can_be_false  # all rows match

    def test_prune_partition_keeps_matching_partition(self):
        value = "app" + "\U0010ffff" * 5
        zm = zone_map([(1, 1.0, value, datetime.date(2024, 1, 1))])
        state = prune_partition(StartsWith(col("s"), "app"), zm, SCHEMA)
        assert state is not TriState.NEVER

    def test_successor_math(self):
        from repro.storage.zonemap import prefix_successor

        assert prefix_successor("app") == "apq"
        # trailing max codepoints carry into the previous character
        assert prefix_successor("ap\U0010ffff") == "aq"
        # all-max prefixes have no successor: range is [prefix, +inf)
        assert prefix_successor("\U0010ffff" * 3) is None
        assert prefix_successor("") is None


class TestOtherRanges:
    def test_in_list(self):
        assert rng(InList(col("x"), [15, 99])).can_be_true
        assert not rng(InList(col("x"), [1, 2])).can_be_true

    def test_is_null(self):
        r = rng(IsNull(col("x")))
        assert not r.can_be_true  # no nulls in ZM
        r2 = rng(IsNull(col("x")), ZM_WITH_NULLS)
        assert r2.can_be_true and r2.can_be_false

    def test_is_not_null(self):
        r = rng(IsNull(col("x"), negated=True))
        assert r.can_be_true and not r.can_be_false

    def test_abs(self):
        zm = zone_map([(-5, 1.0, "a", datetime.date(2024, 1, 1)),
                       (3, 1.0, "a", datetime.date(2024, 1, 1))])
        r = derive_range(FunctionCall("abs", [col("x")]), zm, SCHEMA)
        assert (r.lo, r.hi) == (0, 5)

    def test_year_monotonic(self):
        r = rng(FunctionCall("year", [col("d")]))
        assert (r.lo, r.hi) == (2024, 2024)

    def test_month_fixed_bounds(self):
        r = rng(FunctionCall("month", [col("d")]))
        assert (r.lo, r.hi) == (1, 12)

    def test_coalesce_removes_null(self):
        expr = FunctionCall("coalesce", [col("x"), lit(0)])
        r = rng(expr, ZM_WITH_NULLS)
        assert not r.maybe_null

    def test_upper_is_opaque(self):
        r = rng(FunctionCall("upper", [col("s")]))
        assert not r.known

    def test_cast_endpoints(self):
        r = rng(Cast(col("y"), DataType.INTEGER))
        assert (r.lo, r.hi) == (1, 2)

    def test_union(self):
        a = ValueRange(DataType.INTEGER, 1, 5, False)
        b = ValueRange(DataType.INTEGER, 3, 9, True)
        u = a.union(b)
        assert (u.lo, u.hi, u.maybe_null) == (1, 9, True)


class TestTriState:
    def test_never(self):
        verdict = prune_partition(Compare(">", col("x"), lit(100)),
                                  ZM, SCHEMA)
        assert verdict == TriState.NEVER

    def test_always(self):
        verdict = prune_partition(Compare(">", col("x"), lit(0)),
                                  ZM, SCHEMA)
        assert verdict == TriState.ALWAYS

    def test_maybe(self):
        verdict = prune_partition(Compare(">", col("x"), lit(15)),
                                  ZM, SCHEMA)
        assert verdict == TriState.MAYBE

    def test_nulls_demote_always_to_maybe(self):
        verdict = prune_partition(Compare(">=", col("x"), lit(0)),
                                  ZM_WITH_NULLS, SCHEMA)
        assert verdict == TriState.MAYBE

    def test_empty_partition_is_never(self):
        empty = MicroPartition.from_rows(SCHEMA, []).zone_map
        verdict = prune_partition(Compare(">", col("x"), lit(0)),
                                  empty, SCHEMA)
        assert verdict == TriState.NEVER

    def test_invert_operator(self):
        assert ~TriState.NEVER == TriState.ALWAYS
        assert ~TriState.ALWAYS == TriState.NEVER
        assert ~TriState.MAYBE == TriState.MAYBE

    def test_paper_full_example_not_pruned(self):
        # §3.1's combined predicate over the trails metadata: MAYBE.
        schema = Schema.of(unit=DataType.VARCHAR,
                           altit=DataType.INTEGER,
                           name=DataType.VARCHAR)
        part = MicroPartition.from_rows(schema, [
            ("feet", 934, "Basecamp"),
            ("meters", 7674, "Unmarked"),
            ("feet", 5000, "Marked-North-Ridge"),
        ])
        predicate = And(
            Compare(">", If(Compare("=", col("unit"), lit("feet")),
                            Arith("*", col("altit"), lit(0.3048)),
                            col("altit")), lit(1500)),
            Like(col("name"), "Marked-%-Ridge"))
        verdict = prune_partition(predicate, part.zone_map, schema)
        assert verdict == TriState.MAYBE
