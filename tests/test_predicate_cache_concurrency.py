"""Concurrency and differential tests for the predicate cache.

The cache is mutated by catalog DML notifications and read by
compile-time lookups running on service worker threads; these tests
hammer both paths from many threads and check the structural
invariants (entry count bound, per-entry size bound, no duplicate
partition ids), then check *semantics* differentially: a cache-enabled
catalog must answer every query exactly like a cache-free one under
interleaved DML.
"""

from __future__ import annotations

import threading
from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Catalog, DataType, Layout, Schema
from repro.expr.ast import Compare, col, lit
from repro.pruning.predicate_cache import PredicateCache
from repro.service import QueryService

from conftest import make_events_rows
from oracle import run_plan

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)

N_THREADS = 12


def make_catalog(n_rows: int = 2000) -> Catalog:
    catalog = Catalog(rows_per_partition=100)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    return catalog


def predicate(threshold: int) -> Compare:
    return Compare(">", col("x"), lit(threshold))


# ----------------------------------------------------------------------
# Direct cache-object stress
# ----------------------------------------------------------------------
class TestCacheObjectStress:
    """12 threads of mixed record / lookup / DML notifications must
    leave the cache structurally sound: bounded entry count, bounded
    and duplicate-free scan lists, no exceptions."""

    ROUNDS = 120

    def test_mixed_stress_invariants(self):
        cache = PredicateCache(max_entries=32,
                               max_partitions_per_entry=48)
        errors: list[BaseException] = []
        start = threading.Barrier(N_THREADS)

        def worker(worker_id: int):
            start.wait()
            try:
                for i in range(self.ROUNDS):
                    op = (worker_id + i) % 5
                    pred = predicate((worker_id * 7 + i) % 20)
                    if op == 0:
                        cache.record_filter(
                            "t", pred,
                            list(range(worker_id, worker_id + 10)))
                    elif op == 1:
                        entry = cache.lookup_filter("t", pred)
                        if entry is not None:
                            ids = entry.scan_ids()
                            assert len(ids) == len(set(ids))
                    elif op == 2:
                        cache.on_insert(
                            "t", [100 + (i % 60), 100 + (i % 60)])
                    elif op == 3:
                        cache.on_delete("t", [100 + ((i + 3) % 60)])
                    else:
                        cache.on_update(
                            "t", [worker_id], [200 + worker_id],
                            ["y"])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []

        assert len(cache) <= cache.max_entries
        for entry in cache._entries.values():
            ids = entry.scan_ids()
            assert len(ids) == len(set(ids)), \
                "duplicate partition ids in a cache entry"
            assert len(ids) <= cache.max_partitions_per_entry, \
                "entry outgrew max_partitions_per_entry"

    def test_concurrent_admit_respects_max_entries(self):
        cache = PredicateCache(max_entries=16)
        start = threading.Barrier(N_THREADS)

        def worker(worker_id: int):
            start.wait()
            for i in range(80):
                cache.record_filter(
                    "t", predicate(worker_id * 100 + i), [1, 2])

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(cache) <= 16


# ----------------------------------------------------------------------
# Service-level stress with the predicate cache enabled
# ----------------------------------------------------------------------
class TestServicePredicateCacheStress:
    """Mixed SELECT + DML through the multi-threaded service with the
    predicate cache on. SELECTs hit the seed region (ts < 2000); each
    DML thread owns a disjoint band at ts >= 10_000, so every SELECT
    answer must equal the single-threaded oracle on the seed data no
    matter how the cache is being invalidated underneath."""

    N_SELECT_THREADS = 8
    N_DML_THREADS = 4
    SELECTS_PER_THREAD = 20
    DML_ROUNDS = 5

    STABLE_QUERIES = [
        "SELECT * FROM events WHERE ts BETWEEN 150 AND 420",
        "SELECT * FROM events WHERE ts BETWEEN 1200 AND 1230",
        "SELECT count(*) AS c FROM events WHERE ts < 500",
        "SELECT * FROM events WHERE score >= 990000 AND ts < 2000",
        # ts is unique, so the top-k result is tie-free and stable
        # regardless of which cached scan set served it.
        "SELECT * FROM events WHERE ts < 2000 "
        "ORDER BY ts DESC LIMIT 10",
    ]

    def test_stress_with_cache_matches_oracle(self):
        catalog = make_catalog(2000)
        cache = catalog.enable_predicate_cache()
        # The service result cache would satisfy repeats without ever
        # consulting the predicate cache; disable it so every SELECT
        # exercises compile-time cache lookups.
        service = QueryService(catalog, slots_per_cluster=4,
                               max_queue_per_cluster=64,
                               min_clusters=1, max_clusters=3,
                               enable_result_cache=False)

        expected = {
            sql: sorted(run_plan(catalog.plan_sql(sql), catalog)[1])
            for sql in self.STABLE_QUERIES
        }
        mismatches: list[str] = []
        errors: list[BaseException] = []
        start = threading.Barrier(
            self.N_SELECT_THREADS + self.N_DML_THREADS)

        def select_worker(worker: int):
            start.wait()
            try:
                for i in range(self.SELECTS_PER_THREAD):
                    sql = self.STABLE_QUERIES[
                        (worker + i) % len(self.STABLE_QUERIES)]
                    got = sorted(service.sql(sql).rows)
                    if got != expected[sql]:
                        mismatches.append(sql)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def dml_worker(worker: int):
            start.wait()
            base = 10_000 + worker * 1_000
            try:
                for _ in range(self.DML_ROUNDS):
                    rows = [(base + i, "dmlcat", 1.0, i)
                            for i in range(40)]
                    service.insert("events", rows)
                    service.sql(
                        f"UPDATE events SET score = score + 1 "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
                    service.sql(
                        f"DELETE FROM events "
                        f"WHERE ts BETWEEN {base} AND {base + 999}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=select_worker, args=(w,))
                   for w in range(self.N_SELECT_THREADS)]
        threads += [threading.Thread(target=dml_worker, args=(w,))
                    for w in range(self.N_DML_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert mismatches == []

        # The cache actually participated, and stayed bounded.
        assert cache.hits + cache.misses > 0
        assert len(cache) <= cache.max_entries
        for entry in cache._entries.values():
            ids = entry.scan_ids()
            assert len(ids) == len(set(ids))
            assert len(ids) <= cache.max_partitions_per_entry


# ----------------------------------------------------------------------
# Differential: cache-enabled vs cache-free under interleaved DML
# ----------------------------------------------------------------------
CACHED_QUERIES = [
    "SELECT * FROM t WHERE k > 10",
    "SELECT * FROM t WHERE k BETWEEN 5 AND 30",
    "SELECT count(*) AS c FROM t WHERE v >= 0",
    "SELECT * FROM t ORDER BY v DESC LIMIT 4",
    "SELECT * FROM t WHERE k < 40 ORDER BY v DESC LIMIT 3",
]

DIFF_SCHEMA = Schema.of(k=DataType.INTEGER, v=DataType.INTEGER)

diff_operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.lists(st.tuples(st.integers(0, 50),
                                     st.integers(-30, 30)),
                           min_size=1, max_size=6)),
        st.tuples(st.just("delete"), st.integers(0, 50)),
        st.tuples(st.just("update"), st.integers(0, 50),
                  st.integers(-5, 5)),
        st.tuples(st.just("select"),
                  st.integers(0, len(CACHED_QUERIES) - 1)),
    ),
    min_size=1, max_size=14)


@settings(max_examples=50, deadline=None)
@given(initial=st.lists(st.tuples(st.integers(0, 50),
                                  st.integers(-30, 30)),
                        min_size=0, max_size=30),
       ops=diff_operations)
def test_cache_enabled_matches_cache_free(initial, ops):
    """Random interleaving of SELECT / INSERT / DELETE / UPDATE: the
    cache-enabled catalog must return exactly what a cache-free one
    does. Queries come from a small pool so repeats produce genuine
    predicate-cache hits whose scan lists DML has since adjusted."""
    cached = Catalog(rows_per_partition=4)
    cached.create_table_from_rows("t", DIFF_SCHEMA, initial,
                                  layout=Layout.sorted_by("k"))
    cached.enable_predicate_cache(max_partitions_per_entry=8)
    plain = Catalog(rows_per_partition=4)
    plain.create_table_from_rows("t", DIFF_SCHEMA, initial,
                                 layout=Layout.sorted_by("k"))

    for op in ops:
        kind = op[0]
        if kind == "insert":
            cached.insert("t", op[1])
            plain.insert("t", op[1])
        elif kind == "delete":
            sql = f"DELETE FROM t WHERE k = {op[1]}"
            cached.sql(sql)
            plain.sql(sql)
        elif kind == "update":
            sql = (f"UPDATE t SET v = v + {op[2]} "
                   f"WHERE k = {op[1]}")
            cached.sql(sql)
            plain.sql(sql)
        else:
            sql = CACHED_QUERIES[op[1]]
            got = cached.sql(sql).rows
            want = plain.sql(sql).rows
            if " LIMIT " in sql:
                # Ties in ORDER BY v make the exact row set ambiguous:
                # both catalogs must return the same number of rows,
                # the same multiset of sort keys, and only rows that
                # exist in the unlimited result.
                assert len(got) == len(want), sql
                assert sorted(r[1] for r in got) == \
                    sorted(r[1] for r in want), sql
                pool = Counter(plain.sql(
                    sql.rsplit(" LIMIT ", 1)[0]).rows)
                for row, count in Counter(got).items():
                    assert pool[row] >= count, sql
            else:
                assert sorted(got) == sorted(want), sql
