"""Parallel top-k scans: differential serial ≡ parallel equivalence.

PR 8 removes the serial-island restriction on adaptive top-k scans.
The contract is exact: for any data distribution, worker count, fault
schedule, and runtime-pruner combination, a parallel top-k scan must
return the same rows in the same order with the same profile counters
and simulated-clock charges a serial scan produces — the *only*
counters allowed to differ are the explicitly speculative
``prefetched_then_skipped`` pair, and worker-observed skips may only
exceed (never miss) the serial decisions.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.catalog import Catalog
from repro.faults import FaultInjector, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.types import DataType, Schema

SCHEMA = Schema.of(id=DataType.INTEGER, v=DataType.DOUBLE,
                   g=DataType.VARCHAR)

FAULTS = FaultSpec(timeout_rate=0.04, throttle_rate=0.02,
                   latency_rate=0.03, latency_ms=4.0)


def make_rows(n: int, seed: int, skew: str) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        if skew == "uniform":
            v = rng.uniform(0, 1000)
        elif skew == "clustered":
            v = i // 40 * 100 + rng.uniform(0, 10)
        else:  # "nulls": a fifth of the order keys are NULL
            v = None if rng.random() < 0.2 else rng.uniform(0, 100)
        rows.append((i, v, f"g{i % 7}"))
    return rows


def make_catalog(workers: int, rows: list[tuple],
                 fault_seed: int | None = None) -> Catalog:
    catalog = Catalog(rows_per_partition=40, scan_parallelism=workers)
    catalog.create_table_from_rows("t", SCHEMA, rows)
    if fault_seed is not None:
        catalog.enable_fault_injection(
            injector=FaultInjector(seed=fault_seed, storage=FAULTS),
            retry_policy=RetryPolicy(max_attempts=8))
    return catalog


TOPK_QUERIES = [
    "SELECT id, v FROM t ORDER BY v DESC LIMIT 9",
    "SELECT id, v FROM t ORDER BY v ASC LIMIT 9",
    "SELECT id FROM t WHERE v > 50 ORDER BY v DESC LIMIT 4",
    "SELECT g, count(*) FROM t GROUP BY g ORDER BY g DESC LIMIT 3",
]


def assert_topk_equivalent(serial: Catalog, parallel: Catalog,
                           sql: str) -> None:
    want = serial.sql(sql)
    got = parallel.sql(sql)
    assert got.rows == want.rows, sql
    ps, pp = want.profile, got.profile
    assert pp.exec_ms == pytest.approx(ps.exec_ms), sql
    assert pp.partitions_loaded == ps.partitions_loaded, sql
    assert pp.total_retries == ps.total_retries, sql
    assert pp.total_backoff_ms == pytest.approx(
        ps.total_backoff_ms), sql
    for scan_s, scan_p in zip(ps.scans, pp.scans):
        assert scan_p.topk_checks == scan_s.topk_checks, sql
        assert scan_p.topk_skipped == scan_s.topk_skipped, sql
        assert scan_p.rows_scanned == scan_s.rows_scanned, sql
        assert scan_p.partitions_loaded \
            == scan_s.partitions_loaded, sql


@settings(max_examples=12, deadline=None)
@given(data_seed=st.integers(0, 10_000),
       skew=st.sampled_from(["uniform", "clustered", "nulls"]),
       workers=st.sampled_from([2, 4, 7]),
       sql=st.sampled_from(TOPK_QUERIES))
def test_parallel_topk_matches_serial(data_seed, skew, workers, sql):
    rows = make_rows(600, data_seed, skew)
    assert_topk_equivalent(make_catalog(1, rows),
                           make_catalog(workers, rows), sql)


@settings(max_examples=8, deadline=None)
@given(data_seed=st.integers(0, 10_000),
       fault_seed=st.integers(0, 10_000),
       workers=st.sampled_from([3, 4]),
       sql=st.sampled_from(TOPK_QUERIES))
def test_parallel_topk_matches_serial_under_faults(
        data_seed, fault_seed, workers, sql):
    """Seeded transient faults: retry counts, backoff charges, and
    rows must match serial exactly (RetryStats.absorb folds each
    morsel's private stats in consume order).

    One catalog, fresh same-seed injector per run: fault rolls are
    keyed on (partition id, access count), so both runs must see the
    same partition ids with the same counter state. (Discarded
    speculative loads advance access counters for partitions the
    serial run skips entirely — harmless, those partitions are
    touched at most once per query.)
    """
    rows = make_rows(400, data_seed, "uniform")
    catalog = make_catalog(1, rows)
    results = {}
    for n_workers in (1, workers):
        catalog.scan_parallelism = n_workers
        catalog.enable_fault_injection(
            injector=FaultInjector(seed=fault_seed, storage=FAULTS),
            retry_policy=RetryPolicy(max_attempts=8))
        results[n_workers] = catalog.sql(sql)
    want, got = results[1], results[workers]
    assert got.rows == want.rows, sql
    ps, pp = want.profile, got.profile
    assert pp.exec_ms == pytest.approx(ps.exec_ms), sql
    assert pp.partitions_loaded == ps.partitions_loaded, sql
    assert pp.total_retries == ps.total_retries, sql
    assert pp.total_backoff_ms == pytest.approx(
        ps.total_backoff_ms), sql
    for scan_s, scan_p in zip(ps.scans, pp.scans):
        assert scan_p.topk_checks == scan_s.topk_checks, sql
        assert scan_p.topk_skipped == scan_s.topk_skipped, sql


class TestEverythingEnabled:
    """Chaos variant: top-k + runtime join filters + prefetcher +
    data cache + parallel morsels, all at once."""

    JOIN_SQL = ("SELECT t.id, t.v FROM t JOIN d ON t.g = d.k "
                "ORDER BY t.v DESC LIMIT 8")

    def _catalog(self, seed: int) -> Catalog:
        rows = make_rows(500, seed, "uniform")
        catalog = Catalog(rows_per_partition=25, scan_parallelism=1)
        catalog.create_table_from_rows("t", SCHEMA, rows)
        catalog.create_table_from_rows(
            "d", Schema.of(k=DataType.VARCHAR, w=DataType.INTEGER),
            [(f"g{i}", i) for i in range(4)])
        return catalog

    def _run(self, catalog: Catalog, workers: int, seed: int,
             faults: bool):
        catalog.scan_parallelism = workers
        catalog.data_cache = None  # enable_* is idempotent: drop first
        catalog.enable_data_cache(prefetch=True)  # fresh cold cache
        if faults:
            catalog.enable_fault_injection(
                injector=FaultInjector(seed=seed, storage=FAULTS),
                retry_policy=RetryPolicy(max_attempts=8))
        return catalog.sql(self.JOIN_SQL)

    def test_join_filtered_topk_with_prefetch(self):
        for seed in (3, 17, 29):
            catalog = self._catalog(seed)
            want = self._run(catalog, 1, seed, faults=False)
            got = self._run(catalog, 4, seed, faults=False)
            assert got.rows == want.rows
            ps, pp = want.profile, got.profile
            assert pp.partitions_loaded == ps.partitions_loaded
            assert pp.exec_ms == pytest.approx(ps.exec_ms)
            for scan_s, scan_p in zip(ps.scans, pp.scans):
                assert scan_p.topk_checks == scan_s.topk_checks
                assert scan_p.topk_skipped == scan_s.topk_skipped

    def test_join_filtered_topk_with_prefetch_under_faults(self):
        """With faults, cache and prefetcher enabled, the serial
        readahead and the parallel morsel window touch partitions with
        different access-counter states, so clock/retry parity is out
        of scope — but rows must still be exact and every fault
        absorbed (no exceptions escape)."""
        for seed in (3, 17, 29):
            catalog = self._catalog(seed)
            want = self._run(catalog, 1, seed, faults=True)
            got = self._run(catalog, 4, seed, faults=True)
            assert got.rows == want.rows
            assert got.profile.partitions_loaded \
                == want.profile.partitions_loaded

    def test_prefetch_under_topk_fires_and_discards_cleanly(self):
        """A serial top-k scan with the cache's prefetcher enabled
        must produce identical rows and query cost to a serial scan
        without it; bytes the boundary wasted surface only in the
        speculative counters."""
        rows = make_rows(500, 11, "uniform")
        plain = Catalog(rows_per_partition=25, scan_parallelism=1)
        plain.create_table_from_rows("t", SCHEMA, rows)
        cached = Catalog(rows_per_partition=25, scan_parallelism=1)
        cached.create_table_from_rows("t", SCHEMA, rows)
        cached.enable_data_cache(prefetch=True)
        sql = "SELECT id, v FROM t ORDER BY v DESC LIMIT 6"
        want = plain.sql(sql)
        got = cached.sql(sql)
        assert got.rows == want.rows
        ps, pp = want.profile, got.profile
        assert pp.partitions_loaded == ps.partitions_loaded
        for scan_s, scan_p in zip(ps.scans, pp.scans):
            assert scan_p.topk_checks == scan_s.topk_checks
            assert scan_p.topk_skipped == scan_s.topk_skipped
        # The prefetcher actually ran ahead of the top-k scan.
        assert pp.scans[0].prefetched_partitions > 0

    def test_boundary_updates_surface_in_profile(self):
        rows = make_rows(600, 5, "uniform")
        catalog = make_catalog(4, rows)
        result = catalog.sql(
            "SELECT id, v FROM t ORDER BY v DESC LIMIT 5")
        profile = result.profile
        assert profile.topk_boundary_updates > 0
        exported = profile.metrics_export()
        assert exported["topk_boundary_updates"] \
            == float(profile.topk_boundary_updates)
        assert "prefetched_then_skipped" in exported
