"""Plan-shape compiled-plan cache: parameterization, rebinding, and
the differential invariant.

The acceptance bar mirrors the result-correctness bar of every other
caching layer in this repo: a plan-cache *hit* (literal rebind of a
cached template) must return bit-identical rows to a cold compile of
the same statement — over generated workloads, under interleaved DML
and reclustering, and under seeded transient faults. Staleness must
fail closed: schema drift evicts the entry and recompiles; it never
reuses a stale scan set (rebinding re-runs pruning from live
metadata by construction).
"""

from __future__ import annotations

import datetime

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import (
    Catalog,
    DataType,
    FaultInjector,
    FaultSpec,
    Layout,
    ReproError,
    RetryPolicy,
    Schema,
)
from repro.plancache import (
    BindMismatchError,
    PlanCache,
    bind_plan,
    build_template,
    make_pruned_resolver,
    parameterize_text,
    referenced_columns,
    validate_binds,
)
from repro.service import QueryService
from repro.sql import parse_select
from repro.types import Field

from conftest import make_events_rows

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)


def make_catalog(n_rows: int = 1000, plan_cache: bool = True,
                 rows_per_partition: int = 100) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    if plan_cache:
        catalog.enable_plan_cache()
    return catalog


# ----------------------------------------------------------------------
# Parameterization: shape keys and bind extraction
# ----------------------------------------------------------------------
class TestParameterize:
    def test_literal_spellings_share_a_shape(self):
        a = parameterize_text("SELECT * FROM t WHERE y = 1.0")
        b = parameterize_text("select *  from T where Y = 1.00;")
        assert a.shape_key == b.shape_key
        assert a.binds == b.binds == (1.0,)

    def test_different_values_same_shape_different_binds(self):
        a = parameterize_text("SELECT * FROM t WHERE x = 1 AND s='u'")
        b = parameterize_text("SELECT * FROM t WHERE x = 9 AND s='v'")
        assert a.shape_key == b.shape_key
        assert a.binds == (1, "u")
        assert b.binds == (9, "v")

    def test_int_and_float_masks_stay_distinct(self):
        a = parameterize_text("SELECT * FROM t WHERE x = 1")
        b = parameterize_text("SELECT * FROM t WHERE x = 1.0")
        assert a.shape_key != b.shape_key
        assert type(a.binds[0]) is int
        assert type(b.binds[0]) is float

    def test_limit_and_offset_stay_in_shape(self):
        a = parameterize_text("SELECT * FROM t LIMIT 5")
        b = parameterize_text("SELECT * FROM t LIMIT 6")
        assert a.shape_key != b.shape_key
        assert a.binds == b.binds == ()
        c = parameterize_text("SELECT * FROM t LIMIT 5 OFFSET 2")
        d = parameterize_text("SELECT * FROM t LIMIT 5 OFFSET 3")
        assert c.shape_key != d.shape_key

    def test_date_literal_binds_as_date(self):
        pq = parameterize_text(
            "SELECT * FROM t WHERE d >= DATE '2024-03-01'")
        assert pq.binds == (datetime.date(2024, 3, 1),)
        same = parameterize_text(
            "SELECT * FROM t WHERE d >= DATE '1999-12-31'")
        assert same.shape_key == pq.shape_key

    def test_booleans_and_null_stay_in_shape(self):
        a = parameterize_text("SELECT * FROM t WHERE flag = TRUE")
        b = parameterize_text("SELECT * FROM t WHERE flag = FALSE")
        assert a.shape_key != b.shape_key
        assert a.binds == b.binds == ()

    def test_dml_is_parameterizable_but_not_select(self):
        pq = parameterize_text("DELETE FROM t WHERE x = 3")
        assert not pq.is_select
        assert pq.binds == (3,)


# ----------------------------------------------------------------------
# Template extraction, bind validation, schema pruning
# ----------------------------------------------------------------------
class TestTemplate:
    def test_template_binds_match_token_binds(self):
        sql = ("SELECT ts, value FROM events WHERE ts BETWEEN 10 AND "
               "90 AND category IN ('a', 'b') AND value >= 1.5")
        stmt = parse_select(sql)
        _template, slots, ast_binds = build_template(stmt)
        pq = parameterize_text(sql)
        assert tuple(ast_binds) == pq.binds
        assert len(slots) == len(pq.binds)

    def test_validate_binds_rejects_wrong_type(self):
        sql = "SELECT ts FROM events WHERE ts = 7"
        _template, slots, _binds = build_template(parse_select(sql))
        validate_binds((7,), slots)
        with pytest.raises(BindMismatchError):
            validate_binds((7.0,), slots)
        with pytest.raises(BindMismatchError):
            validate_binds((7, 8), slots)

    def test_bound_template_plans_like_the_original(self):
        catalog = make_catalog(400, plan_cache=False)
        sql = ("SELECT ts, value FROM events WHERE ts BETWEEN 100 "
               "AND 300 AND category = 'alpha' ORDER BY ts LIMIT 7")
        stmt = parse_select(sql)
        template, slots, binds = build_template(stmt)
        from repro.sql.planner import plan_select

        bound = bind_plan(
            plan_select(template, catalog.schema_of), tuple(binds),
            slots)
        direct = catalog.sql(sql)
        via_template = catalog.execute_plan(bound)
        assert via_template.rows == direct.rows

    def test_referenced_columns_and_pruned_resolver(self):
        stmt = parse_select(
            "SELECT ts FROM events WHERE value > 1.0 ORDER BY score")
        cols = referenced_columns(stmt)
        assert cols == {"ts", "value", "score"}
        catalog = make_catalog(100, plan_cache=False)
        resolver, width = make_pruned_resolver(
            stmt, catalog.schema_of, ["events"])
        assert width == 3
        assert resolver("events").names() == ["ts", "value", "score"]

    def test_star_disables_pruning(self):
        stmt = parse_select("SELECT * FROM events WHERE ts = 1")
        assert referenced_columns(stmt) is None
        catalog = make_catalog(100, plan_cache=False)
        resolver, width = make_pruned_resolver(
            stmt, catalog.schema_of, ["events"])
        assert width == len(SCHEMA.fields)
        assert resolver("events") is catalog.schema_of("events")


# ----------------------------------------------------------------------
# Cache behaviour: hits, rebinds, capacity, invalidation
# ----------------------------------------------------------------------
class TestPlanCacheBehaviour:
    def test_repeat_shape_hits_and_is_cheaper(self):
        catalog = make_catalog()
        cold = catalog.sql(
            "SELECT ts, value FROM events WHERE ts < 200 LIMIT 5")
        hot = catalog.sql(
            "SELECT ts, value FROM events WHERE ts < 900 LIMIT 5")
        stats = catalog.plan_cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert hot.profile.plan_cache_hit
        assert hot.profile.plan_cache_checked
        assert not cold.profile.plan_cache_hit
        assert hot.profile.compile_ms < cold.profile.compile_ms

    def test_hit_result_matches_cold_compile(self):
        cached = make_catalog()
        plain = make_catalog(plan_cache=False)
        queries = [
            "SELECT * FROM events WHERE ts BETWEEN 100 AND 340",
            "SELECT * FROM events WHERE ts BETWEEN 500 AND 640",
            "SELECT category, count(*) AS c FROM events "
            "WHERE ts < 700 GROUP BY category ORDER BY category",
            "SELECT category, count(*) AS c FROM events "
            "WHERE ts < 150 GROUP BY category ORDER BY category",
            "SELECT * FROM events WHERE score >= 900000 "
            "ORDER BY score DESC LIMIT 9",
            "SELECT * FROM events WHERE score >= 100000 "
            "ORDER BY score DESC LIMIT 9",
        ]
        for sql in queries:
            assert cached.sql(sql).rows == plain.sql(sql).rows, sql
        assert cached.plan_cache.stats.hits == 3

    def test_lru_capacity_eviction(self):
        catalog = make_catalog(200, plan_cache=False)
        catalog.enable_plan_cache(max_entries=2)
        catalog.sql("SELECT ts FROM events WHERE ts = 1")
        catalog.sql("SELECT value FROM events WHERE ts = 1")
        catalog.sql("SELECT score FROM events WHERE ts = 1")
        assert len(catalog.plan_cache) == 2
        assert catalog.plan_cache.stats.capacity_evictions == 1
        # The first shape was evicted: repeating it misses again.
        catalog.sql("SELECT ts FROM events WHERE ts = 2")
        assert catalog.plan_cache.stats.hits == 0

    def test_enable_plan_cache_is_idempotent(self):
        catalog = make_catalog()
        first = catalog.plan_cache
        catalog.enable_plan_cache()
        assert catalog.plan_cache is first

    def test_dml_does_not_evict_but_results_stay_fresh(self):
        cached = make_catalog()
        plain = make_catalog(plan_cache=False)
        sql = "SELECT count(*) AS c FROM events WHERE ts < 600"
        assert cached.sql(sql).rows == plain.sql(sql).rows
        for catalog in (cached, plain):
            catalog.sql("DELETE FROM events WHERE ts BETWEEN 100 "
                        "AND 250")
        again = "SELECT count(*) AS c FROM events WHERE ts < 601"
        assert cached.sql(again).rows == plain.sql(again).rows
        stats = cached.plan_cache.stats
        assert stats.hits == 1            # the plan survived the DML
        assert stats.version_bumps >= 1   # ...and the bump was seen

    def test_recluster_keeps_plan_and_results_correct(self):
        cached = make_catalog()
        plain = make_catalog(plan_cache=False)
        sql = ("SELECT * FROM events WHERE score >= 500000 "
               "ORDER BY score DESC LIMIT 11")
        assert cached.sql(sql).rows == plain.sql(sql).rows
        for catalog in (cached, plain):
            catalog.recluster("events", "score")
        sql2 = ("SELECT * FROM events WHERE score >= 700000 "
                "ORDER BY score DESC LIMIT 11")
        assert cached.sql(sql2).rows == plain.sql(sql2).rows
        assert cached.plan_cache.stats.hits == 1

    def test_drop_table_evicts_cached_plans(self):
        catalog = make_catalog(200)
        catalog.sql("SELECT ts FROM events WHERE ts = 1")
        assert len(catalog.plan_cache) == 1
        catalog.drop_table("events")
        assert len(catalog.plan_cache) == 0
        assert catalog.plan_cache.stats.invalidations == 1
        with pytest.raises(ReproError):
            catalog.sql("SELECT ts FROM events WHERE ts = 2")

    def test_schema_drift_fails_closed_to_recompile(self):
        catalog = make_catalog(200)
        catalog.sql("SELECT ts FROM events WHERE ts < 50")
        # Drop and recreate with a *different* schema but the same
        # name. The cached entry must be detected as stale and
        # recompiled — never rebound against the old column layout.
        catalog.drop_table("events")
        assert len(catalog.plan_cache) == 0
        wider = Schema([*SCHEMA.fields,
                        Field("extra", DataType.INTEGER)])
        catalog.create_table_from_rows(
            "events", wider,
            [(*row, i) for i, row in
             enumerate(make_events_rows(200))],
            layout=Layout.sorted_by("ts"))
        result = catalog.sql("SELECT ts FROM events WHERE ts < 50")
        assert result.num_rows == 50
        assert not result.profile.plan_cache_hit
        # The recompiled entry is usable again.
        assert catalog.sql(
            "SELECT ts FROM events WHERE ts < 60"
        ).profile.plan_cache_hit

    def test_stale_schema_eviction_via_forced_drift(self):
        # Exercise validate() directly: mutate the stored fingerprint
        # so the next lookup sees drift without any DDL.
        catalog = make_catalog(200)
        catalog.sql("SELECT ts FROM events WHERE ts < 50")
        pq = parameterize_text("SELECT ts FROM events WHERE ts < 50")
        entry = catalog.plan_cache.peek(pq.shape_key)
        entry.schemas["events"] = Schema([Field("ts",
                                                DataType.VARCHAR)])
        result = catalog.sql("SELECT ts FROM events WHERE ts < 70")
        assert result.num_rows == 70
        assert catalog.plan_cache.stats.stale_schema_evictions == 1
        assert not result.profile.plan_cache_hit

    def test_uncacheable_shape_falls_back_cold(self):
        # BETWEEN desugars by duplicating the left operand; with a
        # computed left side the AST binds disagree with the token
        # binds, so the shape is marked uncacheable and every run
        # takes the (correct) cold path.
        catalog = make_catalog(300)
        plain = make_catalog(300, plan_cache=False)
        sql = ("SELECT ts FROM events WHERE ts + 1 BETWEEN 10 AND 20 "
               "ORDER BY ts")
        assert catalog.sql(sql).rows == plain.sql(sql).rows
        assert catalog.plan_cache.stats.uncacheable == 1
        assert catalog.sql(sql).rows == plain.sql(sql).rows
        assert len(catalog.plan_cache) == 0

    def test_unknown_column_error_matches_cold_and_is_not_pinned(self):
        catalog = make_catalog(100)
        with pytest.raises(ReproError):
            catalog.sql("SELECT nope FROM events WHERE ts = 1")
        # A planning failure is not "uncacheable" — the shape may
        # become valid later (e.g. after a CREATE TABLE).
        assert catalog.plan_cache.stats.uncacheable == 0

    def test_explain_reports_cache_state(self):
        catalog = make_catalog(100)
        sql = "SELECT ts FROM events WHERE ts = 3"
        assert "shape not cached" in catalog.explain(sql)
        catalog.sql(sql)
        assert "cached shape" in catalog.explain(sql)


# ----------------------------------------------------------------------
# Service integration: result-cache keys, metrics, telemetry
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_result_cache_collapses_literal_spellings(self):
        service = QueryService(make_catalog(300),
                               plan_cache_entries=64)
        a = service.sql(
            "SELECT * FROM events WHERE value <= 500.0 LIMIT 5")
        b = service.sql(
            "SELECT * FROM events WHERE value <= 500.00 LIMIT 5")
        assert a.rows == b.rows
        assert service.metrics.counter("result_cache_hits").value == 1

    def test_different_binds_do_not_share_results(self):
        service = QueryService(make_catalog(300),
                               plan_cache_entries=64)
        a = service.sql("SELECT count(*) AS c FROM events "
                        "WHERE ts < 100")
        b = service.sql("SELECT count(*) AS c FROM events "
                        "WHERE ts < 200")
        assert a.rows != b.rows
        assert service.metrics.counter("result_cache_hits").value == 0
        # Same shape though: the second compile was a plan-cache hit.
        assert service.catalog.plan_cache.stats.hits == 1

    def test_metrics_and_describe_expose_plan_cache(self):
        service = QueryService(make_catalog(300),
                               plan_cache_entries=64,
                               enable_result_cache=False)
        service.sql("SELECT ts FROM events WHERE ts < 10")
        service.sql("SELECT ts FROM events WHERE ts < 20")
        assert service.metrics.counter("plan_cache_hits").value == 1
        assert service.metrics.counter("plan_cache_misses").value == 1
        assert service.metrics.plan_cache_hit_ratio() == 0.5
        snap = service.describe()
        assert snap["plan_cache"]["hits"] == 1
        assert snap["plan_cache_hit_ratio"] == 0.5
        assert service.metrics.snapshot()["plan_cache.hit_ratio"] \
            == 0.5

    def test_telemetry_and_fleet_report_carry_plan_cache(self):
        from repro.obs.fleet import fleet_summary, render_fleet_report

        service = QueryService(make_catalog(300),
                               plan_cache_entries=64,
                               enable_result_cache=False)
        service.sql("SELECT ts FROM events WHERE ts < 10")
        service.sql("SELECT ts FROM events WHERE ts < 20")
        records = service.telemetry.records()
        assert [r.plan_cache_hit for r in records] == [False, True]
        assert records[1].to_dict()["plan_cache_hit"] is True
        summary = fleet_summary(records)
        assert summary["plan_cache_hits"] == 1
        assert summary["plan_cache_hit_ratio"] == 0.5
        report = render_fleet_report(records)
        assert "plan cache: 1 of 2" in report
        assert "compile latency ms" in report

    def test_trace_events_mark_hit_and_rebind(self):
        catalog = make_catalog(200)
        cold = catalog.sql("SELECT ts FROM events WHERE ts < 10")
        assert cold.profile.trace.find("parameterize") is not None
        assert cold.profile.trace.find("plan_cache:hit") is None
        hot = catalog.sql("SELECT ts FROM events WHERE ts < 30")
        assert hot.profile.trace.find("plan_cache:rebind") is not None
        assert hot.profile.trace.find("plan_cache:hit") is not None


# ----------------------------------------------------------------------
# Differential: generated workload, hit == cold, bit-identical
# ----------------------------------------------------------------------
class TestWorkloadDifferential:
    def test_generated_workload_cached_matches_plain(self):
        from repro.workload import (
            Platform,
            PlatformConfig,
            WorkloadGenerator,
        )

        config = PlatformConfig(
            seed=7, rows_per_partition=50, n_small_tables=2,
            n_medium_tables=2, n_large_tables=1, n_dim_tables=1,
            dim_rows=64)
        cached = Platform(config)
        cached.catalog.enable_plan_cache()
        plain = Platform(config)
        queries = WorkloadGenerator(cached, seed=5).generate(40)
        # Run the stream twice through the cached platform: the
        # second pass is nearly all rebinds. Every result must match
        # the plan-cache-off platform exactly.
        for q in queries * 2:
            assert cached.catalog.sql(q.sql).rows \
                == plain.catalog.sql(q.sql).rows, q.sql
        stats = cached.catalog.plan_cache.stats
        assert stats.hits >= len(queries)  # second pass all hits
        assert stats.rebind_fallbacks == 0

    def test_workload_with_interleaved_dml_and_recluster(self):
        from repro.workload import (
            Platform,
            PlatformConfig,
            WorkloadGenerator,
        )

        config = PlatformConfig(
            seed=11, rows_per_partition=50, n_small_tables=1,
            n_medium_tables=2, n_large_tables=1, n_dim_tables=1,
            dim_rows=64)
        cached = Platform(config)
        cached.catalog.enable_plan_cache()
        plain = Platform(config)
        generator = WorkloadGenerator(cached, seed=3)
        queries = generator.generate(30)
        fact = next(s.name for s in cached.specs.values()
                    if s.kind == "fact" and s.n_partitions > 4)
        for i, q in enumerate(queries * 2):
            if i % 10 == 4:
                dml = (f"DELETE FROM {fact} "
                       f"WHERE ts BETWEEN {i * 7} AND {i * 7 + 30}")
                cached.catalog.sql(dml)
                plain.catalog.sql(dml)
            if i % 17 == 8:
                cached.catalog.recluster(fact, "score")
                plain.catalog.recluster(fact, "score")
            assert cached.catalog.sql(q.sql).rows \
                == plain.catalog.sql(q.sql).rows, q.sql
        assert cached.catalog.plan_cache.stats.rebind_fallbacks == 0


# ----------------------------------------------------------------------
# Hypothesis: random literals over shared shapes, cached vs cold
# ----------------------------------------------------------------------
CACHED = make_catalog(600)
PLAIN = make_catalog(600, plan_cache=False)

TEMPLATES = (
    "SELECT * FROM events WHERE ts BETWEEN {lo} AND {hi}",
    "SELECT ts, value FROM events WHERE ts >= {lo} AND ts <= {hi} "
    "ORDER BY ts LIMIT 13",
    "SELECT category, count(*) AS c FROM events WHERE ts < {hi} "
    "GROUP BY category ORDER BY category",
    "SELECT * FROM events WHERE value >= {v} AND "
    "category IN ('alpha', 'beta') ORDER BY score DESC LIMIT 7",
    "SELECT max(score) AS m FROM events WHERE ts > {lo} AND "
    "value < {v}",
)


@settings(max_examples=80, deadline=None)
@given(template=st.sampled_from(TEMPLATES),
       lo=st.integers(0, 600), span=st.integers(0, 300),
       v=st.floats(0, 1000, allow_nan=False).map(
           lambda x: round(x, 2)))
def test_random_literals_hit_equals_cold(template, lo, span, v):
    sql = template.format(lo=lo, hi=lo + span, v=v)
    assert CACHED.sql(sql).rows == PLAIN.sql(sql).rows


def test_hypothesis_run_actually_exercised_the_cache():
    # Guards the suite above: with 5 shapes and >=80 examples the
    # cache must have served most compiles from rebinds.
    stats = CACHED.plan_cache.stats
    assert stats.hits > stats.misses
    assert stats.rebind_fallbacks == 0


# ----------------------------------------------------------------------
# Seeded chaos: transient faults + plan cache stay bit-identical
# ----------------------------------------------------------------------
class TestChaosWithPlanCache:
    QUERIES = (
        "SELECT * FROM events WHERE ts BETWEEN 100 AND 400",
        "SELECT * FROM events WHERE ts BETWEEN 500 AND 540",
        "SELECT count(*) AS c FROM events WHERE ts < 300",
        "SELECT category, count(*) AS c FROM events WHERE ts < 800 "
        "GROUP BY category ORDER BY category",
    )

    @pytest.mark.parametrize("seed", (13, 29))
    def test_transient_faults_never_change_rebound_results(self, seed):
        plain = make_catalog(800, plan_cache=False)
        expected = {sql: plain.sql(sql).rows for sql in self.QUERIES}
        catalog = make_catalog(800)
        catalog.enable_fault_injection(
            FaultInjector(
                seed=seed,
                storage=FaultSpec(timeout_rate=0.05,
                                  corruption_rate=0.03),
                metadata=FaultSpec(timeout_rate=0.05)),
            retry_policy=RetryPolicy(max_attempts=8))
        for _ in range(3):
            for sql in self.QUERIES:
                assert catalog.sql(sql).rows == expected[sql], sql
        stats = catalog.plan_cache.stats
        assert stats.hits >= 2 * len(self.QUERIES)
