"""Tests reproducing the paper's worked examples exactly.

Each test encodes a concrete scenario from the paper — the §3.1
metadata table, Figure 5's four micro-partitions, the §4.1 LIMIT
walkthrough, and the §5 top-k query — and asserts the behaviour the
paper describes.
"""

import pytest

from repro import Catalog, DataType, Schema
from repro.expr.ast import And, Arith, Compare, If, Like, col, lit
from repro.expr.pruning import TriState, prune_partition
from repro.expr.ranges import derive_range
from repro.pruning.base import ScanSet
from repro.pruning.filter_pruning import FilterPruner
from repro.pruning.fully_matching import find_fully_matching_inverted
from repro.pruning.limit_pruning import LimitPruneOutcome, LimitPruner
from repro.storage.micropartition import MicroPartition
from repro.storage.table import Table

TRAILS_SCHEMA = Schema.of(unit=DataType.VARCHAR,
                          altit=DataType.INTEGER,
                          name=DataType.VARCHAR)

TRACKING_SCHEMA = Schema.of(species=DataType.VARCHAR,
                            s=DataType.INTEGER,
                            num_sightings=DataType.INTEGER)

#: §3's running predicate over trails
TRAILS_PREDICATE = And(
    Compare(">", If(Compare("=", col("unit"), lit("feet")),
                    Arith("*", col("altit"), lit(0.3048)),
                    col("altit")), lit(1500)),
    Like(col("name"), "Marked-%-Ridge"))

#: §4's running predicate over tracking_data
TRACKING_PREDICATE = And(Like(col("species"), "Alpine%"),
                         Compare(">=", col("s"), lit(50)))


class TestSection31MetadataTable:
    """§3.1: the metadata table unit=[feet..meters],
    altit=[934..7674], name=[Basecamp..Unmarked]."""

    def make_partition(self):
        return MicroPartition.from_rows(TRAILS_SCHEMA, [
            ("feet", 934, "Basecamp"),
            ("meters", 7674, "Unmarked"),
            ("feet", 5000, "Marked-North-Ridge"),
        ])

    def test_if_range_matches_paper(self):
        # "the resulting min/max range is extended to encompass ...
        # (min=284.68, max=7674)"
        partition = self.make_partition()
        expr = If(Compare("=", col("unit"), lit("feet")),
                  Arith("*", col("altit"), lit(0.3048)), col("altit"))
        value_range = derive_range(expr, partition.zone_map,
                                   TRAILS_SCHEMA)
        assert value_range.lo == pytest.approx(284.68, abs=0.01)
        assert value_range.hi == 7674

    def test_partition_not_pruned(self):
        # "Evaluating this expression against the provided metadata ...
        # indicates that the micro-partition should not be pruned."
        partition = self.make_partition()
        verdict = prune_partition(TRAILS_PREDICATE, partition.zone_map,
                                  TRAILS_SCHEMA)
        assert verdict == TriState.MAYBE

    def test_scaled_altit_range(self):
        # "(altit * 0.3048) ... transformed range of around
        # (min=284.68, max=2339.04)"
        partition = self.make_partition()
        value_range = derive_range(
            Arith("*", col("altit"), lit(0.3048)), partition.zone_map,
            TRAILS_SCHEMA)
        assert value_range.lo == pytest.approx(284.68, abs=0.01)
        assert value_range.hi == pytest.approx(2339.04, abs=0.01)


def figure5_partitions() -> list[MicroPartition]:
    """Figure 5's four micro-partitions of tracking_data.

    Partition 1: no Alpine species at all (pruned by filter pruning).
    Partition 2: Alpine species but s straddles 50 (partial).
    Partition 3: every row matches both predicates (fully matching).
    Partition 4: species straddles 'Alpine%', s straddles 50 (partial).
    """
    p1 = MicroPartition.from_rows(TRACKING_SCHEMA, [
        ("Brown Bear", 110, 3), ("Bison", 180, 1), ("Boar", 70, 9)])
    p2 = MicroPartition.from_rows(TRACKING_SCHEMA, [
        ("Alpine Ibex", 91, 40), ("Alpine Marmot", 14, 200),
        ("Alpine Chough", 37, 77)])
    p3 = MicroPartition.from_rows(TRACKING_SCHEMA, [
        ("Alpine Ibex", 88, 12), ("Alpine Ibex", 96, 4),
        ("Alpine Chamois", 75, 30)])
    p4 = MicroPartition.from_rows(TRACKING_SCHEMA, [
        ("Alpine Marmot", 16, 8), ("Red Deer", 120, 2),
        ("Chamois", 76, 5)])
    return [p1, p2, p3, p4]


class TestFigure5:
    def scan_set(self, partitions):
        return ScanSet((p.partition_id, p.zone_map)
                       for p in partitions)

    def test_first_pass_prunes_partition_1(self):
        partitions = figure5_partitions()
        result = FilterPruner(TRACKING_PREDICATE,
                              TRACKING_SCHEMA).prune(
            self.scan_set(partitions))
        assert partitions[0].partition_id in result.pruned_ids
        assert result.after == 3

    def test_second_pass_identifies_partition_3(self):
        # "the inverted predicate species NOT LIKE 'Alpine%' OR s < 50
        # is applied, under which partition 3 is identified as
        # not-matching ... marked as fully-matching"
        partitions = figure5_partitions()
        fully = find_fully_matching_inverted(
            TRACKING_PREDICATE, self.scan_set(partitions),
            TRACKING_SCHEMA)
        assert fully == [partitions[2].partition_id]

    def test_limit_3_scans_only_partition_3(self):
        # "Ideally, we would identify partition 3 during query
        # compilation as sufficient, allowing us to process only that
        # micro-partition."
        partitions = figure5_partitions()
        filtered = FilterPruner(TRACKING_PREDICATE,
                                TRACKING_SCHEMA).prune(
            self.scan_set(partitions))
        report = LimitPruner(3).prune(filtered.kept,
                                      filtered.fully_matching_ids)
        assert report.outcome == LimitPruneOutcome.PRUNED_TO_ONE
        assert report.result.kept.partition_ids == \
            [partitions[2].partition_id]

    def test_end_to_end_limit_query(self):
        catalog = Catalog()
        table = Table("tracking_data", TRACKING_SCHEMA,
                      figure5_partitions())
        catalog.create_table(table)
        result = catalog.sql(
            "SELECT * FROM tracking_data "
            "WHERE species LIKE 'Alpine%' AND s >= 50 LIMIT 3")
        assert result.num_rows == 3
        scan = result.profile.scans[0]
        assert scan.partitions_loaded == 1
        assert scan.limit_report.outcome == \
            LimitPruneOutcome.PRUNED_TO_ONE
        # every returned row satisfies both predicates
        for species, s, _ in result.rows:
            assert species.startswith("Alpine") and s >= 50

    def test_topk_query_over_figure5_table(self):
        # §5's ORDER BY num_sightings DESC LIMIT 3 over the same data.
        catalog = Catalog()
        table = Table("tracking_data", TRACKING_SCHEMA,
                      figure5_partitions())
        catalog.create_table(table)
        result = catalog.sql(
            "SELECT * FROM tracking_data "
            "WHERE species LIKE 'Alpine%' AND s >= 50 "
            "ORDER BY num_sightings DESC LIMIT 3")
        sightings = [r[2] for r in result.rows]
        # oracle: qualifying rows are p2's (91,40), p3's three rows
        assert sightings == [40, 30, 12]
