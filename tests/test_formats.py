"""Tests for Parquet-like files and Iceberg-like tables (§8.1)."""

import pytest

from repro.errors import MetadataError
from repro.expr.ast import And, Compare, col, lit
from repro.formats import IcebergTable, ParquetFile
from repro.types import DataType, Schema

SCHEMA = Schema.of(x=DataType.INTEGER, s=DataType.VARCHAR)
ROWS = [(i, f"s{i:05d}") for i in range(1000)]  # sorted by x
PRED = Compare(">=", col("x"), lit(900))


def make_file(**kwargs):
    return ParquetFile.write(SCHEMA, ROWS, row_group_rows=200,
                             page_rows=50, **kwargs)


class TestParquetFile:
    def test_structure(self):
        file = make_file()
        assert len(file.row_groups) == 5
        assert all(len(g.pages) == 4 for g in file.row_groups)
        assert file.row_count == 1000
        assert file.has_statistics

    def test_file_stats_merge(self):
        stats = make_file().file_stats()
        assert stats.stats("x").min_value == 0
        assert stats.stats("x").max_value == 999
        assert stats.row_count == 1000

    def test_row_group_pruning(self):
        file = make_file()
        kept = file.prune_row_groups(PRED)
        assert len(kept) == 1

    def test_page_pruning(self):
        file = make_file()
        group = file.prune_row_groups(PRED)[0]
        pages = file.prune_pages(group, PRED)
        assert len(pages) == 2  # x in [900..949], [950..999]

    def test_without_statistics_nothing_pruned(self):
        file = make_file(write_statistics=False,
                         write_page_index=False)
        assert not file.has_statistics
        assert len(file.prune_row_groups(PRED)) == 5
        with pytest.raises(MetadataError):
            file.file_stats()

    def test_backfill_restores_pruning(self):
        file = make_file(write_statistics=False,
                         write_page_index=False)
        backfilled = file.backfill()
        assert backfilled == 5
        assert file.has_statistics
        assert len(file.prune_row_groups(PRED)) == 1
        # second backfill is a no-op
        assert file.backfill() == 0

    def test_page_index_optional_but_groups_present(self):
        file = make_file(write_page_index=False)
        group = file.prune_row_groups(PRED)[0]
        # no page index -> all pages kept
        assert len(file.prune_pages(group, PRED)) == 4


class TestIcebergTable:
    def make_table(self, n_files=4, **kwargs):
        files = [
            ParquetFile.write(
                SCHEMA,
                [(i, f"s{i:05d}") for i in range(base, base + 1000)],
                row_group_rows=250, page_rows=50, **kwargs)
            for base in range(0, n_files * 1000, 1000)]
        return IcebergTable.from_files("events", SCHEMA, files)

    def test_hierarchical_pruning(self):
        table = self.make_table()
        plan = table.plan_scan(Compare(">=", col("x"), lit(3900)))
        assert plan.total_files == 4
        assert len(plan.kept_files) == 1
        assert len(plan.kept_row_groups) == 1
        assert len(plan.kept_pages) == 2
        assert plan.file_pruning_ratio == pytest.approx(0.75)

    def test_no_predicate_keeps_everything(self):
        table = self.make_table()
        plan = table.plan_scan(None)
        assert len(plan.kept_files) == 4
        assert plan.page_pruning_ratio == 0.0

    def test_read_plan_rows_matches_oracle(self):
        table = self.make_table()
        predicate = And(Compare(">=", col("x"), lit(1995)),
                        Compare("<", col("x"), lit(2005)))
        plan = table.plan_scan(predicate)
        rows = table.read_plan_rows(plan, predicate)
        assert sorted(r[0] for r in rows) == list(range(1995, 2005))

    def test_missing_manifest_stats_no_file_pruning(self):
        table = self.make_table()
        for entry in table.entries:
            entry.stats = None
        plan = table.plan_scan(Compare(">=", col("x"), lit(3900)))
        assert len(plan.kept_files) == 4       # manifest can't prune
        assert len(plan.kept_row_groups) == 1  # row groups still can

    def test_backfill_manifest_from_footers(self):
        table = self.make_table()
        for entry in table.entries:
            entry.stats = None
        repaired = table.backfill_manifest()
        assert repaired == 4
        plan = table.plan_scan(Compare(">=", col("x"), lit(3900)))
        assert len(plan.kept_files) == 1

    def test_backfill_files_then_manifest(self):
        table = self.make_table(write_statistics=False,
                                write_page_index=False)
        report = table.missing_metadata_report()
        assert report["manifest_entries_missing"] == 4
        assert report["row_groups_missing"] == 16
        assert table.backfill_manifest() == 0  # footers missing too
        assert table.backfill_files() == 16
        assert table.backfill_manifest() == 4
        report = table.missing_metadata_report()
        assert all(v == 0 for v in report.values())

    def test_append(self):
        table = self.make_table()
        new_file = ParquetFile.write(SCHEMA, [(10**6, "z")])
        table.append(new_file)
        assert len(table.entries) == 5
        assert table.row_count == 4001
