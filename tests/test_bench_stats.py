"""Tests for the benchmark statistics and reporting helpers."""

import pytest

from repro.bench.reporting import Report, format_table, render_cdf
from repro.bench.stats import (
    cdf_points,
    describe,
    fraction_at_least,
    fraction_at_most,
    percentile,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 25) == 2.5

    def test_bounds(self):
        assert percentile([3, 1, 2], 0) == 1
        assert percentile([3, 1, 2], 100) == 3

    def test_single_value(self):
        assert percentile([7], 90) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestDescribe:
    def test_box_stats(self):
        stats = describe(list(range(101)))
        assert stats.count == 101
        assert stats.mean == 50
        assert stats.median == 50
        assert stats.p25 == 25
        assert stats.p90 == 90
        assert (stats.minimum, stats.maximum) == (0, 100)
        assert set(stats.row()) == {"count", "mean", "min", "p25",
                                    "median", "p75", "p90", "max"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])


class TestCdf:
    def test_points(self):
        values = [1, 2, 3, 4]
        points = cdf_points(values, [0, 2, 4, 10])
        assert points == [(0, 0.0), (2, 0.5), (4, 1.0), (10, 1.0)]

    def test_empty_values(self):
        assert cdf_points([], [1]) == [(1, 0.0)]

    def test_fractions(self):
        values = [1, 2, 3, 4]
        assert fraction_at_least(values, 3) == 0.5
        assert fraction_at_most(values, 2) == 0.5
        assert fraction_at_least([], 1) == 0.0


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["bbbb", 2.5]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "bbbb" in lines[3]

    def test_format_table_empty_rows(self):
        text = format_table(["a", "bb"], [])
        assert "bb" in text.splitlines()[0]

    def test_format_table_rejects_long_row(self):
        # Regression: the column-wise zip silently dropped the cells
        # of rows longer than the header list.
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_format_table_rejects_short_row(self):
        # A short row used to truncate *every* column to its width.
        with pytest.raises(ValueError, match="expected 2"):
            format_table(["a", "b"], [[1]])

    def test_render_cdf(self):
        text = render_cdf([(1, 0.5), (2, 1.0)], label="k")
        assert "50.0%" in text
        assert "100.0%" in text

    def test_report_compare_and_render(self):
        report = Report("Figure X")
        report.compare("median", 0.083, 0.062)
        report.table(["a"], [[1]])
        rendered = report.render()
        assert "Figure X" in rendered
        assert "paper=0.083" in rendered
