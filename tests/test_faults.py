"""Tests for the fault injection / retry / degradation stack.

Covers the deterministic fault injector, checksum-based corruption
detection, the retry policy (including hypothesis properties: the
backoff sequence is monotone, capped, and deterministic per seed), the
metadata circuit breaker, thread-safe metadata store maintenance,
graceful pruning degradation under metadata outages, and the
service-level resilience features (end-to-end timeouts, query retry).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Catalog,
    CircuitOpenError,
    CorruptionError,
    DataType,
    FaultInjector,
    FaultSpec,
    Layout,
    MetadataError,
    MetadataStore,
    MetadataTimeout,
    PartitionUnavailableError,
    QueryTimeout,
    RetryPolicy,
    RetryStats,
    Schema,
    StorageLayer,
    StorageTimeout,
)
from repro.faults import METADATA, STORAGE, CircuitBreaker
from repro.faults.retry import stable_hash64, stable_uniform
from repro.service import QueryService
from repro.storage.zonemap import ZoneMap

from conftest import make_events_rows

SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
)


def make_catalog(n_rows: int = 2000,
                 rows_per_partition: int = 100) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows),
        layout=Layout.sorted_by("ts"))
    return catalog


# ----------------------------------------------------------------------
# Stable hashing
# ----------------------------------------------------------------------
class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash64("abc") == stable_hash64("abc")
        assert stable_hash64("abc") != stable_hash64("abd")

    def test_uniform_in_unit_interval(self):
        draws = [stable_uniform(f"k{i}") for i in range(500)]
        assert all(0.0 <= u < 1.0 for u in draws)
        # Crude uniformity check: mean of 500 draws near 0.5.
        assert 0.4 < sum(draws) / len(draws) < 0.6


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    @given(seed=st.integers(0, 2**32),
           base=st.floats(0.1, 50.0),
           multiplier=st.floats(1.5, 4.0),
           cap=st.floats(50.0, 500.0),
           jitter=st.floats(0.0, 0.3),
           attempts=st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_backoff_monotone_capped_deterministic(
            self, seed, base, multiplier, cap, jitter, attempts):
        policy = RetryPolicy(max_attempts=attempts, base_ms=base,
                             multiplier=multiplier, cap_ms=cap,
                             jitter=jitter, seed=seed)
        seq = policy.backoff_sequence()
        assert len(seq) == attempts - 1
        # Capped: no step exceeds cap_ms (jitter only subtracts).
        assert all(0.0 < step <= cap for step in seq)
        # Nominal sequence is non-decreasing; with
        # multiplier * (1 - jitter) >= 1 the jittered one is too,
        # until steps hit the cap (where jitter may dip them).
        nominal = [policy.nominal_ms(i) for i in range(attempts - 1)]
        assert nominal == sorted(nominal)
        if multiplier * (1.0 - jitter) >= 1.0:
            uncapped = [s for s, n in zip(seq, nominal) if n < cap]
            assert uncapped == sorted(uncapped)
        # Deterministic per seed.
        twin = RetryPolicy(max_attempts=attempts, base_ms=base,
                           multiplier=multiplier, cap_ms=cap,
                           jitter=jitter, seed=seed)
        assert twin.backoff_sequence() == seq

    def test_different_seeds_differ(self):
        a = RetryPolicy(seed=1, jitter=0.25).backoff_sequence()
        b = RetryPolicy(seed=2, jitter=0.25).backoff_sequence()
        assert a != b

    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise StorageTimeout("injected")
            return "ok"

        stats = RetryStats()
        policy = RetryPolicy(max_attempts=4)
        assert policy.run(flaky, stats=stats) == "ok"
        assert calls["n"] == 3
        assert stats.retries == 2
        assert stats.backoff_ms > 0
        assert stats.by_class == {"StorageTimeout": 2}

    def test_exhausted_attempts_reraise_last_error(self):
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(StorageTimeout):
            policy.run(lambda: (_ for _ in ()).throw(
                StorageTimeout("always")))

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def permanent():
            calls["n"] += 1
            raise PartitionUnavailableError("gone", partition_id=9)

        with pytest.raises(PartitionUnavailableError):
            RetryPolicy(max_attempts=5).run(permanent)
        assert calls["n"] == 1

    def test_budget_exhausts_before_attempts(self):
        policy = RetryPolicy(max_attempts=10, base_ms=50.0,
                             multiplier=2.0, cap_ms=1000.0,
                             jitter=0.0, budget_ms=120.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise StorageTimeout("always")

        with pytest.raises(StorageTimeout):
            policy.run(flaky)
        # 50 + 100 > 120: the second backoff busts the budget, so only
        # one retry happens (two calls total).
        assert calls["n"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def spec(self):
        return FaultSpec(timeout_rate=0.2, throttle_rate=0.1,
                         corruption_rate=0.1, latency_rate=0.1)

    def collect(self, injector, n=200):
        outcomes = []
        for i in range(n):
            try:
                decision = injector.storage_check(i % 10)
                outcomes.append(("ok", decision.corrupt,
                                 decision.latency_ms))
            except (StorageTimeout,) as exc:
                outcomes.append(("timeout", type(exc).__name__))
            except Exception as exc:  # noqa: BLE001 — classified below
                outcomes.append(("err", type(exc).__name__))
        return outcomes

    def test_same_seed_same_schedule(self):
        a = self.collect(FaultInjector(seed=42, storage=self.spec()))
        b = self.collect(FaultInjector(seed=42, storage=self.spec()))
        assert a == b

    def test_different_seed_different_schedule(self):
        a = self.collect(FaultInjector(seed=1, storage=self.spec()))
        b = self.collect(FaultInjector(seed=2, storage=self.spec()))
        assert a != b

    def test_all_fault_kinds_fire(self):
        injector = FaultInjector(seed=3, storage=self.spec())
        self.collect(injector, n=500)
        injected = injector.injected()
        assert injected.get("storage.timeout", 0) > 0
        assert injected.get("storage.throttle", 0) > 0
        assert injected.get("storage.corruption", 0) > 0
        assert injected.get("storage.latency", 0) > 0

    def test_disabled_injector_is_clean(self):
        injector = FaultInjector(seed=3, storage=self.spec(),
                                 enabled=False)
        for _ in range(100):
            decision = injector.storage_check(1)
            assert not decision.corrupt and decision.latency_ms == 0
        assert injector.total_injected() == 0

    def test_paused_context(self):
        injector = FaultInjector(seed=3)
        injector.set_outage(STORAGE)
        with injector.paused():
            injector.storage_check(1)  # no raise while paused
        with pytest.raises(PartitionUnavailableError):
            injector.storage_check(1)

    def test_mark_unavailable_and_restore(self):
        injector = FaultInjector(seed=0)
        injector.mark_unavailable(STORAGE, 7)
        with pytest.raises(PartitionUnavailableError) as info:
            injector.storage_check(7)
        assert info.value.partition_id == 7
        injector.storage_check(8)  # other keys unaffected
        injector.restore(STORAGE, 7)
        injector.storage_check(7)

    def test_metadata_outage(self):
        from repro import MetadataUnavailableError

        injector = FaultInjector(seed=0)
        injector.set_outage(METADATA)
        with pytest.raises(MetadataUnavailableError):
            injector.metadata_check(("events", 1))
        injector.storage_check(1)  # storage scope unaffected

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(timeout_rate=0.6, throttle_rate=0.6)


# ----------------------------------------------------------------------
# Checksums and corruption
# ----------------------------------------------------------------------
class TestChecksums:
    def test_checksum_stable_and_content_sensitive(self):
        from repro.storage.micropartition import MicroPartition

        rows = make_events_rows(50)
        a = MicroPartition.from_rows(SCHEMA, rows)
        b = MicroPartition.from_rows(SCHEMA, rows)
        assert a.checksum == b.checksum
        c = MicroPartition.from_rows(SCHEMA, make_events_rows(50, seed=1))
        assert a.checksum != c.checksum

    def test_null_vs_dummy_distinguished(self):
        from repro.storage.micropartition import MicroPartition

        schema = Schema.of(x=DataType.INTEGER)
        with_null = MicroPartition.from_rows(schema, [(None,), (1,)])
        with_zero = MicroPartition.from_rows(schema, [(0,), (1,)])
        assert with_null.checksum != with_zero.checksum

    def test_verify_integrity_detects_tamper(self):
        from repro.storage.micropartition import MicroPartition

        partition = MicroPartition.from_rows(SCHEMA, make_events_rows(20))
        partition.verify_integrity()  # clean
        partition.column("score").values[0] += 1  # bit rot
        with pytest.raises(CorruptionError) as info:
            partition.verify_integrity()
        assert info.value.partition_id == partition.partition_id

    def test_injected_corruption_retries_to_success(self):
        catalog = make_catalog(500)
        injector = FaultInjector(
            seed=11, storage=FaultSpec(corruption_rate=0.3))
        catalog.enable_fault_injection(
            injector, retry_policy=RetryPolicy(max_attempts=10))
        # WHERE clause forces real partition loads (an unfiltered
        # count(*) would be answered from metadata alone). Decisions
        # re-roll per access, so some round must corrupt.
        for _ in range(10):
            result = catalog.sql(
                "SELECT count(*) FROM events WHERE value >= 0")
            assert result.rows == [(500,)]
            if catalog.storage.stats.corrupt_reads > 0:
                break
        assert catalog.storage.stats.corrupt_reads > 0
        assert injector.injected().get("storage.corruption", 0) > 0

    def test_corruption_without_retries_raises(self):
        catalog = make_catalog(500)
        catalog.enable_fault_injection(
            FaultInjector(seed=11,
                          storage=FaultSpec(corruption_rate=0.5)),
            retry_policy=RetryPolicy(max_attempts=1))
        with pytest.raises(CorruptionError):
            for _ in range(20):  # some seed roll must corrupt
                catalog.sql(
                    "SELECT count(*) FROM events WHERE value >= 0")


# ----------------------------------------------------------------------
# Storage-layer resilience
# ----------------------------------------------------------------------
class TestStorageResilience:
    def test_transient_faults_absorbed_and_counted(self):
        catalog = make_catalog(1000)
        catalog.enable_fault_injection(
            FaultInjector(seed=5, storage=FaultSpec(
                timeout_rate=0.1, throttle_rate=0.05,
                latency_rate=0.05)),
            retry_policy=RetryPolicy(max_attempts=8))
        oracle = [(1000,)]
        for _ in range(10):
            assert catalog.sql(
                "SELECT count(*) FROM events "
                "WHERE value >= 0").rows == oracle
        stats = catalog.storage.stats
        assert stats.retries > 0
        assert stats.retry_backoff_ms > 0

    def test_permanent_loss_not_retried(self):
        catalog = make_catalog(500)
        injector = catalog.enable_fault_injection(
            FaultInjector(seed=0),
            retry_policy=RetryPolicy(max_attempts=6))
        pid = catalog.tables["events"].partition_ids[0]
        injector.mark_unavailable(STORAGE, pid)
        before = catalog.storage.stats.retries
        with pytest.raises(PartitionUnavailableError):
            catalog.sql("SELECT * FROM events WHERE ts < 50")
        assert catalog.storage.stats.retries == before  # no retries
        assert catalog.storage.stats.failed_requests > 0

    def test_retry_penalty_charged_to_simulated_clock(self):
        # Fault decisions hash absolute partition ids, which depend on
        # how many partitions earlier tests allocated; 50 partitions
        # at a 30% timeout rate make "at least one retry" certain for
        # any id range (P(none) ~ 0.7^50).
        sql = "SELECT count(*) FROM events WHERE value >= 0"
        baseline = make_catalog(5000)
        base_ms = baseline.sql(sql).profile.total_ms
        catalog = make_catalog(5000)
        catalog.enable_fault_injection(
            FaultInjector(seed=5, storage=FaultSpec(
                timeout_rate=0.3)),
            retry_policy=RetryPolicy(max_attempts=10, base_ms=20.0))
        profile = catalog.sql(sql).profile
        assert profile.total_retries > 0
        assert profile.total_ms > base_ms


# ----------------------------------------------------------------------
# Metadata store: thread safety + maintenance
# ----------------------------------------------------------------------
class TestMetadataStore:
    def zone_map(self):
        from repro.storage.column import Column

        return ZoneMap.from_columns(
            {"x": Column.from_pylist(DataType.INTEGER, [1, 2, 3])})

    def test_unregister_cleans_empty_table_bucket(self):
        store = MetadataStore()
        store.register("t", 1, self.zone_map())
        store.unregister("t", 1)
        assert store.partitions_of("t") == []
        assert "t" not in store._table_partitions  # no leaked bucket

    def test_registration_order_preserved(self):
        store = MetadataStore()
        for pid in (5, 3, 9, 1):
            store.register("t", pid, self.zone_map())
        assert store.partitions_of("t") == [5, 3, 9, 1]
        store.unregister("t", 9)
        assert store.partitions_of("t") == [5, 3, 1]

    def test_unregister_unknown_raises(self):
        store = MetadataStore()
        with pytest.raises(MetadataError):
            store.unregister("t", 1)

    def test_concurrent_register_unregister(self):
        store = MetadataStore()
        zone_map = self.zone_map()
        errors: list[BaseException] = []

        def churn(base: int):
            try:
                for i in range(200):
                    pid = base * 1000 + i
                    store.register("t", pid, zone_map)
                    store.get("t", pid)
                    store.unregister("t", pid)
            except BaseException as exc:  # noqa: BLE001 — collected
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store) == 0
        assert store.partitions_of("t") == []

    def test_reads_go_through_injector(self):
        store = MetadataStore(
            fault_injector=FaultInjector(
                seed=1, metadata=FaultSpec(timeout_rate=1.0)))
        store.register("t", 1, self.zone_map())
        with pytest.raises(MetadataTimeout):
            store.get("t", 1)

    def test_retry_policy_absorbs_metadata_faults(self):
        store = MetadataStore(
            fault_injector=FaultInjector(
                seed=1, metadata=FaultSpec(timeout_rate=0.4)),
            retry_policy=RetryPolicy(max_attempts=10))
        store.register("t", 1, self.zone_map())
        for _ in range(30):
            store.get("t", 1)
        assert store.retry_stats.retries > 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            breaker.check()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_probe_lets_call_through_and_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=3)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        rejected = 0
        probed = False
        for _ in range(3):
            try:
                breaker.check()
                probed = True
            except CircuitOpenError:
                rejected += 1
        assert probed and rejected == 2
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.check()  # closed again, no raise

    def test_failed_probe_restarts_rejection_cycle(self):
        """Regression: a probe failure while OPEN used to leave
        ``_rejections_since_open`` mid-cycle, so with concurrent
        rejections in flight the next probe could be admitted after
        far fewer than ``probe_interval`` rejections — hammering a
        dependency that just proved it was still down."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=5)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # Other callers burn 3 of the 5 rejections in the cycle...
        for _ in range(3):
            with pytest.raises(CircuitOpenError):
                breaker.check()
        # ...then an in-flight probe's failure is recorded.
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1  # no double-count of the open
        # The cycle restarted: a full probe_interval of calls (4
        # rejections, then the probe) before anything is admitted.
        admitted_at = None
        for i in range(1, 11):
            try:
                breaker.check()
                admitted_at = i
                break
            except CircuitOpenError:
                pass
        assert admitted_at == 5

    def test_breaker_trips_during_metadata_outage(self):
        catalog = make_catalog(500)
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        for _ in range(10):
            result = catalog.sql("SELECT count(*) FROM events")
            assert result.rows == [(500,)]
            assert result.degraded
        breaker = catalog.metadata.breaker
        assert breaker.opens >= 1
        assert breaker.fast_failures > 0
        # Recovery: outage ends, a probe closes the breaker again.
        injector.set_outage(METADATA, down=False)
        for _ in range(2 * breaker.probe_interval + 2):
            result = catalog.sql("SELECT count(*) FROM events")
        assert not result.degraded
        assert breaker.state == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# Graceful pruning degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_outage_degrades_to_full_scan_with_correct_rows(self):
        catalog = make_catalog(2000)
        oracle = catalog.sql(
            "SELECT count(*), min(score) FROM events WHERE ts >= 500")
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        result = catalog.sql(
            "SELECT count(*), min(score) FROM events WHERE ts >= 500")
        assert result.rows == oracle.rows
        assert result.degraded
        profile = result.profile
        assert profile.degraded_partitions == 20
        # Degraded partitions cannot be pruned: everything is scanned.
        assert profile.partitions_loaded == 20
        export = profile.metrics_export()
        assert export["degraded"] == 1.0
        assert export["partitions_degraded"] == 20.0

    def test_partial_degradation_still_prunes_healthy_partitions(self):
        catalog = make_catalog(2000)
        injector = catalog.enable_fault_injection(
            FaultInjector(seed=0),
            retry_policy=RetryPolicy(max_attempts=2))
        # Permanently fail the metadata for two specific partitions.
        pids = catalog.tables["events"].partition_ids
        for pid in pids[:2]:
            injector.mark_unavailable(METADATA, ("events", pid))
        result = catalog.sql(
            "SELECT count(*) FROM events WHERE ts >= 1900")
        assert result.rows == [(100,)]
        profile = result.profile
        assert profile.degraded_partitions == 2
        # The two degraded partitions (ts 0..200) do not match the
        # predicate but must be scanned anyway; the 17 healthy
        # non-matching partitions are still pruned.
        assert profile.partitions_loaded == 3

    def test_degraded_query_skips_metadata_only_aggregate(self):
        catalog = make_catalog(1000)
        clean = catalog.sql("SELECT count(*) FROM events")
        assert clean.profile.scans[0].metadata_only
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        degraded = catalog.sql("SELECT count(*) FROM events")
        assert degraded.rows == clean.rows
        assert not degraded.profile.scans[-1].metadata_only
        assert degraded.profile.partitions_loaded == 10

    def test_explain_analyze_reports_degradation(self):
        catalog = make_catalog(500)
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        text = catalog.explain_analyze(
            "SELECT * FROM events WHERE ts < 100")
        assert "DEGRADED" in text
        assert "retries" in text

    def test_explain_analyze_clean_run(self):
        catalog = make_catalog(500)
        text = catalog.explain_analyze(
            "SELECT * FROM events WHERE ts < 100")
        assert "EXPLAIN ANALYZE" in text
        assert "degraded: no" in text
        assert "Scan events" in text

    def test_dml_unaffected_by_metadata_outage(self):
        catalog = make_catalog(500)
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        result = catalog.sql("DELETE FROM events WHERE ts < 50")
        assert result.rows == [(50,)]


# ----------------------------------------------------------------------
# Service-level resilience
# ----------------------------------------------------------------------
class TestServiceResilience:
    def test_sql_timeout_raises_query_timeout(self):
        catalog = make_catalog(500)
        service = QueryService(catalog, enable_result_cache=False)
        release = threading.Event()

        class SlowStorage(StorageLayer):
            pass

        original_load = catalog.storage.load

        def slow_load(*args, **kwargs):
            release.wait(5.0)
            return original_load(*args, **kwargs)

        catalog.storage.load = slow_load
        try:
            with pytest.raises(QueryTimeout):
                service.sql("SELECT count(*) FROM events "
                            "WHERE value > 0", timeout=0.15)
        finally:
            release.set()
            catalog.storage.load = original_load
        assert service.metrics.counter("queries_timed_out").value == 1

    def test_sql_without_timeout_unchanged(self):
        catalog = make_catalog(500)
        service = QueryService(catalog)
        assert service.sql("SELECT count(*) FROM events",
                           timeout=5.0).rows == [(500,)]

    def test_query_level_retry_rescues_transient_leak(self):
        catalog = make_catalog(500)

        class FailOnceInjector(FaultInjector):
            def __init__(self):
                super().__init__(seed=0)
                self.fired = False

            def storage_check(self, partition_id):
                if not self.fired:
                    self.fired = True
                    raise StorageTimeout("one-shot (injected)")
                return super().storage_check(partition_id)

        # No storage-level retry policy: the single fault escapes the
        # storage layer and must be absorbed by the service.
        injector = FailOnceInjector()
        catalog.storage.fault_injector = injector
        service = QueryService(
            catalog, enable_result_cache=False,
            query_retry_policy=RetryPolicy(max_attempts=3))
        result = service.sql(
            "SELECT count(*) FROM events WHERE value >= 0")
        assert result.rows == [(500,)]
        assert service.metrics.counter("queries_retried").value == 1

    def test_dml_never_retried(self):
        catalog = make_catalog(500)

        class FailOnceInjector(FaultInjector):
            def __init__(self):
                super().__init__(seed=0)
                self.fired = False

            def storage_check(self, partition_id):
                if not self.fired:
                    self.fired = True
                    raise StorageTimeout("one-shot (injected)")
                return super().storage_check(partition_id)

        catalog.storage.fault_injector = FailOnceInjector()
        service = QueryService(
            catalog, enable_result_cache=False,
            query_retry_policy=RetryPolicy(max_attempts=3))
        # DELETE loads partitions via the DML path (in-memory), so the
        # injected storage fault does not fire there; use a SELECT to
        # verify the counter then assert DML leaves it unchanged.
        service.sql("DELETE FROM events WHERE ts < 10")
        assert service.metrics.counter("queries_retried").value == 0

    def test_degraded_queries_counted(self):
        catalog = make_catalog(500)
        injector = catalog.enable_fault_injection(FaultInjector(seed=0))
        injector.set_outage(METADATA)
        service = QueryService(catalog, enable_result_cache=False)
        result = service.sql("SELECT count(*) FROM events")
        assert result.rows == [(500,)]
        assert service.metrics.counter("queries_degraded").value >= 1
        snap = service.describe()
        assert snap["queries_degraded"] >= 1
        assert "metadata_breaker" in snap
        assert snap["faults_injected"] > 0


# ----------------------------------------------------------------------
# Accounting plumbing
# ----------------------------------------------------------------------
class TestAccounting:
    def test_iostats_snapshot_and_diff_cover_new_fields(self):
        from repro.storage.storage_layer import IOStats

        stats = IOStats()
        stats.record_retry(12.5)
        stats.record_corrupt_read()
        stats.record_injected_latency(30.0)
        snap = stats.snapshot()
        assert snap.retries == 1
        assert snap.failed_requests == 1
        assert snap.retry_backoff_ms == 12.5
        assert snap.corrupt_reads == 1
        assert snap.injected_latency_ms == 30.0
        stats.record_retry(7.5)
        diff = stats.diff(snap)
        assert diff.retries == 1
        assert diff.retry_backoff_ms == 7.5
        stats.reset()
        assert stats.retries == 0
        assert stats.injected_latency_ms == 0.0

    def test_metrics_export_keys(self):
        catalog = make_catalog(500)
        profile = catalog.sql("SELECT count(*) FROM events "
                              "WHERE ts < 100").profile
        export = profile.metrics_export()
        for key in ("retries", "retry_backoff_ms",
                    "injected_latency_ms", "degraded",
                    "partitions_degraded"):
            assert key in export
        assert export["degraded"] == 0.0

    def test_resilience_summary_lists_error_classes(self):
        catalog = make_catalog(1000)
        catalog.enable_fault_injection(
            FaultInjector(seed=5,
                          storage=FaultSpec(timeout_rate=0.25)),
            retry_policy=RetryPolicy(max_attempts=10))
        profile = catalog.sql(
            "SELECT count(*) FROM events WHERE value >= 0").profile
        summary = profile.resilience_summary()
        assert "StorageTimeout" in summary
