"""Differential tests: vectorized *runtime* pruning vs scalar oracles.

PR 8 teaches the stats index to classify runtime prune decisions in
bulk: top-k boundary re-checks (:func:`topk_skip_mask`) and join-filter
summaries (:func:`join_may_join_mask`). The contract is the same as
compile-time vectorized pruning: bit-identity with the scalar path for
every zone-map pathology — NULL-only columns, empty partitions, missing
stats, degraded (stats-stripped) copies, lossy float boundaries — with
the scalar walk as the always-correct fallback.
"""

from __future__ import annotations

import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.pruning.base import ScanSet
from repro.pruning.join_pruning import JoinPruner, build_summary
from repro.pruning.stats_index import (
    StatsIndex,
    join_may_join_mask,
    topk_skip_mask,
)
from repro.pruning.summaries import MinMaxSummary, RangeSetSummary
from repro.pruning.topk_pruning import Boundary, TopKPruner
from repro.storage.micropartition import MicroPartition
from repro.types import DataType, Schema

SCHEMA = Schema.of(a=DataType.INTEGER, v=DataType.DOUBLE,
                   s=DataType.VARCHAR)

STRINGS = ["alpha", "beta", "gamma", "alp", "z", ""]

int_values = st.one_of(st.none(), st.integers(-50, 50))
float_values = st.one_of(st.none(),
                         st.floats(-50, 50, allow_nan=False))
str_values = st.one_of(st.none(), st.sampled_from(STRINGS))
rows_strategy = st.lists(
    st.tuples(int_values, float_values, str_values),
    min_size=0, max_size=10)
partitions_strategy = st.lists(rows_strategy, min_size=0, max_size=8)


def make_entries(partition_rows):
    entries = []
    for rows in partition_rows:
        partition = MicroPartition.from_rows(SCHEMA, rows)
        entries.append((partition.partition_id, partition.zone_map))
    return entries


# ----------------------------------------------------------------------
# topk_skip_mask vs the scalar TopKPruner
# ----------------------------------------------------------------------
def assert_topk_differential(entries, column, desc, value):
    index = StatsIndex(entries)
    boundary_v = Boundary(desc=desc)
    boundary_v.update_value(value)
    boundary_s = Boundary(desc=desc)
    boundary_s.update_value(value)
    vector = TopKPruner(column, boundary_v, index=index)
    scalar = TopKPruner(column, boundary_s)
    for pid, zone_map in entries:
        assert vector.should_skip(zone_map, pid) \
            == scalar.should_skip(zone_map), (column, desc, value, pid)
    assert vector.checks == scalar.checks
    assert vector.skipped == scalar.skipped
    return vector


@settings(max_examples=200, deadline=None)
@given(partition_rows=partitions_strategy,
       desc=st.booleans(),
       column=st.sampled_from(["a", "v", "s"]),
       int_bound=st.integers(-60, 60),
       float_bound=st.floats(-60, 60, allow_nan=False),
       str_bound=st.sampled_from(STRINGS))
def test_topk_mask_matches_scalar(partition_rows, desc, column,
                                  int_bound, float_bound, str_bound):
    entries = make_entries(partition_rows)
    value = {"a": int_bound, "v": float_bound, "s": str_bound}[column]
    assert_topk_differential(entries, column, desc, value)


@settings(max_examples=100, deadline=None)
@given(partition_rows=partitions_strategy, desc=st.booleans())
def test_topk_mask_raw_function_matches_oracle(partition_rows, desc):
    """The mask function itself (not just the pruner wrapper) equals
    the per-row scalar decision for every indexed row."""
    entries = make_entries(partition_rows)
    if not entries:
        return
    index = StatsIndex(entries)
    value = 7
    mask = topk_skip_mask(index, "a", desc, value)
    assert mask is not None
    boundary = Boundary(desc=desc)
    boundary.update_value(value)
    scalar = TopKPruner("a", boundary)
    for pid, zone_map in entries:
        row = index.row_of(pid)
        expected = scalar.best_possible_rank(zone_map) < boundary.rank
        assert bool(mask[row]) == expected


class TestTopKFallbackRoutes:
    def _entries(self, values):
        rows = [[(v, float(v) if v is not None else None, f"s{v}")]
                for v in values]
        return make_entries(rows)

    def test_nan_boundary_falls_back_to_scalar(self):
        entries = self._entries([1, 2, 3])
        index = StatsIndex(entries)
        boundary = Boundary(desc=True)
        boundary.update_value(math.nan)
        vector = TopKPruner("v", boundary, index=index)
        scalar = TopKPruner("v", Boundary(desc=True))
        scalar.boundary.update_value(math.nan)
        for pid, zone_map in entries:
            assert vector.should_skip(zone_map, pid) \
                == scalar.should_skip(zone_map)
        assert vector.vector_checks == 0
        assert vector.fallback_checks == len(entries)

    def test_degraded_copy_falls_back_by_identity(self):
        entries = self._entries([1, 2, 3])
        index = StatsIndex(entries)
        boundary = Boundary(desc=True)
        boundary.update_value(100)
        pruner = TopKPruner("a", boundary, index=index)
        pid, zone_map = entries[0]
        degraded = zone_map.without_stats()
        # Stats-stripped copy: the index holds the original object, so
        # the identity check rejects the mask and the scalar path
        # (which cannot prove a skip without stats) fails open.
        assert pruner.should_skip(degraded, pid) is False
        assert pruner.fallback_checks == 1
        # The original object is still mask-served and skipped.
        assert pruner.should_skip(zone_map, pid) is True
        assert pruner.vector_checks == 1

    def test_unknown_partition_falls_back(self):
        entries = self._entries([1, 2])
        index = StatsIndex(entries[:1])
        boundary = Boundary(desc=True)
        boundary.update_value(100)
        pruner = TopKPruner("a", boundary, index=index)
        pid, zone_map = entries[1]
        assert pruner.should_skip(zone_map, pid) is True
        assert pruner.vector_checks == 0
        assert pruner.fallback_checks == 1

    def test_mask_recomputed_once_per_boundary_epoch(self):
        entries = self._entries(list(range(10)))
        index = StatsIndex(entries)
        boundary = Boundary(desc=True)
        boundary.update_value(3)
        pruner = TopKPruner("a", boundary, index=index)
        for pid, zone_map in entries:
            pruner.should_skip(zone_map, pid)
        assert pruner.mask_epochs == 1
        boundary.update_value(7)  # tighten: new epoch
        for pid, zone_map in entries:
            pruner.should_skip(zone_map, pid)
        assert pruner.mask_epochs == 2
        assert pruner.vector_checks == 2 * len(entries)

    def test_inactive_boundary_checks_nothing(self):
        entries = self._entries([1, 2])
        pruner = TopKPruner("a", Boundary(desc=True),
                            index=StatsIndex(entries))
        for pid, zone_map in entries:
            assert pruner.should_skip(zone_map, pid) is False
        assert pruner.vector_checks == 0
        assert pruner.fallback_checks == 0

    def test_peek_skip_counter_free(self):
        entries = self._entries([1, 2, 3])
        boundary = Boundary(desc=True)
        boundary.update_value(100)
        pruner = TopKPruner("a", boundary, index=StatsIndex(entries))
        pid, zone_map = entries[0]
        assert pruner.peek_skip(zone_map, pid) is True
        assert pruner.checks == 0
        assert pruner.skipped == 0


# ----------------------------------------------------------------------
# join_may_join_mask vs the scalar JoinPruner
# ----------------------------------------------------------------------
def assert_join_differential(entries, column, summary):
    scan_set = ScanSet(entries)
    index = StatsIndex(entries)
    vector = JoinPruner(column, summary, index=index)
    scalar = JoinPruner(column, summary)
    got = vector.prune(scan_set)
    expected = scalar.prune(scan_set)
    assert got.kept.partition_ids == expected.kept.partition_ids
    assert got.pruned_ids == expected.pruned_ids
    assert got.checks == expected.checks
    return vector


build_values = st.lists(
    st.one_of(st.none(), st.integers(-60, 60)),
    min_size=0, max_size=30)


@settings(max_examples=200, deadline=None)
@given(partition_rows=partitions_strategy, values=build_values,
       kind=st.sampled_from(["minmax", "rangeset"]))
def test_join_mask_matches_scalar(partition_rows, values, kind):
    entries = make_entries(partition_rows)
    summary = build_summary(values, kind=kind)
    pruner = assert_join_differential(entries, "a", summary)
    if entries:
        assert pruner.mode in ("vectorized", "mixed", "fallback")


@settings(max_examples=100, deadline=None)
@given(partition_rows=partitions_strategy,
       values=st.lists(st.sampled_from(STRINGS), min_size=0,
                       max_size=12))
def test_join_mask_string_lane(partition_rows, values):
    entries = make_entries(partition_rows)
    summary = build_summary(values, kind="rangeset")
    assert_join_differential(entries, "s", summary)


class TestJoinMaskRoutes:
    def _entries(self):
        rng = random.Random(5)
        rows = [[(rng.randint(0, 100), None, None) for _ in range(5)]
                for _ in range(6)]
        return make_entries(rows)

    def test_empty_summary_prunes_everything_valued(self):
        entries = self._entries()
        summary = MinMaxSummary([])
        assert summary.is_empty
        assert_join_differential(entries, "a", summary)

    def test_bloom_summary_is_not_vectorized(self):
        entries = self._entries()
        index = StatsIndex(entries)
        summary = build_summary([1, 2, 3], kind="bloom")
        assert join_may_join_mask(index, "a", summary) is None
        pruner = JoinPruner("a", summary, index=index)
        pruner.prune(ScanSet(entries))
        assert pruner.mode == "fallback"

    def test_all_null_probe_partition_pruned(self):
        rows = [[(None, None, "x")], [(3, None, "y")]]
        entries = make_entries(rows)
        summary = RangeSetSummary([1, 2, 3, 4])
        pruner = assert_join_differential(entries, "a", summary)
        assert pruner.mode == "vectorized"

    def test_missing_column_keeps_everything(self):
        narrow = Schema.of(x=DataType.INTEGER)
        partition = MicroPartition.from_rows(narrow, [(1,)])
        entries = [(partition.partition_id, partition.zone_map)]
        summary = MinMaxSummary([10, 20])
        assert_join_differential(entries, "a", summary)

    def test_mixed_mode_on_stale_zone_map(self):
        entries = self._entries()
        index = StatsIndex(entries)
        # Replace one entry with a stats-stripped copy: identity check
        # fails for it, everything else serves from the mask.
        stale = list(entries)
        stale[0] = (stale[0][0], stale[0][1].without_stats())
        pruner = JoinPruner("a", MinMaxSummary([0, 1000]), index=index)
        pruner.prune(ScanSet(stale))
        assert pruner.mode == "mixed"
        assert pruner.vector_checks == len(entries) - 1
        assert pruner.fallback_checks == 1

    def test_rangeset_gaps_prune_between_ranges(self):
        # Partitions with tight ranges; summary has two islands.
        rows = [[(i * 10 + j, None, None) for j in range(3)]
                for i in range(10)]
        entries = make_entries(rows)
        summary = RangeSetSummary(list(range(0, 10))
                                  + list(range(80, 90)))
        pruner = assert_join_differential(entries, "a", summary)
        result = pruner.prune(ScanSet(entries))
        assert result.pruned_ids  # middle islands pruned


def test_scan_set_with_entries_keeps_degradation():
    """with_entries (used by every pruner and the order strategy) must
    preserve degraded-partition bookkeeping, or degraded fail-open
    accounting silently resets after any pruning pass."""
    rows = [[(1, None, None)], [(2, None, None)]]
    entries = make_entries(rows)
    degraded = ScanSet(entries, degraded_ids=[entries[0][0]])
    reordered = degraded.with_entries(list(reversed(degraded.entries)))
    assert reordered.degraded_ids == degraded.degraded_ids
    # A subset drop removes vanished ids from the degraded set too.
    subset = degraded.with_entries(degraded.entries[1:])
    assert subset.degraded_ids == frozenset()
