"""Property-based end-to-end tests: the engine with all pruning enabled
must return exactly the rows a brute-force oracle computes, for random
data, layouts, predicates, and query shapes."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Catalog, DataType, Layout, Schema
from repro.plan.compiler import CompilerOptions

SCHEMA = Schema.of(a=DataType.INTEGER, b=DataType.INTEGER,
                   c=DataType.VARCHAR)

row_values = st.tuples(
    st.one_of(st.none(), st.integers(-40, 40)),
    st.one_of(st.none(), st.integers(-40, 40)),
    st.one_of(st.none(), st.sampled_from(["u", "v", "w", "uv"])),
)

layouts = st.sampled_from([
    Layout.sorted_by("a"),
    Layout.random(seed=3),
    Layout.clustered_by("a", jitter=3, seed=1),
    Layout.natural(),
])

comparisons = st.tuples(
    st.sampled_from(["a", "b"]),
    st.sampled_from(["<", "<=", "=", ">", ">=", "<>"]),
    st.integers(-45, 45),
)


def build_catalog(rows, layout):
    catalog = Catalog(rows_per_partition=7)
    catalog.create_table_from_rows("t", SCHEMA, rows, layout=layout)
    return catalog


def predicate_sql(comparison):
    column, op, value = comparison
    return f"{column} {op} {value}"


def matches(row, comparison):
    column, op, value = comparison
    actual = row[0] if column == "a" else row[1]
    if actual is None:
        return False
    return {
        "<": actual < value, "<=": actual <= value,
        "=": actual == value, ">": actual > value,
        ">=": actual >= value, "<>": actual != value,
    }[op]


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_values, min_size=1, max_size=60),
       layout=layouts, comparison=comparisons)
def test_filter_query_matches_oracle(rows, layout, comparison):
    catalog = build_catalog(rows, layout)
    result = catalog.sql(
        f"SELECT * FROM t WHERE {predicate_sql(comparison)}")
    expected = [r for r in rows if matches(r, comparison)]
    assert sorted(result.rows, key=repr) == sorted(expected, key=repr)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_values, min_size=1, max_size=60),
       layout=layouts, comparison=comparisons,
       k=st.integers(0, 20))
def test_limit_query_returns_exactly_k(rows, layout, comparison, k):
    catalog = build_catalog(rows, layout)
    result = catalog.sql(
        f"SELECT * FROM t WHERE {predicate_sql(comparison)} LIMIT {k}")
    expected = [r for r in rows if matches(r, comparison)]
    assert result.num_rows == min(k, len(expected))
    for row in result.rows:
        assert matches(row, comparison)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_values, min_size=1, max_size=60),
       layout=layouts, k=st.integers(1, 15),
       desc=st.booleans(),
       order_column=st.sampled_from(["a", "b"]))
def test_topk_matches_oracle(rows, layout, k, desc, order_column):
    catalog = build_catalog(rows, layout)
    direction = "DESC" if desc else "ASC"
    result = catalog.sql(
        f"SELECT * FROM t ORDER BY {order_column} {direction} "
        f"LIMIT {k}")
    index = 0 if order_column == "a" else 1

    def key(row):
        value = row[index]
        # NULLS LAST in both directions
        if value is None:
            return (1, 0)
        return (0, -value if desc else value)

    expected = sorted(rows, key=key)[:k]
    assert [key(r) for r in result.rows] == [key(r) for r in expected]


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(row_values, min_size=1, max_size=60),
       layout=layouts, comparison=comparisons, k=st.integers(1, 10))
def test_pruning_never_changes_results(rows, layout, comparison, k):
    """All pruning on vs all pruning off: identical results."""
    sql = (f"SELECT * FROM t WHERE {predicate_sql(comparison)} "
           f"ORDER BY a DESC LIMIT {k}")
    enabled = build_catalog(rows, layout).sql(sql)
    disabled = build_catalog(rows, layout).sql(
        sql, CompilerOptions(
            enable_filter_pruning=False, enable_limit_pruning=False,
            enable_topk_pruning=False, enable_join_pruning=False,
            topk_boundary_init=False))

    def key(row):
        return (row[0] is None, row[0])

    # a-values of results must agree (ties may reorder other columns)
    assert [key(r) for r in enabled.rows] == \
        [key(r) for r in disabled.rows]


@settings(max_examples=40, deadline=None)
@given(
    fact_rows=st.lists(
        st.tuples(st.one_of(st.none(), st.integers(0, 20)),
                  st.integers(-10, 10)),
        min_size=1, max_size=50),
    dim_keys=st.lists(st.integers(0, 20), min_size=0, max_size=8,
                      unique=True),
)
def test_join_matches_oracle(fact_rows, dim_keys):
    fact_schema = Schema.of(fk=DataType.INTEGER, v=DataType.INTEGER)
    dim_schema = Schema.of(key=DataType.INTEGER,
                           label=DataType.VARCHAR)
    catalog = Catalog(rows_per_partition=5)
    catalog.create_table_from_rows("f", fact_schema, fact_rows,
                                   layout=Layout.sorted_by("fk"))
    dim_rows = [(key, f"d{key}") for key in dim_keys]
    catalog.create_table_from_rows("d", dim_schema, dim_rows)
    result = catalog.sql("SELECT * FROM f JOIN d ON fk = key")
    dim_map = dict(dim_rows)
    expected = [(fk, v, fk, dim_map[fk]) for fk, v in fact_rows
                if fk is not None and fk in dim_map]
    assert sorted(result.rows) == sorted(expected)


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(row_values, min_size=1, max_size=60),
       layout=layouts, k=st.integers(1, 12),
       leading_desc=st.booleans(), secondary_desc=st.booleans())
def test_multi_key_topk_matches_oracle(rows, layout, k, leading_desc,
                                       secondary_desc):
    catalog = build_catalog(rows, layout)
    d1 = "DESC" if leading_desc else "ASC"
    d2 = "DESC" if secondary_desc else "ASC"
    result = catalog.sql(
        f"SELECT * FROM t ORDER BY a {d1}, b {d2} LIMIT {k}")

    def component(value, desc):
        if value is None:
            return (1, 0)
        return (0, -value if desc else value)

    def key(row):
        return (component(row[0], leading_desc),
                component(row[1], secondary_desc))

    expected = sorted(rows, key=key)[:k]
    assert [key(r) for r in result.rows] == [key(r) for r in expected]
