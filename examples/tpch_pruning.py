"""Standalone §8.3 analysis: why TPC-H understates pruning.

Builds the mini TPC-H twice — clustered on l_shipdate/o_orderdate and
unclustered — measures every query's pruning ratio, and contrasts the
result with the production-like synthetic workload.

Run with: python examples/tpch_pruning.py
"""

import statistics

from repro.bench.reporting import format_table
from repro.pruning.flow import PruningFlow
from repro.workload import Platform, PlatformConfig, WorkloadGenerator
from repro.workload.tpch import (
    TpchConfig,
    build_tpch,
    measure_query_pruning,
    tpch_queries,
)


def tpch_ratios(cluster: bool) -> list[float]:
    catalog = build_tpch(TpchConfig(orders_count=4000, cluster=cluster))
    ratios = []
    for query in tpch_queries():
        total, pruned = measure_query_pruning(catalog, query)
        ratios.append(pruned / total if total else 0.0)
    return ratios


def main() -> None:
    clustered = tpch_ratios(cluster=True)
    unclustered = tpch_ratios(cluster=False)

    rows = [[f"Q{i + 1:02d}", f"{clustered[i]:.1%}",
             f"{unclustered[i]:.1%}"] for i in range(22)]
    print(format_table(["query", "clustered", "default layout"], rows))
    print(f"\nclustered: avg {sum(clustered) / 22:.1%}, "
          f"median {statistics.median(clustered):.1%} "
          f"(paper: avg 28.7%, median 8.3%)")
    print(f"default  : avg {sum(unclustered) / 22:.1%}, "
          f"median {statistics.median(unclustered):.1%} "
          f"(paper: no pruning with default clustering)")

    # Contrast with a production-like workload.
    platform = Platform(PlatformConfig(seed=1, n_small_tables=6,
                                       n_medium_tables=4,
                                       n_large_tables=3,
                                       n_xlarge_tables=1))
    generator = WorkloadGenerator(platform, seed=2)
    flow = PruningFlow()
    for query in generator.generate(300):
        flow.add(platform.catalog.sql(query.sql).profile.flow_record())
    print(f"\nproduction-like workload: "
          f"{flow.platform_pruning_ratio():.1%} of all addressed "
          f"micro-partitions pruned (paper: 99.4%)")
    print("TPC-H understates pruning because its predicates are far "
          "less selective\nthan real workloads and offer no LIMIT or "
          "top-k pruning opportunities (§8.3).")


if __name__ == "__main__":
    main()
