"""Pruning over an open-format data lake (§8.1).

Builds an Iceberg-like table of Parquet-like files and shows the
hierarchical pruning path — manifest (file) level, row-group level,
page level — plus the metadata backfill story: files written without
statistics prune nothing until Snowflake reconstructs their metadata.

Run with: python examples/iceberg_lake.py
"""

from repro.expr.ast import And, Compare, col, lit
from repro.formats import IcebergTable, ParquetFile
from repro.types import DataType, Schema

SCHEMA = Schema.of(event_id=DataType.INTEGER,
                   payload=DataType.VARCHAR)

PREDICATE = And(Compare(">=", col("event_id"), lit(61_000)),
                Compare("<", col("event_id"), lit(62_000)))


def build_files(write_statistics: bool) -> list[ParquetFile]:
    files = []
    for base in range(0, 64_000, 8000):
        rows = [(i, f"event-{i}") for i in range(base, base + 8000)]
        files.append(ParquetFile.write(
            SCHEMA, rows, row_group_rows=2000, page_rows=500,
            write_statistics=write_statistics,
            write_page_index=write_statistics))
    return files


def describe(plan) -> str:
    return (f"files {len(plan.kept_files)}/{plan.total_files}, "
            f"row groups {len(plan.kept_row_groups)}/"
            f"{plan.total_row_groups}, "
            f"pages {len(plan.kept_pages)}/{plan.total_pages}")


def main() -> None:
    # A well-written lake: stats at every level of the hierarchy.
    table = IcebergTable.from_files("events", SCHEMA,
                                    build_files(write_statistics=True))
    plan = table.plan_scan(PREDICATE)
    print("-- lake with full metadata --")
    print(f"scan plan: {describe(plan)}")
    print(f"pruning: files {plan.file_pruning_ratio:.0%}, "
          f"row groups {plan.row_group_pruning_ratio:.0%}, "
          f"pages {plan.page_pruning_ratio:.0%}")
    rows = table.read_plan_rows(plan, PREDICATE)
    print(f"rows read: {len(rows)} (expected 1000)")

    # The same data written by a statistics-less writer: no pruning
    # anywhere until metadata is backfilled.
    sloppy = IcebergTable.from_files(
        "events_raw", SCHEMA, build_files(write_statistics=False))
    print("\n-- lake without metadata --")
    print(f"missing: {sloppy.missing_metadata_report()}")
    plan = sloppy.plan_scan(PREDICATE)
    print(f"scan plan before backfill: {describe(plan)}")

    # Backfill: one full scan reconstructs row-group and page stats,
    # then the manifest is repaired from the Parquet footers.
    groups = sloppy.backfill_files()
    entries = sloppy.backfill_manifest()
    print(f"backfilled {groups} row groups, {entries} manifest "
          f"entries")
    plan = sloppy.plan_scan(PREDICATE)
    print(f"scan plan after backfill:  {describe(plan)}")
    rows = sloppy.read_plan_rows(plan, PREDICATE)
    print(f"rows read: {len(rows)} (expected 1000)")


if __name__ == "__main__":
    main()
