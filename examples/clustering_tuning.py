"""Operating the platform: clustering health, reclustering, EXPLAIN,
metadata-only aggregates, and persistence.

A tour of the maintenance-side features: diagnose a badly laid-out
table with clustering_information, fix it with recluster, inspect plans
with explain, answer aggregates from metadata alone, and save/load the
catalog.

Run with: python examples/clustering_tuning.py
"""

import random
import tempfile

from repro import Catalog, DataType, Layout, Schema


def main() -> None:
    rng = random.Random(5)
    catalog = Catalog(rows_per_partition=500)
    schema = Schema.of(
        event_time=DataType.INTEGER,
        source=DataType.VARCHAR,
        bytes_sent=DataType.INTEGER,
    )
    # Ingested in arrival order that has nothing to do with event time:
    # the classic badly-clustered log table.
    rows = [(rng.randrange(50_000), f"host{rng.randrange(40):02d}",
             rng.randrange(10**6)) for _ in range(50_000)]
    catalog.create_table_from_rows("logs", schema, rows,
                                   layout=Layout.random(seed=6))

    probe = ("SELECT * FROM logs WHERE event_time BETWEEN 41000 "
             "AND 41999")

    print("-- before reclustering --")
    print(catalog.clustering_information("logs", "event_time"))
    result = catalog.sql(probe)
    print(f"probe query: loaded "
          f"{result.profile.partitions_loaded}/"
          f"{result.profile.total_partitions} partitions")

    catalog.recluster("logs", "event_time")
    print("\n-- after reclustering on event_time --")
    print(catalog.clustering_information("logs", "event_time"))
    result = catalog.sql(probe)
    print(f"probe query: loaded "
          f"{result.profile.partitions_loaded}/"
          f"{result.profile.total_partitions} partitions")

    print("\n-- EXPLAIN --")
    print(catalog.explain(probe))

    # Global aggregates never touch data: zone maps already know the
    # answer.
    print("\n-- metadata-only aggregates --")
    print(catalog.explain(
        "SELECT count(*) AS n, min(event_time) AS lo, "
        "max(bytes_sent) AS hi FROM logs"))
    aggregate = catalog.sql(
        "SELECT count(*) AS n, min(event_time) AS lo, "
        "max(bytes_sent) AS hi FROM logs")
    print(f"result: {aggregate.rows[0]} "
          f"(partitions loaded: {aggregate.profile.partitions_loaded})")

    # Persistence round trip.
    with tempfile.TemporaryDirectory() as tmp:
        catalog.save(tmp)
        reloaded = Catalog.load(tmp)
        check = reloaded.sql(probe)
        print(f"\n-- reloaded catalog from disk --")
        print(f"probe query on reloaded catalog: "
              f"{check.num_rows} rows, loaded "
              f"{check.profile.partitions_loaded} partitions")


if __name__ == "__main__":
    main()
