"""Quickstart: build a table, run SQL, watch partitions get pruned.

Run with: python examples/quickstart.py
"""

from repro import Catalog, DataType, Layout, Schema


def main() -> None:
    # A catalog owns storage, metadata, and query execution.
    catalog = Catalog(rows_per_partition=1000)

    # 100k events, physically sorted by event time — the layout that
    # makes min/max zone maps effective.
    schema = Schema.of(
        ts=DataType.INTEGER,
        user_id=DataType.INTEGER,
        action=DataType.VARCHAR,
        duration_ms=DataType.INTEGER,
    )
    rows = [
        (i, i * 7919 % 10_000, ("view", "click", "buy")[i % 3],
         (i * 131) % 60_000)
        for i in range(100_000)
    ]
    catalog.create_table_from_rows("events", schema, rows,
                                   layout=Layout.sorted_by("ts"))
    print(f"events: {catalog.tables['events'].num_partitions} "
          f"micro-partitions of 1000 rows")

    # 1. Filter pruning: the compiler consults zone maps and drops
    #    partitions that cannot contain matches.
    result = catalog.sql(
        "SELECT * FROM events WHERE ts BETWEEN 42000 AND 42999")
    print("\n-- filter pruning --")
    print(f"rows: {result.num_rows}")
    print(result.profile.pruning_summary())

    # 2. LIMIT pruning: fully-matching partitions let the scan set
    #    shrink to the minimum number of files covering k rows.
    result = catalog.sql(
        "SELECT * FROM events WHERE ts >= 90000 LIMIT 10")
    print("\n-- LIMIT pruning --")
    print(f"rows: {result.num_rows}")
    print(result.profile.pruning_summary())

    # 3. Top-k pruning: the TopK heap's boundary value feeds back into
    #    the scan, skipping partitions that cannot beat the k-th best.
    result = catalog.sql(
        "SELECT * FROM events ORDER BY ts DESC LIMIT 5")
    print("\n-- top-k pruning --")
    print(f"top ts values: {[r[0] for r in result.rows]}")
    print(result.profile.pruning_summary())


if __name__ == "__main__":
    main()
