"""The paper's running example: siting an animal observation post.

Recreates the IUCN scenario used throughout §3-§6: a `trails` table of
mountain trails and a `tracking_data` table of animal sightings. Each
query exercises one pruning technique, ending with the combined query
that uses filter, join, and top-k pruning on one table scan.

Run with: python examples/wildlife_observatory.py
"""

import random

from repro import Catalog, DataType, Layout, Schema

MOUNTAINS = ["matterhorn", "eiger", "jungfrau", "moench", "weisshorn",
             "dom", "rigi", "pilatus"]
SPECIES = ["Alpine Ibex", "Alpine Marmot", "Alpine Chough", "Chamois",
           "Red Deer", "Golden Eagle", "Bearded Vulture"]


def build_catalog(seed: int = 7) -> Catalog:
    rng = random.Random(seed)
    catalog = Catalog(rows_per_partition=500)

    # trails(mountain, name, altit, unit): altitude recorded in feet or
    # meters depending on the surveyor (§3's complex predicate).
    trails_schema = Schema.of(
        mountain=DataType.VARCHAR,
        name=DataType.VARCHAR,
        altit=DataType.INTEGER,
        unit=DataType.VARCHAR,
    )
    trail_kinds = ["Marked-North-Ridge", "Marked-South-Ridge",
                   "Marked-East-Ridge", "Unmarked", "Basecamp",
                   "Valley-Path"]
    trails = []
    for i in range(4000):
        unit = rng.choice(["feet", "meters"])
        altitude = rng.randint(3000, 15000) if unit == "feet" \
            else rng.randint(900, 4500)
        trails.append((rng.choice(MOUNTAINS),
                       rng.choice(trail_kinds), altitude, unit))
    catalog.create_table_from_rows("trails", trails_schema, trails,
                                   layout=Layout.sorted_by("name"))

    # tracking_data(species, s, num_sightings, area): s is the animal's
    # height in cm (Figure 5 uses realistic values).
    tracking_schema = Schema.of(
        species=DataType.VARCHAR,
        s=DataType.INTEGER,
        num_sightings=DataType.INTEGER,
        area=DataType.VARCHAR,
    )
    tracking = []
    for i in range(20_000):
        species = rng.choice(SPECIES)
        height = {"Alpine Ibex": (70, 105), "Alpine Marmot": (12, 18),
                  "Alpine Chough": (34, 40), "Chamois": (70, 80),
                  "Red Deer": (95, 130), "Golden Eagle": (66, 100),
                  "Bearded Vulture": (94, 125)}[species]
        tracking.append((species, rng.randint(*height),
                         rng.randint(0, 5000), rng.choice(MOUNTAINS)))
    catalog.create_table_from_rows(
        "tracking_data", tracking_schema, tracking,
        layout=Layout.sorted_by("species"))
    return catalog


def show(title: str, result) -> None:
    print(f"\n-- {title} --")
    print(f"rows returned: {result.num_rows}"
          + (f", first: {result.rows[0]}" if result.rows else ""))
    print(result.profile.pruning_summary())


def main() -> None:
    catalog = build_catalog()

    # §3: filter pruning with a complex predicate — unit conversion via
    # IF plus an imprecise LIKE rewrite.
    show("§3 filter pruning (complex expressions)", catalog.sql("""
        SELECT * FROM trails
        WHERE IF(unit = 'feet', altit * 0.3048, altit) > 1500
          AND name LIKE 'Marked-%-Ridge'
    """))

    # §4: LIMIT pruning — fully-matching partitions cover k rows.
    show("§4 LIMIT pruning", catalog.sql("""
        SELECT * FROM tracking_data
        WHERE species LIKE 'Alpine%' AND s >= 50
        LIMIT 3
    """))

    # §5: top-k pruning — boundary value feedback into the scan.
    show("§5 top-k pruning", catalog.sql("""
        SELECT * FROM tracking_data
        WHERE species LIKE 'Alpine%' AND s >= 50
        ORDER BY num_sightings DESC LIMIT 3
    """))

    # §6: join pruning — the selective trails filter shrinks the build
    # side; its value summary prunes tracking_data's probe partitions;
    # top-k pruning stacks on top (three techniques on one scan).
    show("§6 combined filter + join + top-k pruning", catalog.sql("""
        SELECT * FROM tracking_data d JOIN trails t
            ON d.area = t.mountain
        WHERE IF(t.unit = 'feet', t.altit * 0.3048, t.altit) > 1500
          AND t.name LIKE 'Marked-%-Ridge'
          AND d.species LIKE 'Alpine%' AND d.s >= 50
        ORDER BY d.num_sightings DESC LIMIT 3
    """))


if __name__ == "__main__":
    main()
