"""A BI dashboard session: schema probes, top-k widgets, and the
predicate cache (§8.2).

Simulates the access patterns the paper attributes to BI tools: a
LIMIT 0 schema probe, default-LIMIT previews, repeated top-10 widgets
(where the predicate cache pays off), and DML that forces cache
invalidation while pruning keeps working.

Run with: python examples/bi_dashboard.py
"""

import random

from repro import Catalog, DataType, Layout, Schema
from repro.expr.ast import Compare, col, lit


def build_catalog() -> Catalog:
    rng = random.Random(99)
    catalog = Catalog(rows_per_partition=500)
    schema = Schema.of(
        day=DataType.INTEGER,
        region=DataType.VARCHAR,
        product=DataType.VARCHAR,
        revenue=DataType.INTEGER,
    )
    regions = ["emea", "amer", "apac"]
    products = [f"sku-{i:03d}" for i in range(40)]
    rows = [
        (rng.randrange(365), rng.choice(regions),
         rng.choice(products), rng.randrange(100_000))
        for _ in range(50_000)
    ]
    catalog.create_table_from_rows("sales", schema, rows,
                                   layout=Layout.clustered_by(
                                       "day", jitter=200, seed=1))
    catalog.enable_predicate_cache()
    return catalog


def main() -> None:
    catalog = build_catalog()

    # The dashboard first probes the schema with LIMIT 0 (§4: "some
    # BI-tools issue queries with LIMIT 0 appended").
    probe = catalog.sql("SELECT * FROM sales LIMIT 0")
    print("-- schema probe (LIMIT 0) --")
    print(f"columns: {probe.schema.names()}, partitions loaded: "
          f"{probe.profile.partitions_loaded}")

    # A preview widget with the tool's default LIMIT.
    preview = catalog.sql("SELECT * FROM sales LIMIT 100")
    print("\n-- preview (LIMIT 100) --")
    print(preview.profile.pruning_summary())

    # The top-10 revenue widget: first render is a cache miss, the
    # refresh hits the top-k predicate cache.
    widget_sql = ("SELECT * FROM sales WHERE region = 'emea' "
                  "ORDER BY revenue DESC LIMIT 10")
    first = catalog.sql(widget_sql)
    refresh = catalog.sql(widget_sql)
    print("\n-- top-10 widget --")
    print(f"first render : {first.profile.partitions_loaded} "
          f"partitions, cache hit: "
          f"{first.profile.scans[0].cache_hit}")
    print(f"refresh      : {refresh.profile.partitions_loaded} "
          f"partitions, cache hit: "
          f"{refresh.profile.scans[0].cache_hit}")

    # New data lands: INSERTs are safe for the cache — appended
    # partitions join the cached scan list automatically.
    catalog.insert("sales", [(400, "emea", "sku-new", 10**6)])
    after_insert = catalog.sql(widget_sql)
    print("\n-- after INSERT of a record-breaking sale --")
    print(f"top revenue now: {after_insert.rows[0][3]} "
          f"(cache hit: {after_insert.profile.scans[0].cache_hit})")

    # An UPDATE to the ordering column invalidates the top-k entry
    # (§8.2); the next render falls back to boundary-based pruning and
    # stays correct.
    catalog.update_where("sales",
                         Compare("=", col("product"), lit("sku-new")),
                         "revenue", lambda old: 0)
    after_update = catalog.sql(widget_sql)
    print("\n-- after UPDATE of the ordering column --")
    print(f"top revenue now: {after_update.rows[0][3]} "
          f"(cache hit: {after_update.profile.scans[0].cache_hit})")
    cache = catalog.predicate_cache
    print(f"cache stats: hits={cache.hits} misses={cache.misses} "
          f"invalidations={cache.invalidations}")


if __name__ == "__main__":
    main()
