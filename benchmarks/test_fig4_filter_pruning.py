"""Figure 4: impact of filter pruning on SELECT queries with at least
one predicate.

Paper: pruning ratio measured relative to the query's *total*
partitions (including unfiltered scans); ~36% of queries prune >= 90%
of partitions; ~27% of queries have prunable filters but prune 0%.
"""

from repro.bench.reporting import Report, render_cdf
from repro.bench.stats import cdf_points, describe
from repro.pruning.base import PruneCategory

PAPER_SHARE_OVER_90 = 0.36
PAPER_SHARE_ZERO = 0.27


def analyze(flow):
    ratios = []
    for record in flow.records:
        if not record.eligible.get(PruneCategory.FILTER, False):
            continue
        ratios.append(record.ratio(PruneCategory.FILTER,
                                   relative_to_query=True))
    over_90 = sum(1 for r in ratios if r >= 0.9) / len(ratios)
    zero = sum(1 for r in ratios if r == 0.0) / len(ratios)
    return ratios, over_90, zero


def test_fig4_filter_pruning(benchmark, mixed_run):
    ratios, over_90, zero = benchmark.pedantic(
        analyze, args=(mixed_run.flow,), rounds=1, iterations=1)

    report = Report("Figure 4 — filter pruning impact "
                    "(queries with >= 1 prunable predicate)")
    box = describe(ratios)
    report.add(f"  queries: {box.count}")
    report.compare("share pruning >= 90%", PAPER_SHARE_OVER_90,
                   round(over_90, 3))
    report.compare("share pruning exactly 0%", PAPER_SHARE_ZERO,
                   round(zero, 3))
    report.compare("median ratio", "high", round(box.median, 3))
    report.add(render_cdf(
        cdf_points(ratios, [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]),
        label="filter pruning ratio"))
    report.print()

    # Shape: a large cluster of queries prunes almost everything, and a
    # substantial cluster prunes nothing (wide ranges / poor layout).
    assert over_90 > 0.2
    assert 0.05 < zero < 0.45
    assert box.mean > 0.4
