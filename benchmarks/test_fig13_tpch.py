"""Figure 13 / §8.3: pruning ratios on TPC-H, clustered on l_shipdate
and o_orderdate.

Paper (SF100, XSMALL warehouse): average pruning ratio 28.7% over the
workload, median per-query ratio 8.3% — far below real workloads;
pruning comes almost entirely from date-range filters on LINEITEM and
ORDERS; many queries prune nothing.
"""

import statistics

from repro.bench.reporting import Report
from repro.workload.tpch import (
    TpchConfig,
    build_tpch,
    measure_query_pruning,
    tpch_queries,
)

PAPER_AVG = 0.287
PAPER_MEDIAN = 0.083


def run():
    catalog = build_tpch(TpchConfig(orders_count=8000, seed=5))
    rows = []
    for query in tpch_queries():
        total, pruned = measure_query_pruning(catalog, query)
        rows.append((query.number, total, pruned,
                     pruned / total if total else 0.0))
    return rows


def test_fig13_tpch(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    ratios = [r[3] for r in rows]
    average = sum(ratios) / len(ratios)
    median = statistics.median(ratios)
    report = Report("Figure 13 — TPC-H pruning ratios "
                    "(clustered on l_shipdate / o_orderdate)")
    report.table(
        ["query", "partitions", "pruned", "ratio"],
        [[f"Q{n:02d}", total, pruned, f"{ratio:.1%}"]
         for n, total, pruned, ratio in rows])
    report.compare("average pruning ratio", PAPER_AVG,
                   round(average, 3))
    report.compare("median per-query ratio", PAPER_MEDIAN,
                   round(median, 3))
    report.print()

    # Shape: TPC-H prunes far less than the production-like workload;
    # averages land in the paper's ballpark.
    assert 0.15 < average < 0.45
    assert median < 0.20
    # Date-clustered range queries prune best; Q18 (no base predicates)
    # prunes nothing.
    by_number = {n: ratio for n, _, _, ratio in rows}
    assert by_number[6] > 0.6
    assert by_number[14] > 0.6
    assert by_number[18] == 0.0
    zero_queries = sum(1 for r in ratios if r == 0.0)
    assert zero_queries >= 5  # many queries cannot prune at all
