#!/usr/bin/env python
"""PR benchmark report: plan-shape compiled-plan cache (repro.plancache).

Measures the "compile once, serve millions" claim on a repetitive
fleet workload and writes the results to ``BENCH_PR6.json`` (for CI
artifact upload and regression tracking):

1. **Compile-time reduction** — a >= 500-query stream drawn from a
   small pool of plan shapes (the Figure-12 regime: most traffic
   repeats a few shapes with fresh literals) over a *wide* table,
   where parse+bind dominates cold compile cost. Gates: >= 5x
   reduction in aggregate simulated compile time with the plan cache
   on vs off, and a lower fleet-report p99 compile latency.
2. **Differential safety** — the identical stream, interleaved with
   DML, reclustering, and a drop/recreate schema change, must return
   bit-identical rows with the cache on and off (gate: zero
   divergence), and the schema change must be caught by the
   fail-closed fingerprint check (gate: stale eviction observed,
   zero rebind fallbacks).
3. **Wiring visibility** — hit ratio in the fleet report, the
   compile-latency CDF, EXPLAIN's cache footer, and telemetry flags.

Usage::

    PYTHONPATH=src python benchmarks/bench_plancache_report.py
        [--quick] [--output BENCH_PR6.json]

``--quick`` shrinks the stream for CI smoke runs (every gate still
applies; the stream keeps >= 500 queries — the workload is cheap).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.obs.fleet import (  # noqa: E402
    latency_percentiles,
    render_fleet_report,
)
from repro.storage.clustering import Layout  # noqa: E402
from repro.types import DataType, Schema  # noqa: E402

#: a BI-style wide fact table: a handful of predicate columns plus
#: dozens of payload columns that make full-width binding expensive
#: (and that compile-time schema pruning never has to look at).
N_PAYLOAD_COLUMNS = 44

WIDE_SCHEMA = Schema.of(
    ts=DataType.INTEGER,
    category=DataType.VARCHAR,
    value=DataType.DOUBLE,
    score=DataType.INTEGER,
    **{f"pay{i:02d}": DataType.INTEGER
       for i in range(N_PAYLOAD_COLUMNS)},
)

CATEGORIES = ("alpha", "beta", "gamma", "delta")

#: the shape pool: every template is one plan shape; each draw fills
#: in fresh literals, so with the plan cache on the first draw per
#: shape compiles and every later draw only rebinds.
TEMPLATES = (
    "SELECT ts, value FROM wide WHERE ts BETWEEN {lo} AND {hi}",
    "SELECT ts, score FROM wide WHERE ts >= {lo} AND score >= {s} "
    "ORDER BY score DESC LIMIT 11",
    "SELECT count(*) AS c FROM wide WHERE ts < {hi}",
    "SELECT category, count(*) AS c FROM wide WHERE ts < {hi} "
    "GROUP BY category ORDER BY category",
    "SELECT ts, value FROM wide WHERE category = '{cat}' "
    "AND value >= {v} ORDER BY ts LIMIT 23",
    "SELECT max(value) AS m FROM wide WHERE ts BETWEEN {lo} AND {hi} "
    "AND category IN ('alpha', 'beta')",
    "SELECT ts FROM wide WHERE value <= {v} AND score < {s} "
    "ORDER BY ts DESC LIMIT 7",
    "SELECT min(ts) AS lo, max(ts) AS hi FROM wide WHERE value > {v}",
    "SELECT ts, category FROM wide WHERE score BETWEEN {s} "
    "AND {s2} LIMIT 31",
    "SELECT count(*) AS c FROM wide WHERE category = '{cat}' "
    "AND ts >= {lo}",
)


def make_catalog(n_rows: int, rows_per_partition: int,
                 plan_cache: bool) -> Catalog:
    rng = random.Random(7)
    rows = [
        (i, rng.choice(CATEGORIES), round(rng.uniform(0, 1000), 3),
         rng.randrange(1_000_000),
         *(i * 31 + c for c in range(N_PAYLOAD_COLUMNS)))
        for i in range(n_rows)
    ]
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows("wide", WIDE_SCHEMA, rows,
                                   layout=Layout.sorted_by("ts"))
    if plan_cache:
        catalog.enable_plan_cache()
    catalog.enable_telemetry(capacity=16384)
    return catalog


def make_stream(n_queries: int, n_rows: int,
                seed: int = 3) -> list[str]:
    rng = random.Random(seed)
    stream = []
    for _ in range(n_queries):
        template = rng.choice(TEMPLATES)
        lo = rng.randrange(n_rows)
        s = rng.randrange(900_000)
        stream.append(template.format(
            lo=lo, hi=lo + rng.randrange(n_rows // 4),
            s=s, s2=s + rng.randrange(100_000),
            v=round(rng.uniform(0, 1000), 2),
            cat=rng.choice(CATEGORIES)))
    return stream


# ----------------------------------------------------------------------
# 1. Aggregate compile time + p99, cache on vs off
# ----------------------------------------------------------------------
def bench_compile_reduction(stream: list[str], n_rows: int,
                            rows_per_partition: int) -> dict:
    def run(plan_cache: bool) -> dict:
        catalog = make_catalog(n_rows, rows_per_partition, plan_cache)
        started = time.perf_counter()
        compile_ms = 0.0
        for sql in stream:
            compile_ms += catalog.sql(sql).profile.compile_ms
        wall_s = time.perf_counter() - started
        percentiles = latency_percentiles(
            catalog.telemetry.records()).get("compile_ms", {})
        out = {
            "aggregate_compile_ms": round(compile_ms, 3),
            "compile_p50_ms": percentiles.get("p50", 0.0),
            "compile_p99_ms": percentiles.get("p99", 0.0),
            "wall_s": round(wall_s, 4),
        }
        if plan_cache:
            out["plan_cache"] = catalog.plan_cache.stats.to_dict()
            out["fleet_report"] = render_fleet_report(
                catalog.telemetry.records(),
                title="Plan-cache fleet window")
        return out

    off = run(plan_cache=False)
    on = run(plan_cache=True)
    reduction = off["aggregate_compile_ms"] / max(
        on["aggregate_compile_ms"], 1e-9)
    return {
        "queries": len(stream),
        "shapes": len(TEMPLATES),
        "table_width": len(WIDE_SCHEMA.fields),
        "off": {k: v for k, v in off.items() if k != "fleet_report"},
        "on": {k: v for k, v in on.items() if k != "fleet_report"},
        "aggregate_compile_reduction_x": round(reduction, 1),
        "p99_compile_drop_ms": round(
            off["compile_p99_ms"] - on["compile_p99_ms"], 4),
        "fleet_report": on["fleet_report"],
    }


# ----------------------------------------------------------------------
# 2. Differential under DML / recluster / schema change
# ----------------------------------------------------------------------
def bench_differential(stream: list[str], n_rows: int,
                       rows_per_partition: int) -> dict:
    def mutate(catalog: Catalog, step: int) -> None:
        if step % 3 == 0:
            catalog.sql(f"DELETE FROM wide WHERE ts BETWEEN "
                        f"{step * 11} AND {step * 11 + 40}")
        elif step % 3 == 1:
            catalog.sql(f"UPDATE wide SET score = {step} "
                        f"WHERE ts BETWEEN {step * 7} "
                        f"AND {step * 7 + 25}")
        else:
            catalog.recluster("wide", "score")

    def reshape(catalog: Catalog) -> None:
        # Drop + recreate under the same name with one extra column:
        # cached shapes must be detected as stale, never rebound
        # against the old layout.
        rows = [tuple(row) + (1,) for row in
                catalog.sql("SELECT * FROM wide ORDER BY ts").rows]
        catalog.drop_table("wide")
        wider = Schema.of(
            **{f.name: f.dtype for f in WIDE_SCHEMA.fields},
            extra=DataType.INTEGER)
        catalog.create_table_from_rows(
            "wide", wider, rows, layout=Layout.sorted_by("ts"))

    def run(plan_cache: bool) -> list:
        catalog = make_catalog(n_rows, rows_per_partition, plan_cache)
        outputs = []
        for i, sql in enumerate(stream):
            if i and i % 40 == 0:
                mutate(catalog, i // 40)
            if i == len(stream) // 2:
                reshape(catalog)
            outputs.append(sorted(catalog.sql(sql).rows))
        if plan_cache:
            run.stats = catalog.plan_cache.stats  # noqa: B010
        return outputs

    def probe_fail_closed() -> dict:
        # The drop/recreate above is caught *eagerly* by the metadata
        # listener, so the lookup-time fingerprint check (defense in
        # depth) never fires in the script. Force drift past the
        # listener by mutating a stored fingerprint directly and
        # verify the lookup fails closed to a correct recompile.
        from repro.plancache import parameterize_text
        from repro.types import Field

        catalog = make_catalog(400, rows_per_partition, True)
        sql = "SELECT ts FROM wide WHERE ts < 50"
        expected = catalog.sql(sql).rows
        pq = parameterize_text(sql)
        entry = catalog.plan_cache.peek(pq.shape_key)
        entry.schemas["wide"] = Schema([Field("ts",
                                              DataType.VARCHAR)])
        result = catalog.sql(sql)
        return {
            "stale_schema_evictions":
                catalog.plan_cache.stats.stale_schema_evictions,
            "recompiled_correctly":
                result.rows == expected
                and not result.profile.plan_cache_hit,
        }

    plain = run(plan_cache=False)
    cached = run(plan_cache=True)
    stats = run.stats
    return {
        "queries_compared": len(stream),
        "divergences": sum(1 for a, b in zip(cached, plain)
                           if a != b),
        "plan_cache_hits": stats.hits,
        "version_bumps": stats.version_bumps,
        "invalidations": stats.invalidations,
        "rebind_fallbacks": stats.rebind_fallbacks,
        "fail_closed_probe": probe_fail_closed(),
    }


# ----------------------------------------------------------------------
# 3. Wiring visibility
# ----------------------------------------------------------------------
def bench_visibility(n_rows: int, rows_per_partition: int,
                     fleet_report: str) -> dict:
    catalog = make_catalog(n_rows, rows_per_partition,
                           plan_cache=True)
    sql = "SELECT ts, value FROM wide WHERE ts < 100"
    catalog.sql(sql)
    hot = catalog.sql(sql.replace("100", "200"))
    record = catalog.telemetry.records()[-1]
    return {
        "explain_has_cache_footer":
            "plan cache: cached shape" in catalog.explain(sql),
        "telemetry_plan_cache_hit": record.plan_cache_hit,
        "profile_flags": [hot.profile.plan_cache_checked,
                          hot.profile.plan_cache_hit],
        "fleet_report_has_hit_ratio_line":
            "plan cache:" in fleet_report,
        "fleet_report_has_compile_cdf":
            "compile latency ms" in fleet_report,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller table / stream (CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR6.json"))
    args = parser.parse_args()

    # Both modes keep ~10 partitions: compile-time pruning is
    # data-dependent work that rebinding *must* re-run, so its cost
    # scales with the partition count whether the plan cache is on or
    # off. The cache's win is the parse+bind side; growing the table
    # by rows (not partitions) keeps the comparison about that.
    if args.quick:
        n_rows, rows_per_partition, n_queries = 2000, 200, 500
    else:
        n_rows, rows_per_partition, n_queries = 8000, 800, 1000

    stream = make_stream(n_queries, n_rows)
    reduction = bench_compile_reduction(stream, n_rows,
                                        rows_per_partition)
    fleet_report = reduction.pop("fleet_report")
    differential = bench_differential(stream[:200],
                                      min(n_rows, 2000),
                                      rows_per_partition)
    visibility = bench_visibility(min(n_rows, 2000),
                                  rows_per_partition, fleet_report)

    gates = {
        "stream_ge_500_queries": len(stream) >= 500,
        "aggregate_compile_reduction_ge_5x":
            reduction["aggregate_compile_reduction_x"] >= 5.0,
        "p99_compile_latency_drops":
            reduction["p99_compile_drop_ms"] > 0,
        "zero_divergence": differential["divergences"] == 0,
        "invalidation_observed":
            differential["invalidations"] > 0
            and differential["rebind_fallbacks"] == 0
            and differential["fail_closed_probe"][
                "stale_schema_evictions"] > 0
            and differential["fail_closed_probe"][
                "recompiled_correctly"],
        "counters_visible": all((
            visibility["explain_has_cache_footer"],
            visibility["telemetry_plan_cache_hit"],
            all(visibility["profile_flags"]),
            visibility["fleet_report_has_hit_ratio_line"],
            visibility["fleet_report_has_compile_cdf"])),
    }

    payload = {
        "pr": 6,
        "title": "Plan-shape compiled-plan cache (repro.plancache)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "compile_reduction": reduction,
        "differential": differential,
        "visibility": visibility,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print("\n" + fleet_report)
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
