#!/usr/bin/env python
"""PR benchmark report: durability (WAL + checkpoints + recovery).

Measures the operational claims of the durability subsystem and writes
them to ``BENCH_PR7.json`` (for CI artifact upload and regression
tracking):

1. **WAL overhead** — a seeded DML workload run with durability off
   and on. Gate: WAL-on throughput >= 0.5x WAL-off (logging costs
   less than half the commit path).
2. **Recovery fidelity** — a >= 500-mutation log is recovered into a
   fresh catalog and compared against an always-alive oracle that
   applied the same mutations. Gates: zero result divergence across
   the differential query set, and bounded recovery wall time.
3. **Crash matrix** — a simulated crash at every enumerated commit
   point followed by recovery. Gate: every point lands exactly on
   its pre-/post-commit oracle.

Usage::

    PYTHONPATH=src python benchmarks/bench_durability_report.py
        [--quick] [--output BENCH_PR7.json]

``--quick`` shrinks the workload for CI smoke runs (every gate still
applies, including the >= 500-mutation recovery log).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.faults import CrashInjector, SimulatedCrash  # noqa: E402
from repro.faults.crash import CRASH_POINTS  # noqa: E402
from repro.types import DataType, Schema  # noqa: E402

SCHEMA = Schema.of(ts=DataType.INTEGER, score=DataType.INTEGER,
                   note=DataType.VARCHAR)

DIFFERENTIAL_QUERIES = (
    "SELECT * FROM events ORDER BY ts, score",
    "SELECT count(*) AS c FROM events WHERE score < 500",
    "SELECT score, count(*) AS c FROM events WHERE ts < 1500000 "
    "GROUP BY score",
    "SELECT * FROM events WHERE score >= 100 ORDER BY ts LIMIT 11",
)


def make_catalog(n_rows: int, rows_per_partition: int = 50) -> Catalog:
    catalog = Catalog(rows_per_partition=rows_per_partition)
    rows = [(i, (i * 37) % 1000, f"n{i:07d}") for i in range(n_rows)]
    catalog.create_table_from_rows("events", SCHEMA, rows)
    return catalog


def mutation(catalog: Catalog, i: int) -> None:
    """The ``i``-th statement of the seeded DML stream: rolling
    inserts with updates and deletes trailing behind, so the table
    stays bounded however long the stream runs."""
    base = 1_000_000 + (i // 3) * 10
    kind = i % 3
    if kind == 0:
        catalog.insert("events", [(base + j, (i + j) % 1000,
                                   f"m{i:06d}") for j in range(5)])
    elif kind == 1:
        catalog.sql(f"UPDATE events SET score = {i % 997} "
                    f"WHERE ts BETWEEN {base - 20} AND {base - 11}")
    else:
        catalog.sql(f"DELETE FROM events "
                    f"WHERE ts BETWEEN {base - 40} AND {base - 31}")


# ----------------------------------------------------------------------
# 1. WAL overhead: DML throughput with durability off vs on
# ----------------------------------------------------------------------
def bench_wal_overhead(n_rows: int, n_mutations: int,
                       wal_dir: Path) -> dict:
    off = make_catalog(n_rows)
    started = time.perf_counter()
    for i in range(n_mutations):
        mutation(off, i)
    off_s = time.perf_counter() - started

    on = make_catalog(n_rows)
    on.enable_durability(wal_dir)
    started = time.perf_counter()
    for i in range(n_mutations):
        mutation(on, i)
    on_s = time.perf_counter() - started

    stats = on.durability.stats()
    off_thr = n_mutations / max(off_s, 1e-9)
    on_thr = n_mutations / max(on_s, 1e-9)
    return {
        "mutations": n_mutations,
        "wal_off_s": round(off_s, 4),
        "wal_on_s": round(on_s, 4),
        "wal_off_stmts_per_s": round(off_thr, 1),
        "wal_on_stmts_per_s": round(on_thr, 1),
        "throughput_ratio": round(on_thr / off_thr, 4),
        "wal_appends": stats["wal_appends"],
        "wal_bytes": stats["wal_bytes"],
        "bytes_per_mutation": round(
            stats["wal_bytes"] / max(stats["wal_appends"], 1), 1),
    }


# ----------------------------------------------------------------------
# 2. Recovery of a long log vs an always-alive oracle
# ----------------------------------------------------------------------
def bench_recovery(n_rows: int, n_mutations: int,
                   wal_dir: Path) -> dict:
    durable = make_catalog(n_rows)
    durable.enable_durability(wal_dir)
    oracle = make_catalog(n_rows)
    for i in range(n_mutations):
        mutation(durable, i)
        mutation(oracle, i)
    wal_size = durable.durability.wal.size()
    durable.durability.close()

    started = time.perf_counter()
    recovered = Catalog.recover(wal_dir)
    recovery_s = time.perf_counter() - started
    replayed = recovered.durability.stats()["recovered"]["replayed"]

    divergences = sum(
        1 for sql in DIFFERENTIAL_QUERIES
        if sorted(recovered.sql(sql).rows)
        != sorted(oracle.sql(sql).rows))
    checksums_match = (
        sorted(p.compute_checksum()
               for p in recovered.tables["events"].partitions)
        == sorted(p.compute_checksum()
                  for p in oracle.tables["events"].partitions))
    return {
        "mutations": n_mutations,
        "replayed": replayed,
        "wal_size_bytes": wal_size,
        "recovery_s": round(recovery_s, 4),
        "replayed_per_s": round(replayed / max(recovery_s, 1e-9), 1),
        "queries_compared": len(DIFFERENTIAL_QUERIES),
        "divergences": divergences,
        "checksums_match": checksums_match,
    }


# ----------------------------------------------------------------------
# 3. Crash matrix: every enumerated point, recovered to its oracle
# ----------------------------------------------------------------------
def fingerprint(catalog: Catalog):
    return {
        name: (sorted(table.to_rows(), key=repr),
               sorted(p.compute_checksum() for p in table.partitions))
        for name, table in sorted(catalog.tables.items())
    }


def bench_crash_matrix(n_rows: int, tmp_root: Path) -> dict:
    dml_points = {"pre-append": "pre", "mid-append": "pre",
                  "post-append-pre-apply": "post"}
    outcomes = {}
    for point in CRASH_POINTS:
        injector = CrashInjector()
        wal_dir = tmp_root / f"crash-{point}"
        durable = make_catalog(n_rows)
        durable.enable_durability(wal_dir, crash_injector=injector)
        oracle = make_catalog(n_rows)
        for i in range(6):
            mutation(durable, i)
            mutation(oracle, i)
        pre = fingerprint(durable)
        injector.arm(point, at=1)
        crashed = False
        try:
            if point in dml_points:
                mutation(durable, 6)
            else:
                durable.checkpoint()
        except SimulatedCrash:
            crashed = True
        if point in dml_points:
            mutation(oracle, 6)
        post = fingerprint(oracle)
        recovered = fingerprint(Catalog.recover(wal_dir))
        if point in dml_points:
            expected = post if dml_points[point] == "post" else pre
        else:
            expected = pre  # checkpoint crashes lose nothing
        outcomes[point] = {
            "crashed": crashed,
            "recovered_to_oracle": recovered == expected,
            "no_third_state": recovered in (pre, post),
        }
    return outcomes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR7.json"))
    args = parser.parse_args()

    if args.quick:
        n_rows, overhead_muts, recovery_muts = 400, 90, 510
    else:
        n_rows, overhead_muts, recovery_muts = 1500, 300, 1200

    with tempfile.TemporaryDirectory() as tmp:
        tmp_root = Path(tmp)
        overhead = bench_wal_overhead(n_rows, overhead_muts,
                                      tmp_root / "overhead")
        recovery = bench_recovery(n_rows, recovery_muts,
                                  tmp_root / "recovery")
        crash_matrix = bench_crash_matrix(min(n_rows, 400), tmp_root)

    gates = {
        "wal_on_throughput_ge_half_of_off":
            overhead["throughput_ratio"] >= 0.5,
        "recovery_log_ge_500_mutations":
            recovery["replayed"] >= 500,
        "recovery_zero_divergence":
            recovery["divergences"] == 0
            and recovery["checksums_match"],
        "recovery_under_30s": recovery["recovery_s"] < 30.0,
        "crash_matrix_all_points_recover": all(
            o["crashed"] and o["recovered_to_oracle"]
            and o["no_third_state"]
            for o in crash_matrix.values()),
    }

    payload = {
        "pr": 7,
        "title": "Durability: WAL, checkpoints, crash recovery "
                 "(repro.durability)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "wal_overhead": overhead,
        "recovery": recovery,
        "crash_matrix": crash_matrix,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
