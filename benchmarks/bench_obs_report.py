#!/usr/bin/env python
"""PR benchmark report: query tracing + fleet telemetry (repro.obs).

Measures the two operational claims of this change and writes them to
``BENCH_PR4.json`` (for CI artifact upload and regression tracking):

1. **Tracing overhead** — wall-clock of a scan-heavy query with the
   span tracer on vs off, with :attr:`StorageLayer.io_sleep_ms`
   emulating object-storage latency in real time. Tracing is designed
   to stay on in production. Gate: < 5% overhead.
2. **Fleet report** — a >= 500-query synthetic workload run with
   telemetry enabled must produce per-technique pruning-ratio CDFs
   and latency percentile histograms (the §7-style fleet figures).
   The rendered report is written to ``FLEET_REPORT.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_report.py [--quick]
        [--output BENCH_PR4.json] [--report FLEET_REPORT.txt]

``--quick`` shrinks the platform and repetition counts for CI smoke
runs (the gates still apply, including the 500-query floor).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.obs import (  # noqa: E402
    fleet_summary,
    latency_percentiles,
    render_fleet_report,
    technique_ratio_cdfs,
)
from repro.types import DataType, Schema  # noqa: E402
from repro.workload import (  # noqa: E402
    Platform,
    PlatformConfig,
    WorkloadGenerator,
)


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` runs (noise floor)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# 1. Tracing overhead on a scan-heavy query under real I/O latency
# ----------------------------------------------------------------------
def bench_tracing_overhead(n_partitions: int, io_sleep_ms: float,
                           repeats: int) -> dict:
    import random

    rng = random.Random(7)
    rows = [(i, rng.uniform(0, 100), f"cat{rng.randrange(8):02d}")
            for i in range(n_partitions * 50)]
    schema = Schema.of(id=DataType.INTEGER, v=DataType.DOUBLE,
                       category=DataType.VARCHAR)
    catalog = Catalog(rows_per_partition=50)
    catalog.create_table_from_rows("t", schema, rows)
    catalog.storage.io_sleep_ms = io_sleep_ms
    sql = "SELECT count(*), sum(v) FROM t WHERE id >= 0"

    def run():
        return catalog.sql(sql)

    catalog.enable_tracing = True
    traced_result = run()
    assert traced_result.profile.trace is not None
    assert traced_result.profile.trace.find("scan:t") is not None
    catalog.enable_tracing = False
    assert run().profile.trace is None

    catalog.enable_tracing = False
    untraced_s = _best_of(run, repeats)
    catalog.enable_tracing = True
    traced_s = _best_of(run, repeats)
    overhead = traced_s / untraced_s - 1.0
    return {
        "partitions": n_partitions,
        "io_sleep_ms": io_sleep_ms,
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_pct": round(overhead * 100, 2),
    }


# ----------------------------------------------------------------------
# 2. Fleet telemetry over a synthetic workload
# ----------------------------------------------------------------------
def bench_fleet_report(n_queries: int, config: PlatformConfig,
                       report_path: Path) -> dict:
    platform = Platform(config)
    platform.catalog.enable_telemetry(capacity=max(n_queries, 4096))
    generator = WorkloadGenerator(platform, seed=21)
    queries = generator.generate(n_queries)
    started = time.perf_counter()
    failures = 0
    for query in queries:
        try:
            platform.catalog.sql(query.sql)
        except Exception:  # noqa: BLE001 — fleet keeps going
            failures += 1
    elapsed_s = time.perf_counter() - started

    records = platform.catalog.telemetry.records()
    report_text = render_fleet_report(
        records, title=f"Fleet telemetry report "
                       f"({len(records)} queries)")
    report_path.write_text(report_text)
    print(report_text)

    cdfs = technique_ratio_cdfs(records)
    percentiles = latency_percentiles(records)
    summary = fleet_summary(records)
    return {
        "queries": len(records),
        "failures": failures,
        "run_s": round(elapsed_s, 2),
        "queries_per_s": round(len(records) / elapsed_s, 1),
        "fleet_pruning_ratio": summary["fleet_pruning_ratio"],
        "eligible_queries_by_technique":
            summary["eligible_queries_by_technique"],
        "techniques_with_cdfs": sorted(
            t for t, points in cdfs.items() if points),
        "latency_dimensions": sorted(percentiles),
        "report_path": str(report_path),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats (CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR4.json"))
    parser.add_argument("--report", default=str(
        REPO_ROOT / "FLEET_REPORT.txt"))
    args = parser.parse_args(argv)

    if args.quick:
        scan_partitions, io_sleep_ms, repeats = 60, 2.0, 2
        n_queries = 500
        config = PlatformConfig(
            seed=13, rows_per_partition=50, n_small_tables=4,
            n_medium_tables=3, n_large_tables=2, n_dim_tables=2,
            dim_rows=128)
    else:
        scan_partitions, io_sleep_ms, repeats = 200, 2.0, 3
        n_queries = 1500
        config = PlatformConfig(seed=13, rows_per_partition=100)

    report = {
        "pr": 4,
        "title": "Query tracing + fleet telemetry (repro.obs)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "tracing_overhead": bench_tracing_overhead(
            scan_partitions, io_sleep_ms, repeats),
        "fleet": bench_fleet_report(
            n_queries, config, Path(args.report)),
    }

    fleet = report["fleet"]
    gates = {
        "tracing_overhead_lt_5pct":
            report["tracing_overhead"]["overhead_pct"] < 5.0,
        "fleet_ge_500_queries": fleet["queries"] >= 500,
        "fleet_cdfs_rendered":
            "filter" in fleet["techniques_with_cdfs"]
            and "topk" in fleet["techniques_with_cdfs"],
        "latency_percentiles_rendered":
            "simulated_ms" in fleet["latency_dimensions"],
        "no_query_failures": fleet["failures"] == 0,
    }
    report["gates"] = gates

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not all(gates.values()):
        print("BENCH GATES FAILED:",
              [k for k, v in gates.items() if not v],
              file=sys.stderr)
        return 1
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
