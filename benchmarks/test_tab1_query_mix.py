"""Table 1: relative frequency of LIMIT/top-k query types, classified
by pattern-matching on SQL texts (exactly the paper's method).

Paper: LIMIT queries 2.60% of SELECTs (0.37% without predicate, 2.23%
with); top-k 5.55% (4.47% ORDER BY x LIMIT k, 0.12% GROUP BY x ORDER BY
x LIMIT k, 0.96% GROUP BY y ORDER BY agg(x) LIMIT k).
"""

from collections import Counter

import pytest

from repro.bench.reporting import Report
from repro.workload import WorkloadGenerator, classify_sql
from repro.workload.classify import QueryClass

PAPER = {
    QueryClass.LIMIT_NO_PREDICATE: 0.0037,
    QueryClass.LIMIT_WITH_PREDICATE: 0.0223,
    QueryClass.TOPK_ORDER_LIMIT: 0.0447,
    QueryClass.TOPK_GROUP_ORDER_KEY: 0.0012,
    QueryClass.TOPK_GROUP_ORDER_AGG: 0.0096,
}

SAMPLE = 40_000


def classify_workload(platform):
    generator = WorkloadGenerator(platform, seed=11)
    counts = Counter()
    for query in generator.generate(SAMPLE):
        counts[classify_sql(query.sql)] += 1
    return {cls: counts.get(cls, 0) / SAMPLE for cls in QueryClass}


def test_tab1_query_mix(benchmark, platform):
    shares = benchmark.pedantic(classify_workload, args=(platform,),
                                rounds=1, iterations=1)

    report = Report("Table 1 — LIMIT/top-k query type frequencies "
                    "(SQL-text pattern matching)")
    rows = []
    for cls, paper_share in PAPER.items():
        rows.append([cls.value, f"{paper_share:.2%}",
                     f"{shares[cls]:.2%}"])
    limit_total = (shares[QueryClass.LIMIT_NO_PREDICATE]
                   + shares[QueryClass.LIMIT_WITH_PREDICATE])
    topk_total = (shares[QueryClass.TOPK_ORDER_LIMIT]
                  + shares[QueryClass.TOPK_GROUP_ORDER_KEY]
                  + shares[QueryClass.TOPK_GROUP_ORDER_AGG])
    report.table(["type", "paper", "measured"], rows)
    report.compare("LIMIT queries total", "2.60%",
                   f"{limit_total:.2%}")
    report.compare("top-k queries total", "5.55%",
                   f"{topk_total:.2%}")
    report.print()

    assert limit_total == pytest.approx(0.026, abs=0.006)
    assert topk_total == pytest.approx(0.0555, abs=0.010)
    for cls, paper_share in PAPER.items():
        assert shares[cls] == pytest.approx(
            paper_share, abs=max(0.004, paper_share * 0.5)), cls
