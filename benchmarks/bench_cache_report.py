#!/usr/bin/env python
"""PR benchmark report: warehouse-local partition cache (repro.cache).

Measures the operational claims of the data cache and writes them to
``BENCH_PR5.json`` (for CI artifact upload and regression tracking):

1. **Cache effectiveness** — a repeated-scan workload over a pruned
   working set, cold then hot. Gates: hot-phase hit ratio >= 80%,
   and >= 5x reduction in both object-storage ``bytes_read`` and
   simulated load time (cost-model ms) hot vs cold.
2. **Differential safety** — the same query/DML/recluster script run
   with caching on and off must return bit-identical rows (gate:
   zero divergence), with eviction pressure forced by a small budget.
3. **Wiring visibility** — the cache counters must show up in
   EXPLAIN ANALYZE, per-query telemetry, and the fleet report.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_report.py [--quick]
        [--output BENCH_PR5.json]

``--quick`` shrinks the table and repetition counts for CI smoke runs
(every gate still applies).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.obs import TelemetryRecord, render_fleet_report  # noqa: E402
from repro.types import DataType, Schema  # noqa: E402

SCHEMA = Schema.of(ts=DataType.INTEGER, score=DataType.INTEGER,
                   note=DataType.VARCHAR)


def make_catalog(n_rows: int, rows_per_partition: int) -> Catalog:
    from repro.storage.clustering import Layout

    catalog = Catalog(rows_per_partition=rows_per_partition)
    rows = [(i, (i * 37) % 1000, f"n{i:07d}") for i in range(n_rows)]
    catalog.create_table_from_rows("events", SCHEMA, rows,
                                   layout=Layout.sorted_by("ts"))
    return catalog


def simulated_load_ms(catalog: Catalog, delta, cache_stats) -> float:
    """Cost-model milliseconds the phase spent materialising
    partitions: demand loads at the remote rate plus cache hits at
    the local rate."""
    model = catalog.storage.cost_model
    remote = (delta.requests * model.request_latency_ms
              + delta.bytes_read / 2**20 * model.ms_per_mb)
    local = (cache_stats.hits * model.cached_hit_cost_ms
             + cache_stats.bytes_saved / 2**20 * model.cached_ms_per_mb)
    return remote + local


# ----------------------------------------------------------------------
# 1. Cold vs hot scan phases
# ----------------------------------------------------------------------
def bench_effectiveness(n_rows: int, rows_per_partition: int,
                        hot_rounds: int) -> dict:
    catalog = make_catalog(n_rows, rows_per_partition)
    catalog.enable_data_cache(budget_bytes=256 * 2**20)
    cache = catalog.data_cache
    lo, hi = n_rows // 10, n_rows // 2
    queries = [
        f"SELECT ts, score FROM events WHERE ts BETWEEN {lo} AND {hi}",
        f"SELECT count(*) AS c FROM events WHERE ts >= {lo}",
        f"SELECT note FROM events WHERE ts BETWEEN {lo} AND {hi} "
        f"AND score < 500",
    ]

    def run_phase(rounds: int) -> tuple[dict, float]:
        io_before = catalog.storage.stats.snapshot()
        stats_before = cache.stats()
        started = time.perf_counter()
        for _ in range(rounds):
            for sql in queries:
                catalog.sql(sql)
        wall_s = time.perf_counter() - started
        delta = catalog.storage.stats.diff(io_before)
        after = cache.stats()
        phase = type(stats_before)(**{
            k: getattr(after, k) - getattr(stats_before, k)
            for k in ("hits", "misses", "bytes_saved",
                      "prefetch_loads", "evictions", "invalidations",
                      "rejected")})
        return {
            "bytes_read": delta.bytes_read,
            "requests": delta.requests,
            "hits": phase.hits,
            "misses": phase.misses,
            "hit_ratio": round(phase.hit_ratio, 4),
            "bytes_saved": phase.bytes_saved,
            "prefetch_loads": phase.prefetch_loads,
            "simulated_load_ms": round(
                simulated_load_ms(catalog, delta, phase), 3),
            "wall_s": round(wall_s, 4),
        }, wall_s

    cold, _ = run_phase(1)
    hot, _ = run_phase(hot_rounds)
    bytes_reduction = cold["bytes_read"] / max(
        hot["bytes_read"] / hot_rounds, 1)
    load_reduction = cold["simulated_load_ms"] / max(
        hot["simulated_load_ms"] / hot_rounds, 1e-9)
    return {
        "partitions": len(catalog.scan_set("events")),
        "hot_rounds": hot_rounds,
        "cold": cold,
        "hot": hot,
        "bytes_read_reduction_x": round(bytes_reduction, 1),
        "simulated_load_reduction_x": round(load_reduction, 1),
        "resident_bytes": cache.stats().resident_bytes,
    }


# ----------------------------------------------------------------------
# 2. Differential: cache on/off bit-identical under DML + recluster
# ----------------------------------------------------------------------
def bench_differential(n_rows: int, rows_per_partition: int) -> dict:
    queries = [
        "SELECT * FROM events WHERE ts BETWEEN 100 AND 600",
        "SELECT count(*) AS c FROM events WHERE score < 400",
        "SELECT score, count(*) AS c FROM events "
        "WHERE ts < 700 GROUP BY score",
        "SELECT * FROM events ORDER BY ts DESC LIMIT 9",
    ]
    script = [
        None,
        "UPDATE events SET score = 3 WHERE ts BETWEEN 50 AND 250",
        "DELETE FROM events WHERE ts BETWEEN 400 AND 430",
        "recluster",
        "UPDATE events SET note = 'rewritten' WHERE score < 50",
    ]

    def run(catalog: Catalog) -> list:
        outputs = []
        for step in script:
            if step == "recluster":
                catalog.recluster("events", "score")
            elif step is not None:
                catalog.sql(step)
            for sql in queries:
                outputs.append(sorted(catalog.sql(sql).rows))
                outputs.append(sorted(catalog.sql(sql).rows))
        return outputs

    cached = make_catalog(n_rows, rows_per_partition)
    # A deliberately tight budget keeps eviction pressure on.
    sample = cached.storage.peek(
        cached.scan_set("events").partition_ids[0])
    cached.enable_data_cache(budget_bytes=sample.nbytes() * 8)
    plain = make_catalog(n_rows, rows_per_partition)
    divergences = sum(1 for a, b in zip(run(cached), run(plain))
                      if a != b)
    stats = cached.data_cache.stats()
    return {
        "statements": len(script),
        "queries_compared": len(queries) * len(script) * 2,
        "divergences": divergences,
        "cache_hits": stats.hits,
        "evictions": stats.evictions,
        "invalidations": stats.invalidations,
    }


# ----------------------------------------------------------------------
# 3. Counter visibility: EXPLAIN ANALYZE / telemetry / fleet report
# ----------------------------------------------------------------------
def bench_visibility(n_rows: int, rows_per_partition: int) -> dict:
    catalog = make_catalog(n_rows, rows_per_partition)
    catalog.enable_data_cache()
    sql = "SELECT ts, score FROM events WHERE ts >= 100"
    catalog.sql(sql)
    hot = catalog.sql(sql)
    explain = catalog.explain_analyze(sql)
    record = TelemetryRecord.from_result(hot)
    fleet = render_fleet_report([record])
    return {
        "explain_has_cache_line": "data cache:" in explain,
        "telemetry_hits": record.data_cache_hits,
        "telemetry_hit_ratio": round(record.data_cache_hit_ratio, 4),
        "fleet_report_has_cache_cdf": "data-cache hit ratio" in fleet,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller table / fewer rounds (CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR5.json"))
    args = parser.parse_args()

    if args.quick:
        n_rows, rows_per_partition, hot_rounds = 4000, 100, 3
    else:
        n_rows, rows_per_partition, hot_rounds = 20000, 100, 5

    effectiveness = bench_effectiveness(n_rows, rows_per_partition,
                                        hot_rounds)
    differential = bench_differential(min(n_rows, 2000),
                                      rows_per_partition)
    visibility = bench_visibility(min(n_rows, 2000),
                                  rows_per_partition)

    gates = {
        "hot_hit_ratio_ge_80pct":
            effectiveness["hot"]["hit_ratio"] >= 0.80,
        "bytes_read_reduction_ge_5x":
            effectiveness["bytes_read_reduction_x"] >= 5.0,
        "simulated_load_reduction_ge_5x":
            effectiveness["simulated_load_reduction_x"] >= 5.0,
        "zero_divergence":
            differential["divergences"] == 0,
        "counters_visible": all(v is True or (isinstance(v, int)
                                              and v > 0)
                                for v in (
            visibility["explain_has_cache_line"],
            visibility["telemetry_hits"],
            visibility["fleet_report_has_cache_cdf"])),
    }

    payload = {
        "pr": 5,
        "title": "Warehouse-local partition cache (repro.cache)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cache_effectiveness": effectiveness,
        "differential": differential,
        "visibility": visibility,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
