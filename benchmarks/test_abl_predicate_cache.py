"""Ablation (§8.2): predicate caching vs top-k pruning.

Paper's analysis: for *random* layouts with overlapping ranges, a
predicate cache beats pruning on repeat executions (pruning can skip
little, the cache remembers exactly the contributing partitions); for
*sorted* layouts pruning already excludes nearly everything, so the
cache adds little. DML on the ordering column invalidates top-k cache
entries while pruning keeps working — "naturally robust".
"""

import random

from repro.bench.reporting import Report
from repro.catalog import Catalog
from repro.expr.ast import Compare, col, lit
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(v=DataType.INTEGER, payload=DataType.VARCHAR)
N_ROWS = 10_000
SQL = "SELECT * FROM t ORDER BY v DESC LIMIT 10"


def build(layout, with_cache):
    rng = random.Random(17)
    # A small, duplicate-heavy domain: under a random layout nearly
    # every partition's max sits at the domain top, so min/max ranges
    # "mostly overlap" and the boundary can skip little — exactly the
    # regime where the paper expects predicate caching to win.
    rows = [(rng.randrange(1000), f"p{i}") for i in range(N_ROWS)]
    catalog = Catalog(rows_per_partition=100)
    catalog.create_table_from_rows("t", SCHEMA, rows, layout=layout)
    if with_cache:
        catalog.enable_predicate_cache()
    return catalog


def run():
    layouts = {"sorted": Layout.sorted_by("v"),
               "random": Layout.random(seed=23)}
    results = {}
    for name, layout in layouts.items():
        for with_cache in (False, True):
            catalog = build(layout, with_cache)
            catalog.sql(SQL)              # cold run (records cache)
            repeat = catalog.sql(SQL)     # repeat execution
            results[(name, with_cache)] = \
                repeat.profile.partitions_loaded
    # DML robustness: cache invalidated by ordering-column update,
    # pruning unaffected.
    catalog = build(Layout.random(seed=23), True)
    catalog.sql(SQL)
    catalog.update_where("t", Compare("<", col("v"), lit(50)), "v",
                         lambda old: old + 2_000_000)
    post_dml = catalog.sql(SQL)
    results["post_dml_correct"] = post_dml.rows[0][0] >= 2_000_000
    results["post_dml_cache_hit"] = post_dml.profile.scans[0].cache_hit
    return results


def test_abl_predicate_cache(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §8.2 — predicate cache vs top-k pruning "
                    "(partitions loaded on repeat execution)")
    report.table(
        ["layout", "pruning only", "pruning + cache"],
        [["sorted", results[("sorted", False)],
          results[("sorted", True)]],
         ["random", results[("random", False)],
          results[("random", True)]]])
    report.add(f"  DML on ordering column: result correct = "
               f"{results['post_dml_correct']}, cache hit = "
               f"{results['post_dml_cache_hit']}")
    report.print()

    # Random layout: the cache reduces repeat I/O below what pruning
    # alone achieves (it remembers exactly the contributing
    # partitions; pruning must load every partition whose max ties the
    # boundary).
    assert results[("random", True)] <= \
        results[("random", False)] * 0.7
    # Sorted layout: pruning alone is already near-minimal.
    assert results[("sorted", False)] <= 3
    # DML invalidation kept the repeat execution correct (no stale
    # cache hit).
    assert results["post_dml_correct"]
    assert not results["post_dml_cache_hit"]
