"""Table 2: breakdown of LIMIT pruning applicability.

Paper (eligible LIMIT queries):

| category                 | no pred | with pred | overall |
|--------------------------|---------|-----------|---------|
| already minimal scan set | 79.60%  | 61.65%    | 64.22%  |
| unsupported shapes       |  1.74%  | 36.23%    | 31.28%  |
| pruning to = 1 partition | 16.58%  |  1.71%    |  3.85%  |
| pruning to > 1 partitions|  1.54%  |  0.01%    |  0.23%  |

"Unsupported shapes" merges plan shapes where the LIMIT cannot reach a
scan with queries that reach it but find no fully-matching partitions.
"""

from collections import Counter

from repro.bench.reporting import Report
from repro.pruning.limit_pruning import LimitPruneOutcome
from repro.workload import WorkloadGenerator

N_PER_GROUP = 350

PAPER = {
    # category -> (without predicate, with predicate)
    "already_minimal": (0.7960, 0.6165),
    "unsupported": (0.0174, 0.3623),
    "pruned_to_one": (0.1658, 0.0171),
    "pruned_to_many": (0.0154, 0.0001),
}


def categorize(result):
    scan = result.profile.scans[0]
    report = scan.limit_report
    if report is None:
        return "unsupported"
    outcome = report.outcome
    if outcome == LimitPruneOutcome.ALREADY_MINIMAL:
        return "already_minimal"
    if outcome in (LimitPruneOutcome.NO_FULLY_MATCHING,
                   LimitPruneOutcome.INSUFFICIENT_ROWS,
                   LimitPruneOutcome.UNSUPPORTED_SHAPE):
        return "unsupported"
    if outcome == LimitPruneOutcome.PRUNED_TO_ONE:
        return "pruned_to_one"
    return "pruned_to_many"


def run(platform):
    generator = WorkloadGenerator(platform, seed=21)
    shares = {}
    for kind in ("limit_nopred", "limit_pred"):
        counts = Counter()
        for query in generator.generate_of_kind(kind, N_PER_GROUP):
            result = platform.catalog.sql(query.sql)
            counts[categorize(result)] += 1
        shares[kind] = {cat: counts.get(cat, 0) / N_PER_GROUP
                        for cat in PAPER}
    return shares


def test_tab2_limit_pruning(benchmark, platform):
    shares = benchmark.pedantic(run, args=(platform,), rounds=1,
                                iterations=1)

    report = Report("Table 2 — LIMIT pruning applicability")
    rows = []
    for category, (paper_nopred, paper_pred) in PAPER.items():
        rows.append([
            category,
            f"{paper_nopred:.1%} / {shares['limit_nopred'][category]:.1%}",
            f"{paper_pred:.1%} / {shares['limit_pred'][category]:.1%}",
        ])
    report.table(["category", "no pred (paper/measured)",
                  "with pred (paper/measured)"], rows)
    report.print()

    nopred, pred = shares["limit_nopred"], shares["limit_pred"]
    # Shape assertions from the paper's discussion:
    # 1. most queries already have a minimal scan set, more so without
    #    predicates;
    assert nopred["already_minimal"] > 0.5
    assert nopred["already_minimal"] > pred["already_minimal"]
    # 2. with predicates, a large group is unsupported / lacks
    #    fully-matching partitions;
    assert pred["unsupported"] > nopred["unsupported"]
    assert pred["unsupported"] > 0.1
    # 3. when pruning fires it overwhelmingly reaches one partition;
    assert nopred["pruned_to_one"] > nopred["pruned_to_many"]
    # 4. without predicates, pruning fires much more often.
    assert nopred["pruned_to_one"] > pred["pruned_to_one"]
