"""Figure 12: repetitiveness of top-k query plan shapes.

Paper: over both a 3-day and a 1-month window, most top-k plan shapes
appear only once — which limits what predicate caching can achieve for
top-k queries and motivates the pruning-based approach (§8.2).
"""

from collections import Counter

from repro.bench.reporting import Report
from repro.workload import WorkloadGenerator

SHORT_WINDOW = 300    # "3 days"
LONG_WINDOW = 3000    # "1 month"


def shape_counts(platform, n_queries, seed):
    generator = WorkloadGenerator(platform, seed=seed)
    stream = generator.topk_stream_with_repetition(n_queries)
    shapes = Counter()
    for query in stream:
        plan = platform.catalog.plan_sql(query.sql)
        shapes[plan.shape()] += 1
    return shapes


def run(platform):
    return (shape_counts(platform, SHORT_WINDOW, seed=51),
            shape_counts(platform, LONG_WINDOW, seed=52))


def test_fig12_shape_repetition(benchmark, platform):
    short, long_ = benchmark.pedantic(run, args=(platform,), rounds=1,
                                      iterations=1)

    report = Report("Figure 12 — repetitiveness of top-k plan shapes")
    rows = []
    for label, counts in (("3-day", short), ("1-month", long_)):
        total_shapes = len(counts)
        singletons = sum(1 for c in counts.values() if c == 1)
        top_share = counts.most_common(1)[0][1] / sum(counts.values())
        rows.append([label, sum(counts.values()), total_shapes,
                     f"{singletons / total_shapes:.1%}",
                     f"{top_share:.1%}"])
    report.table(["window", "queries", "distinct shapes",
                  "shapes seen once", "hottest shape share"], rows)
    report.print()

    for counts in (short, long_):
        singleton_share = sum(1 for c in counts.values() if c == 1) \
            / len(counts)
        # "Most query plan shapes appear only once."
        assert singleton_share > 0.5
    # The longer window accumulates more distinct shapes.
    assert len(long_) > len(short)
