"""Ablation (§4.4): LIMIT pruning vs parallel execution.

Paper: without LIMIT pruning, work is distributed across n machines
each scanning up to ceil(k/n) rows — "the query engine reads at least
n partitions, even though 1 might have been enough". With pruning, the
scan set is minimized before distribution.
"""

from repro.bench.reporting import Report
from repro.engine.warehouse import Warehouse
from repro.pruning.base import ScanSet
from repro.pruning.limit_pruning import LimitPruner
from repro.storage.builder import build_table
from repro.storage.storage_layer import StorageLayer
from repro.types import DataType, Schema

SCHEMA = Schema.of(v=DataType.INTEGER, payload=DataType.VARCHAR)
N_ROWS = 20_000
ROWS_PER_PARTITION = 200
K = 50


def run():
    rows = [(i, f"p{i}") for i in range(N_ROWS)]
    table = build_table("t", SCHEMA, rows,
                        rows_per_partition=ROWS_PER_PARTITION)
    storage = StorageLayer()
    storage.put_all(table.partitions)
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)

    results = {}
    for n_workers in (1, 2, 4, 8, 16, 32):
        warehouse = Warehouse(storage, n_workers)
        unpruned = warehouse.run_limit_scan(scan_set, SCHEMA, K)
        # With LIMIT pruning: no predicate -> every partition is
        # fully-matching -> the scan set shrinks first.
        pruned_set = LimitPruner(K).prune(
            scan_set, scan_set.partition_ids).result.kept
        pruned = warehouse.run_limit_scan(pruned_set, SCHEMA, K)
        results[n_workers] = (unpruned.partitions_loaded,
                              pruned.partitions_loaded)
    return results


def test_abl_limit_parallel(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §4.4 — LIMIT k=50 partitions read vs "
                    "warehouse size")
    report.table(
        ["workers", "partitions read (no pruning)",
         "partitions read (LIMIT pruning)"],
        [[n, unpruned, pruned]
         for n, (unpruned, pruned) in results.items()])
    report.print()

    for n_workers, (unpruned, pruned) in results.items():
        # §4.4: at least n partitions read without pruning...
        assert unpruned >= min(n_workers, N_ROWS // ROWS_PER_PARTITION)
        # ...while one partition suffices with pruning (k < partition
        # row count).
        assert pruned == 1
    # The effect grows with the warehouse.
    assert results[32][0] > results[1][0]
