"""Figure 6: CDF of k in LIMIT queries.

Paper: most queries have k = 0 or k = 1; 97% have k <= 10,000 and
99.9% have k <= 2,000,000 (OFFSET included in the value when present).
"""

import random

import pytest

from repro.bench.reporting import Report, render_cdf
from repro.bench.stats import cdf_points, fraction_at_most
from repro.workload.distributions import sample_limit_k

SAMPLE = 100_000


def sample(seed=123):
    rng = random.Random(seed)
    return [sample_limit_k(rng) for _ in range(SAMPLE)]


def test_fig6_limit_k_cdf(benchmark):
    values = benchmark.pedantic(sample, rounds=1, iterations=1)

    points = cdf_points(values, [0, 1, 10, 100, 1000, 10_000,
                                 100_000, 2_000_000])
    report = Report("Figure 6 — CDF of k in LIMIT queries")
    report.add(render_cdf(points, label="LIMIT k"))
    report.compare("P[k <= 10,000]", 0.97,
                   round(fraction_at_most(values, 10_000), 4))
    report.compare("P[k <= 2,000,000]", 0.999,
                   round(fraction_at_most(values, 2_000_000), 4))
    report.compare("P[k <= 1] (\"most queries have k=0 or k=1\")",
                   ">= ~0.4", round(fraction_at_most(values, 1), 4))
    report.print()

    assert fraction_at_most(values, 10_000) == pytest.approx(
        0.97, abs=0.01)
    assert fraction_at_most(values, 2_000_000) == pytest.approx(
        0.999, abs=0.003)
    assert fraction_at_most(values, 1) > 0.35
    assert max(values) > 2_000_000  # the extreme tail exists
