"""Service-layer throughput: concurrent clients through QueryService.

Not a paper figure — this benchmarks the reproduction's own Cloud
Services layer (ROADMAP: serve heavy concurrent traffic). N client
threads replay the calibrated synthetic workload mix (Table 1)
through one :class:`~repro.service.QueryService`, with a slice of
repeated "dashboard" queries (result-cache food) and a sprinkle of
DML (invalidation pressure). Reports wall-clock p50/p95 latency,
queue wait, throughput, cache hit ratio, and the pool's scaling
events.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import QueryService
from repro.workload import Platform, PlatformConfig, WorkloadGenerator

N_CLIENTS = 8
QUERIES_PER_CLIENT = 40
#: every k-th query re-issues a popular dashboard query verbatim
DASHBOARD_EVERY = 3
#: every k-th query is DML (invalidation traffic)
DML_EVERY = 23


@pytest.fixture(scope="module")
def service_platform() -> Platform:
    """A small platform so the bench stays fast under -x runs."""
    return Platform(PlatformConfig(
        seed=11,
        rows_per_partition=100,
        n_small_tables=6,
        n_medium_tables=4,
        n_large_tables=2,
        n_dim_tables=2,
    ))


def _client_scripts(platform: Platform) -> list[list[str]]:
    """Per-client query lists: mixed workload + dashboards + DML."""
    generator = WorkloadGenerator(platform, seed=23)
    dashboards = [q.sql for q in generator.generate(6)]
    fact = platform.fact_tables[0]
    scripts: list[list[str]] = []
    for client in range(N_CLIENTS):
        fresh = generator.generate(QUERIES_PER_CLIENT)
        script = []
        for i, query in enumerate(fresh):
            if i % DML_EVERY == DML_EVERY - 1:
                script.append(
                    f"UPDATE {fact} SET score = score + 1 "
                    f"WHERE ts BETWEEN {client * 10} "
                    f"AND {client * 10 + 9}")
            elif i % DASHBOARD_EVERY == DASHBOARD_EVERY - 1:
                script.append(dashboards[(client + i)
                                         % len(dashboards)])
            else:
                script.append(query.sql)
        scripts.append(script)
    return scripts


def test_service_throughput(service_platform):
    service = QueryService(service_platform.catalog,
                           slots_per_cluster=4,
                           max_queue_per_cluster=256,
                           min_clusters=1, max_clusters=4,
                           scale_out_queue_depth=4)
    scripts = _client_scripts(service_platform)
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_CLIENTS)

    def client(script: list[str]):
        barrier.wait()
        try:
            for sql in script:
                service.sql(sql)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(script,))
               for script in scripts]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall_s = time.perf_counter() - wall_start

    assert not any(t.is_alive() for t in threads)
    assert errors == []
    metrics = service.metrics
    total = N_CLIENTS * QUERIES_PER_CLIENT
    assert metrics.counter("queries_completed").value == total
    assert metrics.counter("queries_failed").value == 0
    # the repeated dashboard queries must actually hit the cache
    assert metrics.counter("result_cache_hits").value > 0
    assert metrics.cache_hit_ratio() > 0

    latency = metrics.histogram("latency_ms")
    queue_wait = metrics.histogram("queue_wait_ms")
    print("\n--- service throughput "
          f"({N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries) ---")
    print(f"wall time           {wall_s:8.2f} s   "
          f"({total / wall_s:7.1f} queries/s)")
    print(f"latency p50/p95     {latency.percentile(50):8.2f} / "
          f"{latency.percentile(95):8.2f} ms")
    print(f"queue wait p50/p95  {queue_wait.percentile(50):8.2f} / "
          f"{queue_wait.percentile(95):8.2f} ms")
    print(f"cache hit ratio     {metrics.cache_hit_ratio():8.2%}  "
          f"({metrics.counter('result_cache_hits').value:.0f} hits)")
    print(f"pruning ratio       {metrics.pruning_ratio():8.2%}")
    print(f"clusters            {service.pool.n_clusters}  "
          f"(events: {[e.action for e in service.pool.events]})")
    print(f"dml statements      "
          f"{metrics.counter('dml_statements').value:.0f}")
