#!/usr/bin/env python
"""PR benchmark report: vectorized pruning + morsel-parallel scans.

Measures the two performance claims of this change and writes them to
``BENCH_PR3.json`` (for CI artifact upload and regression tracking):

1. **Pruning throughput** — partitions classified per second by the
   compiled numpy kernels vs the per-partition AST walk, on a
   compilable predicate over a multi-thousand-partition table.
   Gate: >= 5x speedup.
2. **Scan wall-clock** — a fig13-scale table scanned with 1 vs 4
   morsel workers, with :attr:`StorageLayer.io_sleep_ms` emulating
   object-storage latency in real time (the simulated cost model
   cannot show thread overlap). Gate: > 1.5x speedup at 4 workers.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [--quick]
        [--output BENCH_PR3.json]

``--quick`` shrinks table sizes and repetition counts for CI smoke
runs (the gates still apply). The full mode additionally runs the
fig4 / fig13 / micro-kernel pytest benchmarks and embeds their
timings when ``pytest-benchmark`` is available.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.expr.ast import And, Compare, InList, col, lit  # noqa: E402
from repro.pruning.base import ScanSet  # noqa: E402
from repro.pruning.filter_pruning import FilterPruner  # noqa: E402
from repro.pruning.stats_index import (  # noqa: E402
    StatsIndex,
    VectorizedFilterPruner,
)
from repro.storage.builder import build_table  # noqa: E402
from repro.storage.clustering import Layout  # noqa: E402
from repro.types import DataType, Schema  # noqa: E402

SCHEMA = Schema.of(ts=DataType.INTEGER, category=DataType.VARCHAR,
                   score=DataType.INTEGER)

PREDICATE = And(
    Compare(">=", col("ts"), lit(40_000)),
    InList(col("category"), ["cat01", "cat03", "cat05"]),
    Compare(">", col("score"), lit(250_000)),
)


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` runs (noise floor)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# 1. Pruning throughput: kernel classify vs scalar AST walk
# ----------------------------------------------------------------------
def bench_pruning(n_partitions: int, repeats: int) -> dict:
    rng = random.Random(0)
    rows = [(i, f"cat{rng.randrange(8):02d}", rng.randrange(10**6))
            for i in range(n_partitions * 25)]
    table = build_table("t", SCHEMA, rows, rows_per_partition=25,
                        layout=Layout.sorted_by("ts"))
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)
    index_build_s = _timed(
        lambda: StatsIndex(scan_set.entries).column("ts"))
    index = StatsIndex(scan_set.entries)
    for name in ("ts", "category", "score"):
        index.column(name)  # pre-pack, as a live catalog index is

    def scalar():
        return FilterPruner(PREDICATE, SCHEMA).prune(scan_set)

    def vectorized():
        return VectorizedFilterPruner(
            PREDICATE, SCHEMA, index=index).prune(scan_set)

    want = scalar()
    got = vectorized()
    assert (got.kept.partition_ids == want.kept.partition_ids
            and got.pruned_ids == want.pruned_ids
            and got.fully_matching_ids == want.fully_matching_ids), \
        "vectorized pruning diverged from the scalar oracle"

    scalar_s = _best_of(scalar, repeats)
    vector_s = _best_of(vectorized, repeats)
    return {
        "partitions": len(scan_set),
        "index_build_s": round(index_build_s, 6),
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vector_s, 6),
        "scalar_partitions_per_s": round(len(scan_set) / scalar_s),
        "vectorized_partitions_per_s": round(
            len(scan_set) / vector_s),
        "speedup": round(scalar_s / vector_s, 2),
    }


# ----------------------------------------------------------------------
# 2. Scan wall-clock: 1 vs 4 morsel workers under real I/O latency
# ----------------------------------------------------------------------
def bench_parallel_scan(n_partitions: int, io_sleep_ms: float,
                        repeats: int, workers: int = 4) -> dict:
    rng = random.Random(1)
    rows = [(i, rng.uniform(0, 100), f"cat{rng.randrange(8):02d}")
            for i in range(n_partitions * 50)]
    schema = Schema.of(id=DataType.INTEGER, v=DataType.DOUBLE,
                       category=DataType.VARCHAR)
    catalog = Catalog(rows_per_partition=50)
    catalog.create_table_from_rows("t", schema, rows)
    catalog.storage.io_sleep_ms = io_sleep_ms
    sql = "SELECT count(*), sum(v) FROM t WHERE id >= 0"

    def run(parallelism: int):
        catalog.scan_parallelism = parallelism
        return catalog.sql(sql)

    want = run(1).rows
    assert run(workers).rows == want, \
        "parallel scan rows diverged from serial"

    serial_s = _best_of(lambda: run(1), repeats)
    parallel_s = _best_of(lambda: run(workers), repeats)
    return {
        "partitions": n_partitions,
        "io_sleep_ms": io_sleep_ms,
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
    }


# ----------------------------------------------------------------------
# 3. Full mode: embed the pytest benchmark suites
# ----------------------------------------------------------------------
def run_pytest_benches() -> dict | None:
    """Run fig4/fig13/micro-kernel benches; None when unavailable."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q",
             "benchmarks/test_fig4_filter_pruning.py",
             "benchmarks/test_fig13_tpch.py",
             "benchmarks/test_micro_kernels.py",
             f"--benchmark-json={out}"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")})
        if proc.returncode != 0 or not out.exists():
            sys.stderr.write(
                "pytest benches unavailable or failed; skipping\n"
                + proc.stdout[-2000:] + proc.stderr[-2000:])
            return None
        data = json.loads(out.read_text())
    return {
        bench["name"]: {
            "mean_s": round(bench["stats"]["mean"], 6),
            "median_s": round(bench["stats"]["median"], 6),
        }
        for bench in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats (CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR3.json"))
    args = parser.parse_args(argv)

    if args.quick:
        prune_partitions, prune_repeats = 800, 3
        scan_partitions, io_sleep_ms, scan_repeats = 60, 2.0, 2
    else:
        prune_partitions, prune_repeats = 2000, 5
        scan_partitions, io_sleep_ms, scan_repeats = 200, 2.0, 3

    report = {
        "pr": 3,
        "title": "Vectorized metadata pruning kernels + "
                 "morsel-driven parallel scan execution",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "pruning_throughput": bench_pruning(
            prune_partitions, prune_repeats),
        "parallel_scan": bench_parallel_scan(
            scan_partitions, io_sleep_ms, scan_repeats),
    }
    if not args.quick:
        benches = run_pytest_benches()
        if benches is not None:
            report["pytest_benchmarks"] = benches

    gates = {
        "pruning_speedup_ge_5x":
            report["pruning_throughput"]["speedup"] >= 5.0,
        "scan_speedup_gt_1_5x":
            report["parallel_scan"]["speedup"] > 1.5,
    }
    report["gates"] = gates

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not all(gates.values()):
        print("BENCH GATES FAILED:",
              [k for k, v in gates.items() if not v],
              file=sys.stderr)
        return 1
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
