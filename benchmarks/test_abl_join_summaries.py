"""Ablation (§6.1): build-side value summary structures.

Compares pruning power and summary size for the three summaries:
global min/max, bounded range set (Snowflake's balanced choice), and
a Bloom filter. The paper: the summary "strikes a balance between
accuracy and storage cost", spending a small fraction of the build
side's size.
"""

import random

from repro.bench.reporting import Report
from repro.pruning.base import ScanSet
from repro.pruning.join_pruning import JoinPruner, build_summary
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(fk=DataType.INTEGER, payload=DataType.VARCHAR)
N_PROBE_ROWS = 30_000
KEY_SPACE = 1_000_000


def run():
    rng = random.Random(3)
    probe_rows = [(rng.randrange(KEY_SPACE), f"p{i}")
                  for i in range(N_PROBE_ROWS)]
    table = build_table("probe", SCHEMA, probe_rows,
                        rows_per_partition=200,
                        layout=Layout.sorted_by("fk"))
    scan_set = ScanSet((p.partition_id, p.zone_map)
                       for p in table.partitions)
    # Clustered build side: two narrow key clusters far apart.
    build_values = ([rng.randrange(5_000) for _ in range(300)]
                    + [rng.randrange(900_000, 905_000)
                       for _ in range(300)])
    build_nbytes = len(build_values) * 8

    results = {}
    for kind in ("minmax", "rangeset", "bloom", "cuckoo", "xor"):
        summary = build_summary(build_values, kind=kind)
        outcome = JoinPruner("fk", summary).prune(scan_set)
        results[kind] = (outcome.pruning_ratio, summary.nbytes(),
                         summary.nbytes() / build_nbytes)
    return results


def test_abl_join_summaries(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §6.1 — build-side summary structures")
    report.table(
        ["summary", "probe pruning ratio", "size (bytes)",
         "size / build side"],
        [[kind, f"{ratio:.1%}", size, f"{share:.1%}"]
         for kind, (ratio, size, share) in results.items()])
    report.print()

    minmax_ratio = results["minmax"][0]
    rangeset_ratio = results["rangeset"][0]
    # The range set exploits the gap between build key clusters that a
    # single global range cannot express.
    assert rangeset_ratio > minmax_ratio + 0.2
    # ... while staying a small fraction of the build side.
    assert results["rangeset"][2] < 0.25
    # min/max is nearly free.
    assert results["minmax"][1] <= 16
    # The membership filters (Bloom/Cuckoo/Xor) cannot answer wide
    # range probes: their partition pruning is weak even though their
    # sizes are substantial — their role is row-level probe skipping.
    for kind in ("bloom", "cuckoo", "xor"):
        assert results[kind][0] <= rangeset_ratio, kind
