"""Figure 11: share of queries by pruning-technique combination.

Paper: techniques execute filter -> join -> LIMIT -> top-k; most
queries benefit from filter pruning (58.7% of all queries prune at
least one partition with it); combinations of techniques compound.
"""

from repro.bench.reporting import Report
from repro.pruning.base import PruneCategory


def analyze(flow):
    return flow.combination_shares(), flow.technique_shares()


def test_fig11_pruning_flow(benchmark, mixed_run):
    combos, technique_shares = benchmark.pedantic(
        analyze, args=(mixed_run.flow,), rounds=1, iterations=1)

    report = Report("Figure 11 — queries per technique combination "
                    "(flow order: filter, join, limit, topk)")
    rows = [[" + ".join(combo) if combo else "(no pruning)",
             f"{share:.1%}"] for combo, share in combos.items()]
    report.table(["combination", "share of queries"], rows)
    report.compare("filter pruning applied (share of queries)",
                   0.587, round(technique_shares["filter"], 3))
    report.compare("join pruning applied", "~0.13 of queries",
                   round(technique_shares["join"], 3))
    report.print()

    # Shape: filter pruning is by far the most common technique, a
    # meaningful share of queries prunes nothing, and combinations of
    # two or more techniques occur.
    assert technique_shares["filter"] == max(technique_shares.values())
    assert 0.3 < technique_shares["filter"] < 0.9
    assert () in combos  # some queries prune nothing
    multi = sum(share for combo, share in combos.items()
                if len(combo) >= 2)
    assert multi > 0.02
    # combination order respects the flow
    for combo in combos:
        indexes = [("filter", "join", "limit", "topk").index(t)
                   for t in combo]
        assert indexes == sorted(indexes)
