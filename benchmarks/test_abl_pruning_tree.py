"""Ablation (§3.2): adaptive pruning-tree reordering and cutoff.

Measures simulated compile-time pruning cost and pruning ratio for the
same predicate under (a) a static evaluation order, (b) adaptive
reordering, and (c) reordering + cutoff. Reordering should cut cost
without losing pruning; cutoff trades a little pruning for bounded
cost on ineffective filters.
"""

from repro.bench.reporting import Report
from repro.expr.ast import And, Compare, EndsWith, col, lit
from repro.pruning.base import ScanSet
from repro.pruning.pruning_tree import PruningTree, TreeConfig
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(ts=DataType.INTEGER, tag=DataType.VARCHAR,
                   noise=DataType.INTEGER)
N_ROWS = 40_000
ROWS_PER_PARTITION = 100


def build_scan_set():
    rows = [(i, f"tag{i % 13:03d}", i * 17 % 9973)
            for i in range(N_ROWS)]
    table = build_table("t", SCHEMA, rows,
                        rows_per_partition=ROWS_PER_PARTITION,
                        layout=Layout.sorted_by("ts"))
    return ScanSet((p.partition_id, p.zone_map)
                   for p in table.partitions)


def predicate():
    # slow/ineffective filters first, the selective one last — the
    # worst case for a static order.
    return And(
        EndsWith(col("tag"), "7"),                  # opaque: no pruning
        Compare(">=", col("noise"), lit(0)),        # ineffective
        Compare(">=", col("ts"), lit(int(N_ROWS * 0.98))),  # selective
    )


def run():
    scan_set = build_scan_set()
    configs = {
        "static order": TreeConfig(enable_reorder=False,
                                   enable_cutoff=False),
        "adaptive reorder": TreeConfig(enable_reorder=True,
                                       enable_cutoff=False,
                                       reorder_interval=16),
        "cutoff only": TreeConfig(enable_reorder=False,
                                  enable_cutoff=True,
                                  cutoff_min_samples=32),
        "reorder + cutoff": TreeConfig(enable_reorder=True,
                                       enable_cutoff=True,
                                       reorder_interval=16,
                                       cutoff_min_samples=32),
    }
    results = {}
    for label, config in configs.items():
        tree = PruningTree(predicate(), SCHEMA, config)
        outcome = tree.prune(scan_set)
        results[label] = (outcome.pruning_ratio, tree.simulated_ms,
                          sum(1 for s in tree.node_stats() if s.cut))
    return results


def test_abl_pruning_tree(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §3.2 — pruning-tree reordering & cutoff")
    report.table(
        ["variant", "pruning ratio", "simulated prune cost (ms)",
         "nodes cut"],
        [[label, f"{ratio:.1%}", f"{cost:.2f}", cut]
         for label, (ratio, cost, cut) in results.items()])
    report.print()

    static_ratio, static_cost, _ = results["static order"]
    reorder_ratio, reorder_cost, _ = results["adaptive reorder"]
    cutoff_ratio, cutoff_cost, cut_nodes = results["cutoff only"]
    both_ratio, both_cost, _ = results["reorder + cutoff"]
    # Reordering keeps the ratio and reduces cost.
    assert reorder_ratio == static_ratio
    assert reorder_cost < static_cost
    # Cutoff drops the slow/ineffective filters from pruning (they
    # still run at execution time) and cuts cost without losing
    # pruning here (the selective filter survives).
    assert cut_nodes >= 2
    assert cutoff_cost < static_cost
    assert cutoff_ratio == static_ratio
    # Combining both: reordering starves the bad filters of samples so
    # few cutoffs fire, but cost stays at the reordered level.
    assert both_cost <= reorder_cost
    assert both_ratio <= static_ratio
