"""Shared fixtures for the paper-reproduction benchmarks.

The mixed production-like workload is expensive to run, so it executes
once per session and is shared by the figures that analyze it
(Figures 1, 4, 11 and Tables 1, 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.catalog import QueryResult
from repro.pruning.flow import PruningFlow
from repro.workload import (
    GeneratedQuery,
    Platform,
    PlatformConfig,
    WorkloadGenerator,
)

#: size of the shared mixed workload sample
MIXED_WORKLOAD_QUERIES = 900


@dataclass
class WorkloadRun:
    """A executed workload: queries, results, and flow records."""

    platform: Platform
    queries: list[GeneratedQuery]
    results: list[QueryResult]
    flow: PruningFlow


@pytest.fixture(scope="session")
def platform() -> Platform:
    """The synthetic data platform all workload benches run against."""
    return Platform(PlatformConfig(
        seed=42,
        rows_per_partition=100,
        n_small_tables=12,
        n_medium_tables=6,
        n_large_tables=5,
        n_xlarge_tables=2,
        n_dim_tables=3,
    ))


@pytest.fixture(scope="session")
def mixed_run(platform) -> WorkloadRun:
    """One execution of the calibrated mixed workload."""
    generator = WorkloadGenerator(platform, seed=7)
    queries = generator.generate(MIXED_WORKLOAD_QUERIES)
    flow = PruningFlow()
    results = []
    for query in queries:
        result = platform.catalog.sql(query.sql)
        results.append(result)
        flow.add(result.profile.flow_record())
    return WorkloadRun(platform=platform, queries=queries,
                       results=results, flow=flow)
