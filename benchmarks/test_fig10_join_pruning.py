"""Figure 10: impact of join pruning on probe-side scan sets.

Paper: ~13% of eligible queries see a pruning ratio of 100% (often an
empty build side); the median probe-side scan-set reduction is >= 72%;
join pruning is "generally very effective".
"""

from repro.bench.reporting import Report, render_cdf
from repro.bench.stats import cdf_points, describe, fraction_at_least
from repro.workload import WorkloadGenerator

N_QUERIES = 250


def run(platform):
    generator = WorkloadGenerator(platform, seed=41)
    queries = generator.generate_of_kind("join", N_QUERIES)
    ratios = []
    for query in queries:
        result = platform.catalog.sql(query.sql)
        for scan in result.profile.scans:
            if scan.join_result is not None:
                ratios.append(scan.join_result.pruning_ratio)
    return ratios


def test_fig10_join_pruning(benchmark, platform):
    ratios = benchmark.pedantic(run, args=(platform,), rounds=1,
                                iterations=1)

    stats = describe(ratios)
    at_100 = fraction_at_least(ratios, 1.0)
    report = Report("Figure 10 — join pruning of probe-side scans")
    report.add(render_cdf(
        cdf_points(ratios, [0.0, 0.25, 0.5, 0.72, 0.9, 0.999]),
        label="probe scan-set reduction"))
    report.compare("median reduction", ">= 0.72",
                   round(stats.median, 3))
    report.compare("share of queries at 100%", 0.13, round(at_100, 3))
    report.compare("mean reduction", 0.79, round(stats.mean, 3))
    report.print()

    assert stats.median >= 0.6
    # a visible cluster at 100% (empty build sides), but not dominant
    assert 0.05 < at_100 < 0.40
    assert stats.mean > 0.6
