"""Figure 9: top-k pruning ratios and the runtime improvements they
produce, bucketed by baseline query runtime.

Paper: CDFs of pruning ratio and of relative runtime improvement have
similar distributions ("a strong correlation between pruning and
runtime improvement"); improvements of more than 99.9% exist in every
runtime bucket; the average pruning ratio of successfully applied
top-k pruning is ~77%.
"""

from repro.bench.reporting import Report
from repro.bench.stats import describe, percentile
from repro.plan.compiler import CompilerOptions
from repro.workload import WorkloadGenerator

N_QUERIES = 120


def run(platform):
    generator = WorkloadGenerator(platform, seed=37)
    queries = generator.generate_of_kind("topk_plain", N_QUERIES)
    disabled = CompilerOptions(enable_topk_pruning=False,
                               topk_boundary_init=False)
    samples = []
    for query in queries:
        baseline = platform.catalog.sql(query.sql, disabled)
        pruned = platform.catalog.sql(query.sql)
        scan = pruned.profile.scans[0]
        entering = scan.total_partitions
        for stage in (scan.filter_result, scan.join_result):
            if stage is not None:
                entering = stage.after
        if entering == 0 or scan.topk_checks == 0:
            continue
        ratio = scan.topk_skipped / entering
        if ratio == 0:
            continue  # paper: "successfully applied" top-k pruning
        t_off = baseline.profile.total_ms
        t_on = pruned.profile.total_ms
        improvement = 1 - t_on / t_off if t_off > 0 else 0.0
        samples.append((t_off, ratio, improvement))
    return samples


def test_fig9_topk_runtime(benchmark, platform):
    samples = benchmark.pedantic(run, args=(platform,), rounds=1,
                                 iterations=1)

    baselines = [s[0] for s in samples]
    t33 = percentile(baselines, 33)
    t66 = percentile(baselines, 66)
    buckets = {
        f"fast (t < {t33:.0f} ms)": [s for s in samples if s[0] < t33],
        f"mid ({t33:.0f} <= t < {t66:.0f} ms)":
            [s for s in samples if t33 <= s[0] < t66],
        f"slow (t >= {t66:.0f} ms)": [s for s in samples if s[0] >= t66],
    }
    report = Report("Figure 9 — top-k pruning ratio and runtime "
                    "improvement by baseline-runtime bucket")
    rows = []
    for label, bucket in buckets.items():
        if not bucket:
            continue
        ratio_stats = describe([s[1] for s in bucket])
        improv_stats = describe([s[2] for s in bucket])
        rows.append([label, len(bucket),
                     f"{ratio_stats.median:.1%}",
                     f"{improv_stats.median:.1%}",
                     f"{improv_stats.maximum:.1%}"])
    report.table(["bucket", "queries", "median prune ratio",
                  "median runtime improvement", "max improvement"],
                 rows)
    all_ratios = describe([s[1] for s in samples])
    all_improvements = describe([s[2] for s in samples])
    report.compare("avg pruning ratio (successfully applied)", 0.77,
                   round(all_ratios.mean, 3))
    report.compare("pruning/improvement correlate", "yes",
                   f"mean ratio {all_ratios.mean:.2f} vs mean "
                   f"improvement {all_improvements.mean:.2f}")
    report.print()

    # Shape: substantial pruning where applied, runtime improvements
    # track pruning ratios, and all buckets see improvements.
    assert all_ratios.mean > 0.4
    assert all_improvements.mean > 0.2
    assert abs(all_ratios.mean - all_improvements.mean) < 0.35
    for bucket in buckets.values():
        if bucket:
            assert max(s[2] for s in bucket) > 0.3
