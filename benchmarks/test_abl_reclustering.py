"""Ablation (§1 context): data layout determines pruning headroom.

The paper scopes layout optimization out ("the number of data
partitions that can be skipped primarily depends on how data is
distributed among micro-partitions") but that dependency is the
premise of every technique. This ablation quantifies it: the same
table and query set, before and after reclustering on the filter
column, with the clustering-depth metric tracking the change.
"""

import random

from repro.bench.reporting import Report
from repro.catalog import Catalog
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

N_ROWS = 30_000
N_QUERIES = 60


def run():
    rng = random.Random(29)
    schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER)
    rows = [(rng.randrange(N_ROWS), rng.randrange(1000))
            for _ in range(N_ROWS)]
    catalog = Catalog(rows_per_partition=300)
    catalog.create_table_from_rows("t", schema, rows,
                                   layout=Layout.random(seed=31))
    queries = []
    for _ in range(N_QUERIES):
        lo = rng.randrange(N_ROWS - 600)
        queries.append(
            f"SELECT * FROM t WHERE ts BETWEEN {lo} AND {lo + 599}")

    def evaluate():
        loaded = 0
        total = 0
        for sql in queries:
            result = catalog.sql(sql)
            loaded += result.profile.partitions_loaded
            total += result.profile.total_partitions
        info = catalog.clustering_information("t", "ts")
        return 1 - loaded / total, info.average_depth

    before_ratio, before_depth = evaluate()
    catalog.recluster("t", "ts")
    after_ratio, after_depth = evaluate()
    return {
        "before": (before_depth, before_ratio),
        "after": (after_depth, after_ratio),
    }


def test_abl_reclustering(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation — reclustering: layout determines "
                    "pruning headroom")
    report.table(
        ["state", "avg clustering depth", "partitions pruned"],
        [["random layout", f"{results['before'][0]:.1f}",
          f"{results['before'][1]:.1%}"],
         ["reclustered on ts", f"{results['after'][0]:.1f}",
          f"{results['after'][1]:.1%}"]])
    report.print()

    before_depth, before_ratio = results["before"]
    after_depth, after_ratio = results["after"]
    assert before_depth > 10      # fully overlapping ranges
    # Near-perfect after reclustering (duplicate ts values make
    # neighbouring partitions touch at their boundaries).
    assert after_depth < 3.0
    assert before_ratio < 0.1     # pruning cannot work
    assert after_ratio > 0.9      # pruning dominates
