"""Figure 8: influence of partition processing order on top-k pruning.

Paper: sorting partitions by their max values (for DESC queries)
"significantly improves the average pruning ratio compared to a random
partition order", improving both the median and the distribution tails.
"""

from repro.bench.reporting import Report
from repro.bench.stats import describe
from repro.plan.compiler import CompilerOptions
from repro.pruning.topk_pruning import OrderStrategy
from repro.workload import WorkloadGenerator

N_QUERIES = 120


def topk_ratio(result):
    scan = result.profile.scans[0]
    entering = scan.total_partitions
    for stage in (scan.filter_result, scan.join_result):
        if stage is not None:
            entering = stage.after
    if entering == 0:
        return None
    return scan.topk_skipped / entering


def run(platform):
    generator = WorkloadGenerator(platform, seed=31)
    queries = generator.generate_of_kind("topk_plain", N_QUERIES)
    ratios = {}
    for strategy in (OrderStrategy.NONE, OrderStrategy.FULL_SORT,
                     OrderStrategy.FULLY_MATCHING_FIRST):
        options = CompilerOptions(topk_order_strategy=strategy,
                                  topk_boundary_init=False)
        values = []
        for query in queries:
            result = platform.catalog.sql(query.sql, options)
            ratio = topk_ratio(result)
            if ratio is not None:
                values.append(ratio)
        ratios[strategy] = values
    return ratios


def test_fig8_topk_sorting(benchmark, platform):
    ratios = benchmark.pedantic(run, args=(platform,), rounds=1,
                                iterations=1)

    none_stats = describe(ratios[OrderStrategy.NONE])
    sort_stats = describe(ratios[OrderStrategy.FULL_SORT])
    fm_stats = describe(ratios[OrderStrategy.FULLY_MATCHING_FIRST])
    report = Report("Figure 8 — partition ordering for top-k pruning")
    rows = []
    for label, stats in (("none/random", none_stats),
                         ("full sort", sort_stats),
                         ("fully-matching first (§5.3 ext.)",
                          fm_stats)):
        rows.append([label, f"{stats.mean:.2%}",
                     f"{stats.median:.2%}", f"{stats.p25:.2%}",
                     f"{stats.p90:.2%}"])
    report.table(["strategy", "mean", "median", "p25", "p90"], rows)
    report.compare("sorting improves mean pruning ratio", "yes",
                   f"{none_stats.mean:.2%} -> {sort_stats.mean:.2%}")
    report.print()

    assert sort_stats.mean > none_stats.mean
    assert sort_stats.median >= none_stats.median
    # tails improve too (paper: "better worst-case performance")
    assert sort_stats.p25 >= none_stats.p25
    # the filter-aware extension never hurts relative to plain sorting
    assert fm_stats.mean >= sort_stats.mean - 0.02
