"""Ablation (§3.2): balancing compile-time and runtime pruning.

Compile-time pruning "can become prohibitively expensive for queries on
extremely large tables"; Snowflake can "dynamically push compile-time
pruning to a virtual warehouse". This ablation sweeps the partition
threshold beyond which pruning is deferred and reports where the
simulated time goes — compilation vs execution — and what it costs
(deferred pruning loses fully-matching detection and hence LIMIT
pruning).
"""

from repro.bench.reporting import Report
from repro.catalog import Catalog
from repro.plan.compiler import CompilerOptions
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

N_ROWS = 40_000
ROWS_PER_PARTITION = 50   # 800 partitions: a "large" table


def run():
    schema = Schema.of(ts=DataType.INTEGER, v=DataType.INTEGER)
    catalog = Catalog(rows_per_partition=ROWS_PER_PARTITION)
    catalog.create_table_from_rows(
        "t", schema, [(i, i % 11) for i in range(N_ROWS)],
        layout=Layout.sorted_by("ts"))
    sql = f"SELECT * FROM t WHERE ts >= {N_ROWS - 500}"
    results = {}
    for label, limit in (("compile-time pruning", None),
                         ("runtime pruning (deferred)", 100)):
        options = CompilerOptions(compile_prune_partition_limit=limit)
        result = catalog.sql(sql, options)
        profile = result.profile
        results[label] = (profile.compile_ms, profile.exec_ms,
                          profile.partitions_loaded, result.num_rows)
    return results


def test_abl_compile_runtime(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §3.2 — compile-time vs runtime pruning "
                    "on an 800-partition table")
    report.table(
        ["mode", "compile (ms)", "exec (ms)", "partitions loaded",
         "rows"],
        [[label, f"{c:.2f}", f"{e:.2f}", loaded, rows]
         for label, (c, e, loaded, rows) in results.items()])
    report.print()

    compile_mode = results["compile-time pruning"]
    runtime_mode = results["runtime pruning (deferred)"]
    # Same answer, same I/O either way.
    assert compile_mode[3] == runtime_mode[3] == 500
    assert compile_mode[2] == runtime_mode[2]
    # Deferral moves the pruning cost out of compilation into the
    # (parallelizable) execution phase.
    assert runtime_mode[0] < compile_mode[0]
    assert runtime_mode[1] > compile_mode[1]
