"""Micro-benchmarks of the hot kernels (multi-round timings).

Unlike the figure/table benches (one-shot experiment reproductions),
these measure raw throughput of the pruning primitives: zone-map
checks, scan-set pruning, expression evaluation, summary probes, and
the top-k heap.
"""

import random

from repro.expr.ast import And, Compare, If, InList, Like, col, lit
from repro.expr.eval import evaluate_predicate
from repro.expr.pruning import prune_partition
from repro.pruning.base import ScanSet
from repro.pruning.filter_pruning import FilterPruner
from repro.pruning.join_pruning import build_summary
from repro.pruning.stats_index import (
    StatsIndex,
    VectorizedFilterPruner,
    compile_pruning_kernel,
)
from repro.storage.builder import build_table
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(ts=DataType.INTEGER, category=DataType.VARCHAR,
                   score=DataType.INTEGER)

_rng = random.Random(0)
_ROWS = [(i, f"cat{_rng.randrange(8):02d}", _rng.randrange(10**6))
         for i in range(50_000)]
_TABLE = build_table("t", SCHEMA, _ROWS, rows_per_partition=100,
                     layout=Layout.sorted_by("ts"))
_SCAN_SET = ScanSet((p.partition_id, p.zone_map)
                    for p in _TABLE.partitions)
_PREDICATE = And(
    Compare(">=", col("ts"), lit(40_000)),
    Like(col("category"), "cat0%"),
    Compare(">", If(Compare("=", col("category"), lit("cat01")),
                    col("score"), lit(0)), lit(-1)),
)
#: LIKE/IF never compile to kernels; this shape exercises the
#: vectorized path end to end.
_COMPILABLE_PREDICATE = And(
    Compare(">=", col("ts"), lit(40_000)),
    InList(col("category"), ["cat01", "cat03", "cat05"]),
    Compare(">", col("score"), lit(250_000)),
)
_STATS_INDEX = StatsIndex(_SCAN_SET.entries)


def test_prune_partition_check(benchmark):
    """One tri-state pruning verdict from a zone map."""
    zone_map = _TABLE.partitions[250].zone_map
    benchmark(prune_partition, _PREDICATE, zone_map, SCHEMA)


def test_filter_pruner_500_partitions(benchmark):
    """Compile-time pruning of a 500-partition scan set."""

    def prune():
        pruner = FilterPruner(_PREDICATE, SCHEMA)
        return pruner.prune(_SCAN_SET).after

    result = benchmark(prune)
    assert result < len(_SCAN_SET)


def test_vectorized_pruner_500_partitions(benchmark):
    """Kernel-compiled pruning of the same 500-partition scan set."""

    def prune():
        pruner = VectorizedFilterPruner(
            _COMPILABLE_PREDICATE, SCHEMA, index=_STATS_INDEX)
        return pruner.prune(_SCAN_SET).after

    result = benchmark(prune)
    assert result < len(_SCAN_SET)


def test_scalar_pruner_500_partitions_compilable(benchmark):
    """AST-walk baseline over the same compilable predicate."""

    def prune():
        pruner = FilterPruner(_COMPILABLE_PREDICATE, SCHEMA)
        return pruner.prune(_SCAN_SET).after

    result = benchmark(prune)
    assert result < len(_SCAN_SET)


def test_kernel_classify_only(benchmark):
    """One bulk classify pass over 500 packed partitions."""
    kernel = compile_pruning_kernel(_COMPILABLE_PREDICATE)
    assert kernel is not None
    codes = kernel.classify(_STATS_INDEX)
    assert codes is not None

    benchmark(kernel.classify, _STATS_INDEX)


def test_vectorized_predicate_eval(benchmark):
    """Row-level predicate evaluation over one partition (100 rows)."""
    partition = _TABLE.partitions[250]
    columns = partition.columns()

    def evaluate():
        return evaluate_predicate(_PREDICATE, columns, SCHEMA)

    benchmark(evaluate)


def test_rangeset_summary_probe(benchmark):
    """Range-set overlap probes (binary search over 64 intervals)."""
    summary = build_summary(
        [_rng.randrange(10**6) for _ in range(5000)], "rangeset")
    probes = [( _rng.randrange(10**6), ) for _ in range(100)]

    def probe():
        hits = 0
        for (lo,) in probes:
            if summary.might_overlap_range(lo, lo + 500):
                hits += 1
        return hits

    benchmark(probe)


def test_bloom_vs_cuckoo_vs_xor_lookup(benchmark):
    """Membership lookups across the three filters (300 probes)."""
    values = [_rng.randrange(10**6) for _ in range(5000)]
    filters = [build_summary(values, kind)
               for kind in ("bloom", "cuckoo", "xor")]
    probes = [_rng.randrange(10**6) for _ in range(100)]

    def lookup():
        return sum(f.might_contain(p)
                   for f in filters for p in probes)

    benchmark(lookup)


def test_topk_heap_10k_rows(benchmark):
    """Heap-based top-10 over 10k rows via the TopK operator."""
    from repro.engine.chunk import Chunk
    from repro.engine.context import ExecContext
    from repro.engine.executor import execute
    from repro.engine.operators import ChunkSource, TopK
    from repro.storage.storage_layer import StorageLayer

    chunk = Chunk.from_rows(SCHEMA, _ROWS[:10_000])

    def run():
        context = ExecContext(StorageLayer())
        source = ChunkSource(SCHEMA, [chunk])
        topk = TopK(context, source, "score", 10, desc=True)
        return execute(topk, context).num_rows

    result = benchmark(run)
    assert result == 10


def test_scan_set_serialization(benchmark):
    """Serialize + deserialize a 500-partition scan set."""
    zone_maps = {pid: zm for pid, zm in _SCAN_SET}

    def roundtrip():
        data = _SCAN_SET.serialize()
        return len(ScanSet.deserialize(data, zone_maps.__getitem__))

    result = benchmark(roundtrip)
    assert result == len(_SCAN_SET)
