"""Figure 1: pruning ratios of different techniques for eligible
queries, plus the paper's headline platform-wide pruning ratio.

Paper: filter pruning achieves ~99% for applicable queries, LIMIT ~70%,
top-k ~77%, join ~79% (Conclusion); LIMIT shows a high mean relative to
a low median; 99.4% of all micro-partitions are pruned platform-wide.
"""

from repro.bench.reporting import Report
from repro.bench.stats import describe
from repro.pruning.flow import TECHNIQUE_ORDER

PAPER_MEANS = {"filter": 0.99, "limit": 0.70, "topk": 0.77,
               "join": 0.79}
PAPER_PLATFORM_RATIO = 0.994


def analyze(flow):
    stats = {}
    for technique in TECHNIQUE_ORDER:
        # Figure 1 plots ratios for queries where the technique was
        # *applied* (pruned at least one partition), relative to the
        # partitions entering the technique.
        ratios = [record.ratio(technique, relative_to_query=False)
                  for record in flow.records
                  if record.applied(technique)]
        if ratios:
            stats[technique] = describe(ratios)
    return stats, flow.platform_pruning_ratio()


def test_fig1_pruning_ratios(benchmark, mixed_run):
    stats, platform_ratio = benchmark.pedantic(
        analyze, args=(mixed_run.flow,), rounds=1, iterations=1)

    report = Report("Figure 1 — pruning ratios per technique "
                    "(queries where the technique pruned)")
    rows = []
    for technique, box in stats.items():
        rows.append([technique, box.count, f"{box.mean:.2%}",
                     f"{box.median:.2%}", f"{box.p25:.2%}",
                     f"{box.p90:.2%}"])
    report.table(["technique", "queries", "mean", "median", "p25",
                  "p90"], rows)
    for technique, paper_mean in PAPER_MEANS.items():
        if technique in stats:
            report.compare(f"{technique} mean ratio", paper_mean,
                           round(stats[technique].mean, 3))
    report.compare("platform-wide partitions pruned",
                   PAPER_PLATFORM_RATIO, round(platform_ratio, 4))
    report.print()

    # Shape assertions: every technique prunes substantially where it
    # applies, and the platform-wide ratio is dominated by pruning.
    for technique, box in stats.items():
        assert box.mean > 0.3, technique
    assert stats["filter"].mean > 0.7
    # Paper: 99.4%. Our synthetic fleet is far less size-skewed than
    # Snowflake's (their denominator is dominated by monster tables
    # pruned at 99.9%+); the qualitative claim — the overwhelming
    # majority of addressed partitions are never read — holds.
    assert platform_ratio > 0.8
    # LIMIT pruning: high mean relative to overall applicability
    # (few queries benefit, but those benefit a lot).
    if "limit" in stats:
        assert stats["limit"].mean > 0.5
