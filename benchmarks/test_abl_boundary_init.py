"""Ablation (§5.4): upfront initialization of top-k boundary values.

Compares partitions loaded for top-k queries with and without
compile-time boundary initialization, on a sorted layout (where the
cumulative-min candidate shines) and on an overlapping layout (where
the k-th-max candidate is the productive one).
"""

import random

from repro.bench.reporting import Report
from repro.plan.compiler import CompilerOptions
from repro.pruning.topk_pruning import OrderStrategy
from repro.catalog import Catalog
from repro.storage.clustering import Layout
from repro.types import DataType, Schema

SCHEMA = Schema.of(v=DataType.INTEGER, payload=DataType.VARCHAR)
N_ROWS = 20_000


def build(layout_kind):
    rng = random.Random(13)
    rows = [(rng.randrange(10**6), f"p{i}") for i in range(N_ROWS)]
    layout = {"sorted": Layout.sorted_by("v"),
              "clustered": Layout.clustered_by("v", jitter=60, seed=2),
              }[layout_kind]
    catalog = Catalog(rows_per_partition=200)
    catalog.create_table_from_rows("t", SCHEMA, rows, layout=layout)
    return catalog


def run():
    results = {}
    for layout_kind in ("sorted", "clustered"):
        catalog = build(layout_kind)
        for init in (False, True):
            # Random processing order isolates the effect of the
            # initial boundary from the ordering strategy.
            options = CompilerOptions(
                topk_boundary_init=init,
                topk_order_strategy=OrderStrategy.NONE)
            result = catalog.sql(
                "SELECT * FROM t ORDER BY v DESC LIMIT 10", options)
            scan = result.profile.scans[0]
            results[(layout_kind, init)] = (scan.partitions_loaded,
                                            scan.topk_skipped)
    return results


def test_abl_boundary_init(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report = Report("Ablation §5.4 — upfront boundary initialization")
    report.table(
        ["layout", "boundary init", "partitions loaded",
         "partitions skipped"],
        [[layout, "on" if init else "off", loaded, skipped]
         for (layout, init), (loaded, skipped) in results.items()])
    report.print()

    for layout in ("sorted", "clustered"):
        loaded_off, _ = results[(layout, False)]
        loaded_on, _ = results[(layout, True)]
        # Initialization can only help: pruning starts "from the very
        # first partition".
        assert loaded_on <= loaded_off
    # On the sorted layout the initialized boundary is near-perfect.
    assert results[("sorted", True)][0] <= 3
