#!/usr/bin/env python
"""PR benchmark report: telemetry-driven background reclustering.

Measures the operational claims of PR 9 — the closed layout loop
(telemetry -> advisor -> budgeted incremental recluster -> better
pruning) — and writes them to ``BENCH_PR9.json`` (for CI artifact
upload and regression tracking):

1. **Drift detection + CDF shift** — a table sorted by ``ts`` serves a
   workload that filters on ``score``. The advisor must recommend
   ``(events, score)`` from the TelemetrySink alone (no operator
   hint), and after the background service converges, the median
   filter-pruning ratio of the same query mix must improve by
   >= 0.2 absolute (the fleet pruning-ratio CDF shifts right).
2. **Budget discipline** — across every slice the job ran, the summed
   input-partition bytes rewritten in that slice must stay <= the
   configured ``budget_bytes``. No slice may blow the lock-hold bound.
3. **Zero divergence under concurrent traffic** — the background
   thread reclusters while reader threads SELECT and a writer thread
   runs the same deterministic DML applied to a fault-free oracle
   catalog; final row sets and a battery of differential queries must
   be identical, with no thread errors.
4. **Progress visibility** — ``describe()`` must expose the
   reclustering status block plus ``recluster_*`` counters, and the
   fleet report must account the slices as maintenance, separate from
   query traffic.

Usage::

    PYTHONPATH=src python benchmarks/bench_recluster_report.py
        [--quick] [--output BENCH_PR9.json]

``--quick`` shrinks table sizes and query counts for CI smoke runs
(every gate still applies).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    Catalog,
    DataType,
    Layout,
    QueryService,
    Schema,
)
from repro.obs.fleet import fleet_summary, render_fleet_report  # noqa: E402
from repro.recluster import best_advice  # noqa: E402

SCHEMA = Schema.of(ts=DataType.INTEGER, category=DataType.VARCHAR,
                   value=DataType.DOUBLE, score=DataType.INTEGER)

DIFFERENTIAL_SQL = [
    "SELECT count(*) AS c FROM events",
    "SELECT sum(score) AS s FROM events",
    "SELECT category, count(*) AS c FROM events GROUP BY category",
    "SELECT * FROM events WHERE score BETWEEN 100000 AND 140000",
    "SELECT * FROM events WHERE ts < 50 AND score >= 500000",
]


def make_events_rows(n: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    categories = ["alpha", "beta", "gamma", "delta"]
    return [(i, rng.choice(categories),
             round(rng.uniform(0, 1000), 3), rng.randrange(1_000_000))
            for i in range(n)]


def drifting_service(n: int, rows_per_partition: int = 100,
                     seed: int = 21) -> QueryService:
    """Table sorted by ``ts``; the workload will filter on ``score``."""
    catalog = Catalog(rows_per_partition=rows_per_partition)
    catalog.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n, seed=seed),
        layout=Layout.sorted_by("ts"))
    return QueryService(catalog)


def run_score_queries(service: QueryService, count: int,
                      seed: int) -> list[float]:
    """Run score-range SELECTs; returns their filter-pruning ratios."""
    rng = random.Random(seed)
    ratios = []
    for _ in range(count):
        lo = rng.randrange(900_000)
        result = service.sql(
            f"SELECT * FROM events WHERE score BETWEEN {lo} "
            f"AND {lo + 30_000}")
        scan = result.profile.scans[0]
        ratios.append(scan.partitions_pruned / scan.total_partitions)
    return ratios


def median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def cdf_deciles(values: list[float]) -> list[float]:
    """The pruning-ratio value at each decile (p10..p90 inclusive)."""
    ordered = sorted(values)
    return [round(ordered[min(len(ordered) - 1,
                              int(p / 100 * len(ordered)))], 3)
            for p in range(10, 100, 10)]


# ----------------------------------------------------------------------
# 1 + 2 + 4. Drift detection, CDF shift, budget discipline, visibility
# ----------------------------------------------------------------------
def bench_drift_loop(n_rows: int, n_queries: int,
                     budget_bytes: int) -> dict:
    service = drifting_service(n_rows)
    before = run_score_queries(service, n_queries, seed=1)

    # What the advisor sees is ONLY the sink contents — no hints.
    advice = best_advice(service.telemetry.records(), service.catalog)
    recluster = service.enable_reclustering(budget_bytes=budget_bytes)
    slice_bytes: list[int] = []
    depth_trajectory: list[float] = []
    while True:
        report = recluster.step()
        if report is None:
            break
        if report.partitions_selected:
            slice_bytes.append(report.bytes_rewritten)
        depth_trajectory.append(round(report.depth_after, 3))
        assert len(depth_trajectory) < 1000, "job did not terminate"

    after = run_score_queries(service, n_queries, seed=2)

    snap = service.describe()
    status = snap["reclustering"]
    report_text = render_fleet_report(service.telemetry.records())
    summary = fleet_summary(service.telemetry.records())

    return {
        "rows": n_rows,
        "queries_per_phase": n_queries,
        "budget_bytes": budget_bytes,
        "advice": None if advice is None else {
            "table": advice.table, "column": advice.column,
            "queries": advice.queries,
            "pruning_ratio": round(advice.pruning_ratio, 3),
            "clustering_depth": round(advice.clustering_depth, 3),
            "score": round(advice.score, 2),
        },
        "median_ratio_before": round(median(before), 3),
        "median_ratio_after": round(median(after), 3),
        "cdf_deciles_before": cdf_deciles(before),
        "cdf_deciles_after": cdf_deciles(after),
        "slices": len(slice_bytes),
        "max_slice_bytes": max(slice_bytes, default=0),
        "depth_initial": depth_trajectory[0] if depth_trajectory
        else None,
        "depth_final": depth_trajectory[-1] if depth_trajectory
        else None,
        "completed_jobs": status["completed_jobs"],
        "describe_counters": {
            key: snap[key] for key in (
                "recluster_jobs_started", "recluster_jobs_completed",
                "recluster_slices", "recluster_partitions_rewritten",
                "recluster_bytes_rewritten")},
        "fleet_report_has_recluster_line":
            "reclustering:" in report_text
            and "background slices" in report_text,
        "fleet_queries_exclude_maintenance":
            summary["queries"] == 2 * n_queries,
        "fleet_recluster_slices": summary["recluster_slices"],
    }


# ----------------------------------------------------------------------
# 3. Zero divergence under concurrent SELECT/DML traffic
# ----------------------------------------------------------------------
def bench_concurrent_divergence(n_rows: int, n_readers: int,
                                reads_per_thread: int,
                                budget_bytes: int) -> dict:
    service = drifting_service(n_rows)
    run_score_queries(service, 12, seed=3)  # heat the telemetry

    oracle = Catalog(rows_per_partition=100)
    oracle.create_table_from_rows(
        "events", SCHEMA, make_events_rows(n_rows, seed=21))

    dml = [f"DELETE FROM events WHERE score >= {980_000 - i * 8_000}"
           for i in range(4)]
    dml += ["UPDATE events SET value = value + 1 "
            "WHERE category = 'alpha'",
            f"DELETE FROM events WHERE ts < {n_rows // 50}"]

    recluster = service.enable_reclustering(
        budget_bytes=budget_bytes, start=True)
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            for _ in range(reads_per_thread):
                result = service.sql(
                    "SELECT count(*) AS c FROM events")
                assert result.rows[0][0] > 0
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    def writer() -> None:
        try:
            for statement in dml:
                service.sql(statement)
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=reader)
               for _ in range(n_readers)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    recluster.stop()

    for statement in dml:  # same history, no recluster interleaved
        oracle.sql(statement)

    subject_rows = sorted(
        service.catalog.tables["events"].to_rows(), key=repr)
    oracle_rows = sorted(oracle.tables["events"].to_rows(), key=repr)
    differential_ok = all(
        sorted(service.sql(sql).rows, key=repr)
        == sorted(oracle.sql(sql).rows, key=repr)
        for sql in DIFFERENTIAL_SQL)

    return {
        "rows": n_rows,
        "reader_threads": n_readers,
        "reads_per_thread": reads_per_thread,
        "dml_statements": len(dml),
        "recluster_slices": int(service.metrics.counter(
            "recluster_slices").value),
        "thread_errors": [repr(e) for e in errors],
        "row_sets_identical": subject_rows == oracle_rows,
        "differential_queries_identical": differential_ok,
        "final_row_count": len(subject_rows),
    }


# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller tables / fewer queries "
                             "(CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR9.json"))
    args = parser.parse_args()

    if args.quick:
        drift_rows, drift_queries, drift_budget = 3000, 15, 24 * 1024
        conc_rows, conc_readers, conc_reads = 1500, 2, 10
    else:
        drift_rows, drift_queries, drift_budget = 6000, 25, 48 * 1024
        conc_rows, conc_readers, conc_reads = 3000, 3, 15

    drift = bench_drift_loop(drift_rows, drift_queries, drift_budget)
    concurrent = bench_concurrent_divergence(
        conc_rows, conc_readers, conc_reads, budget_bytes=64 * 1024)

    improvement = (drift["median_ratio_after"]
                   - drift["median_ratio_before"])
    gates = {
        "advisor_detects_drift_from_telemetry_alone": (
            drift["advice"] is not None
            and drift["advice"]["table"] == "events"
            and drift["advice"]["column"] == "score"),
        "median_pruning_ratio_improves_ge_0_2": improvement >= 0.2,
        "slice_bytes_never_exceed_budget": (
            drift["slices"] > 0
            and drift["max_slice_bytes"] <= drift["budget_bytes"]),
        "concurrent_traffic_zero_divergence": (
            concurrent["thread_errors"] == []
            and concurrent["row_sets_identical"]
            and concurrent["differential_queries_identical"]),
        "progress_visible_in_describe_and_fleet_report": (
            bool(drift["completed_jobs"])
            and drift["describe_counters"][
                "recluster_bytes_rewritten"] > 0
            and drift["fleet_report_has_recluster_line"]
            and drift["fleet_queries_exclude_maintenance"]),
    }

    payload = {
        "pr": 9,
        "title": "Telemetry-driven background reclustering "
                 "(advisor, budgeted engine, service loop)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "median_ratio_improvement": round(improvement, 3),
        "drift_loop": drift,
        "concurrent_divergence": concurrent,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
