#!/usr/bin/env python
"""PR benchmark report: secondary sketches for hostile predicates.

Measures the operational claims of PR 10 — per-partition secondary
sketches (3-gram membership filters, bounded dictionaries, equi-width
histograms) plus per-query-shape skip sets — and writes them to
``BENCH_PR10.json`` (for CI artifact upload and regression tracking):

1. **Pruning on hostile predicates** — substring-``LIKE`` /
   ``CONTAINS`` and low-cardinality equality predicates that zone maps
   cannot serve must reach a median sketch-stage pruning ratio >= 0.5
   over the workload.
2. **Zero result divergence** — every workload query must return
   bit-identical rows on the sketched catalog and on an identical
   catalog with no sketches at all (the scalar no-sketch oracle).
3. **Bounded build overhead** — total sketch build time must stay
   <= 2x the time spent building the partitions themselves.
4. **Skip sets pay off** — re-running the workload must produce
   skip-set hits, and the describe() snapshot must surface the
   sketches block.

Usage::

    PYTHONPATH=src python benchmarks/bench_sketches_report.py
        [--quick] [--output BENCH_PR10.json]

``--quick`` shrinks table sizes and query counts for CI smoke runs
(every gate still applies).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Catalog, DataType, QueryService, Schema  # noqa: E402
from repro.pruning.sketches import SketchConfig  # noqa: E402

SCHEMA = Schema.of(msg=DataType.VARCHAR, region=DataType.VARCHAR,
                   code=DataType.INTEGER, value=DataType.DOUBLE)

MARKERS = [f"mk{i:02d}x" for i in range(24)]
REGIONS = [f"r{i:02d}" for i in range(16)]


def make_rows(n: int, rows_per_partition: int, seed: int) -> list[tuple]:
    """Hostile layout: every partition's zone maps span nearly the
    whole value domain, but each partition only *contains* a couple of
    markers / regions / codes — exactly the shape where min/max
    pruning is useless and sketches are not."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        p = i // rows_per_partition
        marker = MARKERS[(p * 5 + (i % 2) * 11) % len(MARKERS)]
        region = REGIONS[(p * 7 + (i % 2) * 3) % len(REGIONS)]
        code = (p * 13 + (i % 2) * 29) % 97
        # wide zone maps: every partition gets a low and a high anchor
        anchor = "aaa" if i % rows_per_partition == 0 else (
            "zzz" if i % rows_per_partition == 1 else marker)
        rows.append((f"{anchor}-payload-{marker}-{i}",
                     region if i % rows_per_partition > 1
                     else ("r00" if i % 2 else "r15"),
                     code, round(rng.uniform(0, 1000), 3)))
    return rows


def workload(count: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0:
            marker = rng.choice(MARKERS)
            queries.append(
                f"SELECT * FROM logs WHERE msg LIKE '%{marker}%'")
        elif kind == 1:
            marker = rng.choice(MARKERS)
            queries.append(
                f"SELECT * FROM logs WHERE CONTAINS(msg, '{marker}')")
        elif kind == 2:
            region = rng.choice(REGIONS)
            queries.append(
                f"SELECT * FROM logs WHERE region = '{region}'")
        else:
            # Jointly-absent conjunction: partition p holds marker
            # MARKERS[p*5 % 24] only on even rows and region
            # REGIONS[(p*7+3) % 16] only on odd rows, so each sketch
            # keeps partition p individually but the scan finds no
            # row satisfying both — exactly the observed-empty shape
            # that query-shape skip sets record and reuse.
            p = rng.randrange(64)
            marker = MARKERS[(p * 5) % len(MARKERS)]
            region = REGIONS[(p * 7 + 3) % len(REGIONS)]
            queries.append(
                f"SELECT * FROM logs WHERE CONTAINS(msg, '{marker}') "
                f"AND region = '{region}'")
    return queries


def freeze(rows) -> Counter:
    return Counter(tuple(map(repr, row)) for row in rows)


def median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def warmup() -> None:
    """Exercise the partition-build and sketch-build paths once so the
    timed comparison below measures steady-state cost, not first-call
    effects (bytecode warmup, numpy internal caches, lazy imports)."""
    rows = make_rows(400, 50, seed=3)
    cat = Catalog(rows_per_partition=50)
    cat.create_table_from_rows("logs", SCHEMA, rows)
    cat.enable_sketches(SketchConfig(dictionary_max_entries=48))
    cat.sql("SELECT * FROM logs WHERE CONTAINS(msg, 'mk00x')")


def bench(n_rows: int, n_queries: int,
          rows_per_partition: int) -> tuple[dict, dict]:
    rows = make_rows(n_rows, rows_per_partition, seed=17)
    warmup()

    started = time.perf_counter()
    plain = Catalog(rows_per_partition=rows_per_partition)
    plain.create_table_from_rows("logs", SCHEMA, rows)
    partition_build_ms = (time.perf_counter() - started) * 1000

    sketched = Catalog(rows_per_partition=rows_per_partition)
    sketched.create_table_from_rows("logs", SCHEMA, rows)
    sketched.enable_sketches(SketchConfig(dictionary_max_entries=48))
    service = QueryService(sketched)

    # Queries go through the catalog directly: the service's result
    # cache would serve the repeat pass without compiling, and the
    # point of the repeat is to exercise skip-set lookups at compile.
    queries = workload(n_queries, seed=29)
    ratios: list[float] = []
    divergences = 0
    checks = 0
    for sql in queries:
        got = sketched.sql(sql)
        want = plain.sql(sql)
        if freeze(got.rows) != freeze(want.rows):
            divergences += 1
        scan = got.profile.scans[0]
        result = scan.sketch_result
        if result is not None and result.before:
            ratios.append(result.pruned / result.before)
            checks += result.checks
        else:
            ratios.append(0.0)

    # second pass: identical shapes, so skip sets should fire
    for sql in queries:
        got = sketched.sql(sql)
        want = plain.sql(sql)
        if freeze(got.rows) != freeze(want.rows):
            divergences += 1

    snap = service.describe()
    skip_stats = sketched.skip_sets.stats()
    stage = {
        "rows": n_rows,
        "partitions": len(sketched.tables["logs"].partitions),
        "queries": 2 * n_queries,
        "median_sketch_ratio": round(median(ratios), 3),
        "mean_sketch_ratio": round(sum(ratios) / len(ratios), 3),
        "sketch_checks": checks,
        "divergences": divergences,
        "partition_build_ms": round(partition_build_ms, 2),
        "sketch_build_ms": round(sketched.sketch_build_ms, 2),
        "sketch_build_failures": sketched.sketch_build_failures,
        "skip_set_hits": skip_stats["hits"],
        "skip_set_entries": skip_stats["entries"],
        "describe_has_sketches_block": "sketches" in snap,
        "partitions_with_sketches": snap.get("sketches", {}).get(
            "partitions_with_sketches", 0),
    }
    gates = {
        "median_pruning_ratio_ge_0_5":
            stage["median_sketch_ratio"] >= 0.5,
        "zero_result_divergence": divergences == 0,
        "sketch_build_overhead_le_2x": (
            stage["sketch_build_ms"]
            <= 2 * max(stage["partition_build_ms"], 0.01)),
        "skip_sets_hit_on_repeat": skip_stats["hits"] > 0,
        "observable_in_describe": (
            stage["describe_has_sketches_block"]
            and stage["partitions_with_sketches"]
            == stage["partitions"]),
    }
    return stage, gates


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller tables / fewer queries "
                             "(CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR10.json"))
    args = parser.parse_args()

    if args.quick:
        n_rows, n_queries, rows_per_partition = 4000, 24, 100
    else:
        n_rows, n_queries, rows_per_partition = 12000, 48, 100

    stage, gates = bench(n_rows, n_queries, rows_per_partition)

    payload = {
        "pr": 10,
        "title": "Secondary sketches: n-gram filters, dictionaries, "
                 "histograms, and query-shape skip sets",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "workload": stage,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
