#!/usr/bin/env python
"""PR benchmark report: runtime pruning without serial islands.

Measures the operational claims of PR 8 — parallel top-k scans over a
shared atomic boundary, vectorized runtime prune classification, and
prefetch under runtime pruners — and writes them to ``BENCH_PR8.json``
(for CI artifact upload and regression tracking):

1. **Parallel top-k wall clock** — a top-k scan whose order-column
   ranges overlap across every partition (so the boundary cannot prune
   and all partitions genuinely load) with a real per-load I/O sleep.
   Gates: >= 2x wall-clock speedup at 4 workers with bit-identical
   rows, plus identical rows under a seeded fault schedule.
2. **Prefetch coverage under top-k** — with the data cache's
   prefetcher enabled, the readahead coverage ratio
   (``prefetched_partitions / partitions_loaded``) of a top-k scan
   must be > 0 and within 80% of the same ratio for a plain
   filter-only scan (runtime re-validation must not starve the
   prefetch window).
3. **Vectorized runtime classify** — ``topk_skip_mask`` /
   ``join_may_join_mask`` over a ~20k-partition stats index versus the
   scalar per-partition walk. Gates: >= 5x speedup on both kernels
   with bit-identical verdicts.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime_report.py [--quick]
        [--output BENCH_PR8.json]

``--quick`` shrinks partition counts and repetitions for CI smoke runs
(every gate still applies).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import Catalog  # noqa: E402
from repro.faults import FaultInjector, FaultSpec  # noqa: E402
from repro.faults.retry import RetryPolicy  # noqa: E402
from repro.pruning.join_pruning import (  # noqa: E402
    JoinPruner,
    build_summary,
)
from repro.pruning.stats_index import (  # noqa: E402
    StatsIndex,
    join_may_join_mask,
    topk_skip_mask,
)
from repro.pruning.topk_pruning import Boundary, TopKPruner  # noqa: E402
from repro.storage.zonemap import ColumnStats, ZoneMap  # noqa: E402
from repro.types import DataType, Schema  # noqa: E402

SCHEMA = Schema.of(id=DataType.INTEGER, v=DataType.DOUBLE,
                   g=DataType.VARCHAR)

TOPK_SQL = "SELECT id, v FROM t ORDER BY v DESC LIMIT 8"

FAULTS = FaultSpec(timeout_rate=0.04, throttle_rate=0.02,
                   latency_rate=0.03, latency_ms=4.0)


def make_topk_catalog(n_partitions: int, rows_per_partition: int,
                      seed: int = 7,
                      sentinel_max: bool = False) -> Catalog:
    """Order-column values drawn uniformly over one global range.

    With ``sentinel_max`` every partition's first row carries the
    global maximum, so no partition can ever fall below the boundary
    and all of them genuinely load: the wall-clock comparison then
    measures I/O overlap, not skip luck.
    """
    rng = random.Random(seed)
    rows = [(i, 1000.0 if sentinel_max
             and i % rows_per_partition == 0 else rng.uniform(0, 1000),
             f"g{i % 7}")
            for i in range(n_partitions * rows_per_partition)]
    catalog = Catalog(rows_per_partition=rows_per_partition,
                      scan_parallelism=1)
    catalog.create_table_from_rows("t", SCHEMA, rows)
    return catalog


# ----------------------------------------------------------------------
# 1. Parallel top-k wall clock
# ----------------------------------------------------------------------
def bench_parallel_topk(n_partitions: int, rows_per_partition: int,
                        io_sleep_ms: float, repeats: int) -> dict:
    catalog = make_topk_catalog(n_partitions, rows_per_partition,
                                sentinel_max=True)
    catalog.storage.io_sleep_ms = io_sleep_ms

    def run(workers: int):
        catalog.scan_parallelism = workers
        best_wall, result = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            result = catalog.sql(TOPK_SQL)
            wall = time.perf_counter() - start
            best_wall = wall if best_wall is None \
                else min(best_wall, wall)
        return best_wall, result

    serial_wall, serial = run(1)
    parallel_wall, parallel = run(4)
    catalog.storage.io_sleep_ms = 0.0

    # Seeded transient faults, no sleep: rows must still be exact.
    fault_rows = {}
    for workers in (1, 4):
        catalog.scan_parallelism = workers
        catalog.enable_fault_injection(
            injector=FaultInjector(seed=23, storage=FAULTS),
            retry_policy=RetryPolicy(max_attempts=8))
        fault_rows[workers] = catalog.sql(TOPK_SQL).rows

    return {
        "partitions": n_partitions,
        "io_sleep_ms": io_sleep_ms,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup_x": round(serial_wall / parallel_wall, 2),
        "rows_identical": parallel.rows == serial.rows,
        "partitions_loaded_identical":
            parallel.profile.partitions_loaded
            == serial.profile.partitions_loaded,
        "exec_ms_identical":
            abs(parallel.profile.exec_ms - serial.profile.exec_ms)
            < 1e-6,
        "fault_rows_identical": fault_rows[4] == fault_rows[1],
    }


# ----------------------------------------------------------------------
# 2. Prefetch coverage under a runtime pruner
# ----------------------------------------------------------------------
def bench_prefetch_coverage(n_partitions: int,
                            rows_per_partition: int) -> dict:
    catalog = make_topk_catalog(n_partitions, rows_per_partition,
                                seed=11)

    def coverage(sql: str) -> tuple[float, int, int]:
        catalog.data_cache = None  # enable_* is idempotent: drop first
        catalog.enable_data_cache(prefetch=True)  # fresh cold cache
        scan = catalog.sql(sql).profile.scans[0]
        loaded = scan.partitions_loaded or 1
        return (scan.prefetched_partitions / loaded,
                scan.prefetched_partitions, scan.partitions_loaded)

    topk_ratio, topk_prefetched, topk_loaded = coverage(TOPK_SQL)
    filter_ratio, filter_prefetched, filter_loaded = coverage(
        "SELECT id, v FROM t WHERE v >= 0")

    return {
        "topk": {"prefetched": topk_prefetched,
                 "loaded": topk_loaded,
                 "coverage": round(topk_ratio, 3)},
        "filter_only": {"prefetched": filter_prefetched,
                        "loaded": filter_loaded,
                        "coverage": round(filter_ratio, 3)},
        "relative_coverage": round(
            topk_ratio / filter_ratio if filter_ratio else 0.0, 3),
    }


# ----------------------------------------------------------------------
# 3. Vectorized runtime classify vs the scalar walk
# ----------------------------------------------------------------------
def make_synthetic_entries(n_partitions: int,
                           seed: int = 3) -> list[tuple[int, ZoneMap]]:
    """Zone maps built directly (no partition materialisation): each
    carries a narrow DOUBLE range and a narrow INTEGER range so both
    the top-k boundary and a range-set summary prune roughly half."""
    rng = random.Random(seed)
    entries = []
    for i in range(n_partitions):
        lo_v = rng.uniform(0, 1000)
        lo_a = rng.randint(0, 10_000)
        columns = {
            "v": ColumnStats(DataType.DOUBLE, lo_v,
                             lo_v + rng.uniform(1, 40),
                             null_count=0, row_count=100),
            "a": ColumnStats(DataType.INTEGER, lo_a,
                             lo_a + rng.randint(1, 200),
                             null_count=0, row_count=100),
        }
        entries.append((i + 1, ZoneMap(100, columns)))
    return entries


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_vectorized_classify(n_partitions: int, repeats: int) -> dict:
    entries = make_synthetic_entries(n_partitions)
    index = StatsIndex(entries)

    # --- top-k boundary classification -------------------------------
    boundary = Boundary(desc=True)
    boundary.update_value(500.0)
    rank = boundary.rank
    scalar_topk = TopKPruner("v", boundary)

    topk_skip_mask(index, "v", True, 500.0)  # warm the packed lanes
    vec_topk_s = _best_of(
        lambda: topk_skip_mask(index, "v", True, 500.0), repeats)
    sca_topk_s = _best_of(
        lambda: [scalar_topk.best_possible_rank(zm) < rank
                 for _, zm in entries], repeats)

    mask = topk_skip_mask(index, "v", True, 500.0)
    topk_identical = all(
        bool(mask[index.row_of(pid)])
        == (scalar_topk.best_possible_rank(zm) < rank)
        for pid, zm in entries)

    # --- join-filter summary classification --------------------------
    summary = build_summary(
        [v for base in range(0, 10_000, 700) for v in range(base, base + 90, 3)],
        kind="rangeset")
    scalar_join = JoinPruner("a", summary)

    join_may_join_mask(index, "a", summary)  # warm
    vec_join_s = _best_of(
        lambda: join_may_join_mask(index, "a", summary), repeats)
    sca_join_s = _best_of(
        lambda: [scalar_join.partition_may_join(zm)
                 for _, zm in entries], repeats)

    jmask = join_may_join_mask(index, "a", summary)
    join_identical = all(
        bool(jmask[index.row_of(pid)])
        == scalar_join.partition_may_join(zm)
        for pid, zm in entries)

    return {
        "partitions": n_partitions,
        "topk": {
            "vectorized_s": round(vec_topk_s, 6),
            "scalar_s": round(sca_topk_s, 6),
            "speedup_x": round(sca_topk_s / vec_topk_s, 1),
            "verdicts_identical": topk_identical,
        },
        "join": {
            "vectorized_s": round(vec_join_s, 6),
            "scalar_s": round(sca_join_s, 6),
            "speedup_x": round(sca_join_s / vec_join_s, 1),
            "verdicts_identical": join_identical,
        },
    }


# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer partitions / repetitions "
                             "(CI smoke)")
    parser.add_argument("--output", default=str(
        REPO_ROOT / "BENCH_PR8.json"))
    args = parser.parse_args()

    if args.quick:
        wall_parts, io_sleep, wall_reps = 40, 2.0, 2
        classify_parts, classify_reps = 4000, 3
    else:
        wall_parts, io_sleep, wall_reps = 80, 3.0, 3
        classify_parts, classify_reps = 20_000, 5

    parallel = bench_parallel_topk(wall_parts, 25, io_sleep,
                                   wall_reps)
    prefetch = bench_prefetch_coverage(40, 25)
    classify = bench_vectorized_classify(classify_parts,
                                         classify_reps)

    gates = {
        "parallel_topk_speedup_ge_2x": parallel["speedup_x"] >= 2.0,
        "parallel_topk_identical_results": all((
            parallel["rows_identical"],
            parallel["partitions_loaded_identical"],
            parallel["exec_ms_identical"],
            parallel["fault_rows_identical"])),
        "topk_prefetch_coverage_ge_80pct_of_filter_only":
            prefetch["relative_coverage"] >= 0.8
            and prefetch["topk"]["coverage"] > 0,
        "vectorized_classify_ge_5x": (
            classify["topk"]["speedup_x"] >= 5.0
            and classify["join"]["speedup_x"] >= 5.0),
        "vectorized_verdicts_identical": (
            classify["topk"]["verdicts_identical"]
            and classify["join"]["verdicts_identical"]),
    }

    payload = {
        "pr": 8,
        "title": "Runtime pruning without serial islands "
                 "(parallel top-k, vectorized classify, prefetch)",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "parallel_topk": parallel,
        "prefetch_coverage": prefetch,
        "vectorized_classify": classify,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"\nFAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nAll gates passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
