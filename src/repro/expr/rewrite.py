"""Predicate rewrites used by the pruning machinery.

Two rewrites from the paper:

* **Imprecise filter rewrite** (§3.1): widen a predicate to a weaker
  one that min/max metadata can decide. The widened predicate must be
  implied by the original — a partition pruned under the widened form
  is safely pruned under the original. Example:
  ``name LIKE 'Marked-%-Ridge'`` widens to ``STARTSWITH(name, 'Marked-')``.

* **Not-true inversion** (§4.2): build a predicate that holds exactly
  when the original is *not TRUE* (i.e. FALSE or NULL). Running the
  normal pruning pass with this inverted predicate identifies
  fully-matching partitions: if no row satisfies "NOT TRUE", then every
  row satisfies the original. Plain ``NOT p`` is insufficient under
  three-valued logic because ``NOT NULL = NULL``, which would let
  NULL-predicate rows slip through.
"""

from __future__ import annotations

from . import ast


def widen_for_pruning(expr: ast.Expr) -> ast.Expr:
    """Widen a predicate into a (possibly weaker) prunable form.

    The result is implied by the input: rows satisfying ``expr`` always
    satisfy ``widen_for_pruning(expr)``. Structure is preserved for
    AND/OR/IF; LIKE patterns with a literal prefix become STARTSWITH;
    constructs that cannot be widened are left as-is (range derivation
    will simply answer MAYBE for them).

    Note: widening weakens a predicate, so the result is only valid for
    *pruning* (NEVER detection), not for deciding fully-matching
    partitions. Use the original predicate for ALWAYS checks.
    """
    if isinstance(expr, ast.And):
        return ast.And([widen_for_pruning(c) for c in expr.children()])
    if isinstance(expr, ast.Or):
        return ast.Or([widen_for_pruning(c) for c in expr.children()])
    if isinstance(expr, ast.Like) and not expr.is_exact:
        prefix = expr.literal_prefix
        if prefix:
            return ast.StartsWith(expr.child, prefix)
        return expr
    # NOT and other nodes are kept verbatim: widening below a NOT would
    # strengthen the overall predicate and risk false negatives.
    return expr


def not_true(expr: ast.Expr) -> ast.Expr:
    """A predicate satisfied exactly when ``expr`` is FALSE or NULL.

    Distributes through the boolean structure (De Morgan holds for
    "not TRUE" in Kleene logic: ``a AND b`` is not TRUE iff ``a`` is
    not TRUE or ``b`` is not TRUE), and at the leaves ORs the negated
    comparison with NULL checks on its column inputs.
    """
    if isinstance(expr, ast.And):
        return ast.Or([not_true(c) for c in expr.children()])
    if isinstance(expr, ast.Or):
        return ast.And([not_true(c) for c in expr.children()])
    if isinstance(expr, ast.Not):
        # NOT a is not TRUE  <=>  a is TRUE or a is NULL  <=>  NOT
        # (a is not TRUE and a is not NULL). Express as: a OR (a IS
        # NULL-ish). We conservatively use: not_true(NOT a) = a OR
        # is_null_of(a); is_null of a boolean expr is modeled by
        # checking its column inputs.
        inner = expr.child
        if _has_non_column_null_source(inner):
            return ast.Literal(True)
        return _or_with_null_checks(inner, inner)
    if isinstance(expr, ast.IsNull):
        # IS [NOT] NULL never returns NULL; plain negation suffices.
        return ast.IsNull(expr.child, negated=not expr.negated)
    if isinstance(expr, ast.Literal):
        value = expr.value
        return ast.Literal(value is not True)
    # Leaf predicate (comparison, LIKE, IN, ...): not TRUE <=> the
    # Kleene negation is TRUE, or the leaf evaluates to NULL. Most leaf
    # predicates are strict: they return NULL only when a column input
    # is NULL, so ORing IS NULL checks over the referenced columns is
    # exact. Leaves that can produce NULL from non-column sources
    # (division/modulo by zero, NULL literals, IN lists containing
    # NULL) get the trivially-true fallback, which never certifies a
    # fully-matching partition but is always sound.
    if _has_non_column_null_source(expr):
        return ast.Literal(True)
    return _or_with_null_checks(ast.Not(expr), expr)


def _has_non_column_null_source(expr: ast.Expr) -> bool:
    """Whether a subtree can evaluate to NULL with all columns non-NULL."""
    for node in expr.walk():
        if isinstance(node, ast.Arith) and node.op in ("/", "%"):
            return True
        if isinstance(node, ast.Literal) and node.value is None:
            return True
        if isinstance(node, ast.InList) and any(
                v is None for v in node.values):
            return True
    return False


def _or_with_null_checks(base: ast.Expr, source: ast.Expr) -> ast.Expr:
    """``base OR col1 IS NULL OR col2 IS NULL ...`` for source's columns."""
    null_checks = [ast.IsNull(ast.ColumnRef(name))
                   for name in sorted(source.column_refs())]
    if not null_checks:
        return base
    return ast.Or([base] + null_checks)
