"""Constant folding and boolean simplification.

Used by the query compiler before pruning so that, e.g., sub-tree
elimination after a scan set empties out can fold the remaining plan
(§2.1 "elimination of entire sub-trees").
"""

from __future__ import annotations

from typing import Any

from ..errors import ReproError
from ..types import Schema
from . import ast

TRUE = ast.Literal(True)
FALSE = ast.Literal(False)


def simplify(expr: ast.Expr, schema: Schema) -> ast.Expr:
    """Fold constants and flatten/prune boolean structure.

    The result is semantically equivalent to the input under SQL
    three-valued logic.
    """
    expr = expr.with_children(
        [simplify(c, schema) for c in expr.children()])
    if isinstance(expr, ast.And):
        return _simplify_and(expr)
    if isinstance(expr, ast.Or):
        return _simplify_or(expr)
    if isinstance(expr, ast.Not):
        return _simplify_not(expr)
    if isinstance(expr, ast.If):
        return _simplify_if(expr)
    return _fold_if_constant(expr, schema)


def _is_literal(expr: ast.Expr, value: Any) -> bool:
    return isinstance(expr, ast.Literal) and expr.value is value


def _simplify_and(expr: ast.And) -> ast.Expr:
    children: list[ast.Expr] = []
    for child in expr.children():
        if isinstance(child, ast.And):
            children.extend(child.children())  # flatten nested ANDs
        elif _is_literal(child, True):
            continue
        elif _is_literal(child, False):
            return FALSE
        else:
            children.append(child)
    if not children:
        return TRUE
    if len(children) == 1:
        return children[0]
    return ast.And(children)


def _simplify_or(expr: ast.Or) -> ast.Expr:
    children: list[ast.Expr] = []
    for child in expr.children():
        if isinstance(child, ast.Or):
            children.extend(child.children())
        elif _is_literal(child, False):
            continue
        elif _is_literal(child, True):
            return TRUE
        else:
            children.append(child)
    if not children:
        return FALSE
    if len(children) == 1:
        return children[0]
    return ast.Or(children)


def _simplify_not(expr: ast.Not) -> ast.Expr:
    child = expr.child
    if _is_literal(child, True):
        return FALSE
    if _is_literal(child, False):
        return TRUE
    if isinstance(child, ast.Not):
        return child.child
    if isinstance(child, ast.IsNull):
        return ast.IsNull(child.child, negated=not child.negated)
    return expr


def _simplify_if(expr: ast.If) -> ast.Expr:
    if _is_literal(expr.cond, True):
        return expr.then
    # FALSE and NULL conditions both select the else branch.
    if isinstance(expr.cond, ast.Literal) and expr.cond.value is not True:
        return expr.otherwise
    return expr


def _fold_if_constant(expr: ast.Expr, schema: Schema) -> ast.Expr:
    """Evaluate literal-only subtrees down to a literal."""
    if isinstance(expr, (ast.Literal, ast.ColumnRef)):
        return expr
    if expr.column_refs():
        return expr
    from ..storage.column import Column  # deferred: avoid import cycle
    from ..types import DataType
    from .eval import evaluate

    # Evaluate against a one-row dummy chunk so constant expressions
    # produce exactly one value.
    one_row = {"__dummy__": Column.from_pylist(DataType.INTEGER, [0])}
    try:
        dtype = expr.dtype(schema)
        result = evaluate(expr, one_row, schema)
    except ReproError:
        return expr
    return ast.Literal(result.value_at(0), dtype)
