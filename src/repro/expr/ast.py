"""Expression AST nodes.

Nodes are immutable; equality and hashing are structural so expressions
can key caches (predicate cache, §8.2) and plan-shape statistics
(Figure 12). Every node renders back to SQL via :meth:`Expr.to_sql` and
to a literal-insensitive *shape* via :meth:`Expr.shape`.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Sequence

from ..errors import TypeMismatchError
from ..types import DataType, Schema, common_numeric_type, comparable, infer_type

ARITH_OPS = ("+", "-", "*", "/", "%")
COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Functions with known semantics; each entry is (arity, doc).
FUNCTIONS = {
    "abs": 1,
    "ceil": 1,
    "floor": 1,
    "round": 1,
    "upper": 1,
    "lower": 1,
    "length": 1,
    "coalesce": 2,
    "least": 2,
    "greatest": 2,
    "year": 1,
    "month": 1,
    "day": 1,
}


class Expr:
    """Base class for all expression nodes."""

    #: Subclasses set this to their child attribute names, in order.
    _child_slots: tuple[str, ...] = ()

    def children(self) -> tuple["Expr", ...]:
        return tuple(getattr(self, slot) for slot in self._child_slots)

    def with_children(self, children: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with new children (same non-child state)."""
        raise NotImplementedError

    def dtype(self, schema: Schema) -> DataType:
        """Result type of this expression against ``schema``."""
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def shape(self) -> str:
        """A literal-insensitive fingerprint used for plan-shape stats."""
        raise NotImplementedError

    def _key(self) -> tuple:
        """Structural identity tuple; subclasses extend."""
        return (type(self).__name__,) + self.children()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return self.to_sql()

    def column_refs(self) -> set[str]:
        """Names of all columns referenced anywhere in the tree."""
        refs: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ColumnRef):
                refs.add(node.name)
            stack.extend(node.children())
        return refs

    def walk(self) -> Iterable["Expr"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children():
            yield from child.walk()


def _format_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    return str(value)


class ColumnRef(Expr):
    """Reference to a named column."""

    def __init__(self, name: str):
        self.name = name.lower()

    def with_children(self, children: Sequence[Expr]) -> "ColumnRef":
        return self

    def dtype(self, schema: Schema) -> DataType:
        return schema.dtype_of(self.name)

    def to_sql(self) -> str:
        return self.name

    def shape(self) -> str:
        return f"col({self.name})"

    def _key(self) -> tuple:
        return ("ColumnRef", self.name)


class Literal(Expr):
    """A constant. ``None`` is the SQL NULL literal (typed)."""

    def __init__(self, value: Any, dtype: DataType | None = None):
        if dtype is None:
            if value is None:
                raise TypeMismatchError(
                    "NULL literal requires an explicit dtype")
            dtype = infer_type(value)
        self.value = value
        self._dtype = dtype

    def with_children(self, children: Sequence[Expr]) -> "Literal":
        return self

    def dtype(self, schema: Schema) -> DataType:
        return self._dtype

    def to_sql(self) -> str:
        return _format_literal(self.value)

    def shape(self) -> str:
        return f"lit:{self._dtype.value}"

    def _key(self) -> tuple:
        return ("Literal", self._dtype, self.value)


class Arith(Expr):
    """Binary arithmetic: ``+ - * / %``.

    ``/`` always yields DOUBLE and evaluates to NULL on a zero divisor
    (engine-defined, in lieu of a runtime error).
    """

    _child_slots = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in ARITH_OPS:
            raise TypeMismatchError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def with_children(self, children: Sequence[Expr]) -> "Arith":
        return Arith(self.op, children[0], children[1])

    def dtype(self, schema: Schema) -> DataType:
        left, right = self.left.dtype(schema), self.right.dtype(schema)
        if self.op == "/":
            if not (left.is_numeric and right.is_numeric):
                raise TypeMismatchError(
                    f"'/' needs numeric operands, got {left} and {right}")
            return DataType.DOUBLE
        return common_numeric_type(left, right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def shape(self) -> str:
        return f"({self.left.shape()}{self.op}{self.right.shape()})"

    def _key(self) -> tuple:
        return ("Arith", self.op, self.left, self.right)


class Neg(Expr):
    """Unary numeric negation."""

    _child_slots = ("child",)

    def __init__(self, child: Expr):
        self.child = child

    def with_children(self, children: Sequence[Expr]) -> "Neg":
        return Neg(children[0])

    def dtype(self, schema: Schema) -> DataType:
        inner = self.child.dtype(schema)
        if not inner.is_numeric:
            raise TypeMismatchError(f"cannot negate {inner}")
        return inner

    def to_sql(self) -> str:
        return f"(-{self.child.to_sql()})"

    def shape(self) -> str:
        return f"(-{self.child.shape()})"


class Compare(Expr):
    """Binary comparison with SQL NULL semantics (NULL op x → NULL)."""

    _child_slots = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in COMPARE_OPS:
            raise TypeMismatchError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def with_children(self, children: Sequence[Expr]) -> "Compare":
        return Compare(self.op, children[0], children[1])

    def dtype(self, schema: Schema) -> DataType:
        left, right = self.left.dtype(schema), self.right.dtype(schema)
        if not comparable(left, right):
            raise TypeMismatchError(
                f"cannot compare {left.value} with {right.value}")
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def shape(self) -> str:
        return f"({self.left.shape()}{self.op}{self.right.shape()})"

    def _key(self) -> tuple:
        return ("Compare", self.op, self.left, self.right)


class _Variadic(Expr):
    """Shared base for AND/OR over two or more children."""

    _sql_op = ""

    def __init__(self, children: Sequence[Expr]):
        if len(children) < 2:
            raise TypeMismatchError(
                f"{type(self).__name__} needs at least two children")
        self._children = tuple(children)

    def children(self) -> tuple[Expr, ...]:
        return self._children

    def with_children(self, children: Sequence[Expr]) -> "_Variadic":
        return type(self)(list(children))

    def dtype(self, schema: Schema) -> DataType:
        for child in self._children:
            if child.dtype(schema) != DataType.BOOLEAN:
                raise TypeMismatchError(
                    f"{type(self).__name__} child {child!r} is not BOOLEAN")
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        inner = f" {self._sql_op} ".join(c.to_sql() for c in self._children)
        return f"({inner})"

    def shape(self) -> str:
        inner = f" {self._sql_op} ".join(c.shape() for c in self._children)
        return f"({inner})"

    def _key(self) -> tuple:
        return (type(self).__name__,) + self._children


class And(_Variadic):
    """Kleene-logic conjunction."""

    _sql_op = "AND"

    def __init__(self, *children: Expr):
        if len(children) == 1 and isinstance(children[0], (list, tuple)):
            children = tuple(children[0])
        super().__init__(children)


class Or(_Variadic):
    """Kleene-logic disjunction."""

    _sql_op = "OR"

    def __init__(self, *children: Expr):
        if len(children) == 1 and isinstance(children[0], (list, tuple)):
            children = tuple(children[0])
        super().__init__(children)


class Not(Expr):
    """Kleene-logic negation (NOT NULL → NULL)."""

    _child_slots = ("child",)

    def __init__(self, child: Expr):
        self.child = child

    def with_children(self, children: Sequence[Expr]) -> "Not":
        return Not(children[0])

    def dtype(self, schema: Schema) -> DataType:
        if self.child.dtype(schema) != DataType.BOOLEAN:
            raise TypeMismatchError("NOT requires a BOOLEAN child")
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        return f"(NOT {self.child.to_sql()})"

    def shape(self) -> str:
        return f"(NOT {self.child.shape()})"


class If(Expr):
    """``IF(cond, then, else)``: *then* when cond is TRUE, else *else*.

    A NULL condition selects the else branch (Snowflake ``IFF``
    semantics).
    """

    _child_slots = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def with_children(self, children: Sequence[Expr]) -> "If":
        return If(children[0], children[1], children[2])

    def dtype(self, schema: Schema) -> DataType:
        if self.cond.dtype(schema) != DataType.BOOLEAN:
            raise TypeMismatchError("IF condition must be BOOLEAN")
        then, other = self.then.dtype(schema), self.otherwise.dtype(schema)
        if then == other:
            return then
        return common_numeric_type(then, other)

    def to_sql(self) -> str:
        return (f"IF({self.cond.to_sql()}, {self.then.to_sql()}, "
                f"{self.otherwise.to_sql()})")

    def shape(self) -> str:
        return (f"IF({self.cond.shape()},{self.then.shape()},"
                f"{self.otherwise.shape()})")


class Like(Expr):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any char)."""

    _child_slots = ("child",)

    def __init__(self, child: Expr, pattern: str):
        self.child = child
        self.pattern = pattern

    def with_children(self, children: Sequence[Expr]) -> "Like":
        return Like(children[0], self.pattern)

    def dtype(self, schema: Schema) -> DataType:
        if self.child.dtype(schema) != DataType.VARCHAR:
            raise TypeMismatchError("LIKE requires a VARCHAR child")
        return DataType.BOOLEAN

    @property
    def literal_prefix(self) -> str:
        """The pattern's literal prefix before the first wildcard."""
        for i, ch in enumerate(self.pattern):
            if ch in "%_":
                return self.pattern[:i]
        return self.pattern

    @property
    def is_exact(self) -> bool:
        """Whether the pattern contains no wildcards (plain equality)."""
        return "%" not in self.pattern and "_" not in self.pattern

    def to_sql(self) -> str:
        return (f"({self.child.to_sql()} LIKE "
                f"{_format_literal(self.pattern)})")

    def shape(self) -> str:
        return f"({self.child.shape()} LIKE lit:VARCHAR)"

    def _key(self) -> tuple:
        return ("Like", self.child, self.pattern)


class _StringPredicate(Expr):
    """Shared base for STARTSWITH / ENDSWITH / CONTAINS."""

    _child_slots = ("child",)
    _fn = ""

    def __init__(self, child: Expr, needle: str):
        self.child = child
        self.needle = needle

    def with_children(self, children: Sequence[Expr]):
        return type(self)(children[0], self.needle)

    def dtype(self, schema: Schema) -> DataType:
        if self.child.dtype(schema) != DataType.VARCHAR:
            raise TypeMismatchError(f"{self._fn} requires a VARCHAR child")
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        return (f"{self._fn}({self.child.to_sql()}, "
                f"{_format_literal(self.needle)})")

    def shape(self) -> str:
        return f"{self._fn}({self.child.shape()}, lit:VARCHAR)"

    def _key(self) -> tuple:
        return (type(self).__name__, self.child, self.needle)


class StartsWith(_StringPredicate):
    """``STARTSWITH(s, prefix)`` — prunable against min/max (§3.1)."""

    _fn = "STARTSWITH"


class EndsWith(_StringPredicate):
    """``ENDSWITH(s, suffix)`` — not prunable with min/max alone."""

    _fn = "ENDSWITH"


class Contains(_StringPredicate):
    """``CONTAINS(s, needle)`` — not prunable with min/max alone."""

    _fn = "CONTAINS"


class InList(Expr):
    """``x IN (v1, v2, ...)`` over literal values."""

    _child_slots = ("child",)

    def __init__(self, child: Expr, values: Sequence[Any]):
        if not values:
            raise TypeMismatchError("IN list must be non-empty")
        self.child = child
        self.values = tuple(values)

    def with_children(self, children: Sequence[Expr]) -> "InList":
        return InList(children[0], self.values)

    def dtype(self, schema: Schema) -> DataType:
        child = self.child.dtype(schema)
        for value in self.values:
            if value is not None and not comparable(child,
                                                    infer_type(value)):
                raise TypeMismatchError(
                    f"IN list value {value!r} not comparable with "
                    f"{child.value}")
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        inner = ", ".join(_format_literal(v) for v in self.values)
        return f"({self.child.to_sql()} IN ({inner}))"

    def shape(self) -> str:
        return f"({self.child.shape()} IN [*{len(self.values)}])"

    def _key(self) -> tuple:
        return ("InList", self.child, self.values)


class IsNull(Expr):
    """``x IS NULL`` (never NULL itself)."""

    _child_slots = ("child",)

    def __init__(self, child: Expr, negated: bool = False):
        self.child = child
        self.negated = negated

    def with_children(self, children: Sequence[Expr]) -> "IsNull":
        return IsNull(children[0], self.negated)

    def dtype(self, schema: Schema) -> DataType:
        self.child.dtype(schema)  # validate child
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.child.to_sql()} {op})"

    def shape(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.child.shape()} {op})"

    def _key(self) -> tuple:
        return ("IsNull", self.child, self.negated)


class FunctionCall(Expr):
    """Call of a scalar function from :data:`FUNCTIONS`."""

    def __init__(self, name: str, args: Sequence[Expr]):
        name = name.lower()
        if name not in FUNCTIONS:
            raise TypeMismatchError(f"unknown function {name!r}")
        if len(args) != FUNCTIONS[name]:
            raise TypeMismatchError(
                f"{name} expects {FUNCTIONS[name]} argument(s), "
                f"got {len(args)}")
        self.name = name
        self.args = tuple(args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Sequence[Expr]) -> "FunctionCall":
        return FunctionCall(self.name, list(children))

    def dtype(self, schema: Schema) -> DataType:
        arg_types = [a.dtype(schema) for a in self.args]
        return _function_result_type(self.name, arg_types)

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        return f"{self.name.upper()}({inner})"

    def shape(self) -> str:
        inner = ", ".join(a.shape() for a in self.args)
        return f"{self.name.upper()}({inner})"

    def _key(self) -> tuple:
        return ("FunctionCall", self.name) + self.args


def _function_result_type(name: str,
                          arg_types: list[DataType]) -> DataType:
    first = arg_types[0]
    if name in ("abs",):
        _require_numeric(name, first)
        return first
    if name in ("ceil", "floor", "round"):
        _require_numeric(name, first)
        return DataType.INTEGER
    if name in ("upper", "lower"):
        _require(name, first, DataType.VARCHAR)
        return DataType.VARCHAR
    if name == "length":
        _require(name, first, DataType.VARCHAR)
        return DataType.INTEGER
    if name in ("coalesce", "least", "greatest"):
        second = arg_types[1]
        if first == second:
            return first
        return common_numeric_type(first, second)
    if name in ("year", "month", "day"):
        _require(name, first, DataType.DATE)
        return DataType.INTEGER
    raise TypeMismatchError(f"unknown function {name!r}")


def _require_numeric(name: str, dtype: DataType) -> None:
    if not dtype.is_numeric:
        raise TypeMismatchError(f"{name} requires a numeric argument")


def _require(name: str, dtype: DataType, expected: DataType) -> None:
    if dtype != expected:
        raise TypeMismatchError(
            f"{name} requires {expected.value}, got {dtype.value}")


class Cast(Expr):
    """``CAST(x AS type)``; only numeric <-> numeric casts for now."""

    _child_slots = ("child",)

    def __init__(self, child: Expr, target: DataType):
        self.child = child
        self.target = target

    def with_children(self, children: Sequence[Expr]) -> "Cast":
        return Cast(children[0], self.target)

    def dtype(self, schema: Schema) -> DataType:
        source = self.child.dtype(schema)
        ok = (source.is_numeric and self.target.is_numeric) or \
            source == self.target
        if not ok:
            raise TypeMismatchError(
                f"unsupported cast {source.value} -> {self.target.value}")
        return self.target

    def to_sql(self) -> str:
        return f"CAST({self.child.to_sql()} AS {self.target.value})"

    def shape(self) -> str:
        return f"CAST({self.child.shape()} AS {self.target.value})"

    def _key(self) -> tuple:
        return ("Cast", self.child, self.target)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any, dtype: DataType | None = None) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value, dtype)


def between(child: Expr, lo: Expr, hi: Expr) -> And:
    """``x BETWEEN lo AND hi`` desugared to two comparisons."""
    return And(Compare(">=", child, lo), Compare("<=", child, hi))
