"""Vectorized expression evaluation with SQL three-valued logic.

``evaluate(expr, columns)`` produces a :class:`~repro.storage.column.Column`
of the expression's value for every row. NULLs propagate per SQL rules:
Kleene logic for AND/OR/NOT, NULL-on-any-NULL for arithmetic and
comparisons, and engine-defined NULL for division by zero.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..errors import ExecutionError
from ..storage.column import Column
from ..types import DataType, Schema, days_to_date
from . import ast


def evaluate(expr: ast.Expr, columns: Mapping[str, Column],
             schema: Schema) -> Column:
    """Evaluate ``expr`` over a chunk of columns.

    Args:
        expr: the expression tree.
        columns: name -> :class:`Column`; all the same length.
        schema: schema used for type resolution.

    Returns:
        A column of ``expr.dtype(schema)`` with one value per input row.
    """
    length = _chunk_length(columns)
    return _eval(expr, columns, schema, length)


def evaluate_predicate(expr: ast.Expr, columns: Mapping[str, Column],
                       schema: Schema) -> np.ndarray:
    """Evaluate a boolean predicate to a selection mask.

    Rows where the predicate is FALSE *or NULL* are excluded, per SQL
    WHERE semantics.
    """
    result = evaluate(expr, columns, schema)
    if result.dtype != DataType.BOOLEAN:
        raise ExecutionError(
            f"predicate evaluated to {result.dtype.value}, not BOOLEAN")
    return result.values & ~result.nulls


def _chunk_length(columns: Mapping[str, Column]) -> int:
    for column in columns.values():
        return len(column)
    return 0


def _eval(expr: ast.Expr, columns: Mapping[str, Column], schema: Schema,
          length: int) -> Column:
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise ExecutionError(f"no evaluator for {type(expr).__name__}")
    return handler(expr, columns, schema, length)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
def _eval_column_ref(expr: ast.ColumnRef, columns, schema, length) -> Column:
    try:
        return columns[expr.name]
    except KeyError:
        raise ExecutionError(
            f"column {expr.name!r} not present in chunk") from None


def _eval_literal(expr: ast.Literal, columns, schema, length) -> Column:
    return Column.constant(expr.dtype(schema), expr.value, length)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _eval_arith(expr: ast.Arith, columns, schema, length) -> Column:
    left = _eval(expr.left, columns, schema, length)
    right = _eval(expr.right, columns, schema, length)
    out_type = expr.dtype(schema)
    nulls = left.nulls | right.nulls
    lv, rv = left.values, right.values
    if expr.op == "+":
        values = lv + rv
    elif expr.op == "-":
        values = lv - rv
    elif expr.op == "*":
        values = lv * rv
    elif expr.op == "/":
        zero = rv == 0
        nulls = nulls | zero
        safe = np.where(zero, 1, rv)
        values = lv.astype(np.float64) / safe
    elif expr.op == "%":
        zero = rv == 0
        nulls = nulls | zero
        safe = np.where(zero, 1, rv)
        with np.errstate(all="ignore"):
            values = np.mod(lv, safe)
    else:  # pragma: no cover - guarded by Arith.__init__
        raise ExecutionError(f"unknown arithmetic op {expr.op!r}")
    values = np.asarray(values, dtype=out_type.numpy_dtype())
    return Column(out_type, values, nulls)


def _eval_neg(expr: ast.Neg, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    return Column(child.dtype, -child.values, child.nulls.copy())


# ----------------------------------------------------------------------
# Comparisons and boolean logic
# ----------------------------------------------------------------------
def _eval_compare(expr: ast.Compare, columns, schema, length) -> Column:
    left = _eval(expr.left, columns, schema, length)
    right = _eval(expr.right, columns, schema, length)
    nulls = left.nulls | right.nulls
    lv, rv = left.values, right.values
    if expr.op == "=":
        values = lv == rv
    elif expr.op == "<>":
        values = lv != rv
    elif expr.op == "<":
        values = lv < rv
    elif expr.op == "<=":
        values = lv <= rv
    elif expr.op == ">":
        values = lv > rv
    else:  # ">="
        values = lv >= rv
    values = np.asarray(values, dtype=np.bool_)
    # Dummy values under null masks may compare arbitrarily; mask them.
    return Column(DataType.BOOLEAN, values & ~nulls, nulls)


def _eval_and(expr: ast.And, columns, schema, length) -> Column:
    # Kleene AND: FALSE dominates, then NULL, then TRUE.
    any_false = np.zeros(length, dtype=np.bool_)
    any_null = np.zeros(length, dtype=np.bool_)
    for child in expr.children():
        c = _eval(child, columns, schema, length)
        any_false |= ~c.nulls & ~c.values
        any_null |= c.nulls
    nulls = any_null & ~any_false
    values = ~any_false & ~nulls
    return Column(DataType.BOOLEAN, values, nulls)


def _eval_or(expr: ast.Or, columns, schema, length) -> Column:
    # Kleene OR: TRUE dominates, then NULL, then FALSE.
    any_true = np.zeros(length, dtype=np.bool_)
    any_null = np.zeros(length, dtype=np.bool_)
    for child in expr.children():
        c = _eval(child, columns, schema, length)
        any_true |= ~c.nulls & c.values
        any_null |= c.nulls
    nulls = any_null & ~any_true
    return Column(DataType.BOOLEAN, any_true, nulls)


def _eval_not(expr: ast.Not, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    return Column(DataType.BOOLEAN, ~child.values & ~child.nulls,
                  child.nulls.copy())


def _eval_if(expr: ast.If, columns, schema, length) -> Column:
    cond = _eval(expr.cond, columns, schema, length)
    then = _eval(expr.then, columns, schema, length)
    other = _eval(expr.otherwise, columns, schema, length)
    out_type = expr.dtype(schema)
    take_then = cond.values & ~cond.nulls  # NULL condition -> else branch
    then_values = np.asarray(then.values, dtype=out_type.numpy_dtype())
    other_values = np.asarray(other.values, dtype=out_type.numpy_dtype())
    values = np.where(take_then, then_values, other_values)
    nulls = np.where(take_then, then.nulls, other.nulls)
    return Column(out_type, values, np.asarray(nulls, dtype=np.bool_))


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------
class _SegmentedRegexCache:
    """Bounded, scan-resistant, stampede-safe LIKE-pattern cache.

    Shared module-wide and keyed only on pattern text, so it needs two
    properties a plain ``lru_cache`` lacks:

    * **Scan resistance** — segmented LRU: first-seen patterns enter a
      *probation* segment and only promote to *protected* on a second
      hit. An adversarial stream of high-cardinality one-shot patterns
      churns probation but cannot evict the hot, repeatedly-used
      patterns sitting in protected.
    * **Stampede safety** — compilation happens outside the lock (a
      regex compile is pure, so concurrent duplicate compiles are
      wasted work, never corruption) and the lock is held only for the
      dict bookkeeping, so one slow compile never serializes every
      other thread's cache hits.
    """

    def __init__(self, maxsize: int = 512):
        self._protected_cap = max(1, maxsize // 2)
        self._probation_cap = max(1, maxsize - self._protected_cap)
        self._protected: "OrderedDict[str, re.Pattern]" = OrderedDict()
        self._probation: "OrderedDict[str, re.Pattern]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __call__(self, pattern: str) -> re.Pattern:
        with self._lock:
            compiled = self._protected.get(pattern)
            if compiled is not None:
                self._protected.move_to_end(pattern)
                self.hits += 1
                return compiled
            compiled = self._probation.pop(pattern, None)
            if compiled is not None:
                # Second touch: promote. Protected overflow demotes its
                # LRU back to probation rather than dropping it.
                self._protected[pattern] = compiled
                if len(self._protected) > self._protected_cap:
                    demoted, value = self._protected.popitem(last=False)
                    self._insert_probation(demoted, value)
                self.hits += 1
                return compiled
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(regex, re.DOTALL)
        with self._lock:
            self.misses += 1
            if pattern not in self._protected:
                self._insert_probation(pattern, compiled)
        return compiled

    def _insert_probation(self, pattern: str,
                          compiled: re.Pattern) -> None:
        self._probation[pattern] = compiled
        self._probation.move_to_end(pattern)
        while len(self._probation) > self._probation_cap:
            self._probation.popitem(last=False)

    def __contains__(self, pattern: str) -> bool:
        with self._lock:
            return (pattern in self._protected
                    or pattern in self._probation)

    def clear(self) -> None:
        with self._lock:
            self._protected.clear()
            self._probation.clear()
            self.hits = self.misses = 0


_like_regex = _SegmentedRegexCache(maxsize=512)


def _eval_like(expr: ast.Like, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    regex = _like_regex(expr.pattern)
    values = np.fromiter(
        (bool(regex.fullmatch(v)) if not is_null else False
         for v, is_null in zip(child.values, child.nulls)),
        dtype=np.bool_, count=length)
    return Column(DataType.BOOLEAN, values, child.nulls.copy())


def _string_predicate(check):
    def handler(expr, columns, schema, length) -> Column:
        child = _eval(expr.child, columns, schema, length)
        needle = expr.needle
        values = np.fromiter(
            (check(v, needle) if not is_null else False
             for v, is_null in zip(child.values, child.nulls)),
            dtype=np.bool_, count=length)
        return Column(DataType.BOOLEAN, values, child.nulls.copy())

    return handler


_eval_startswith = _string_predicate(lambda v, n: v.startswith(n))
_eval_endswith = _string_predicate(lambda v, n: v.endswith(n))
_eval_contains = _string_predicate(lambda v, n: n in v)


# ----------------------------------------------------------------------
# IN / IS NULL / CAST
# ----------------------------------------------------------------------
def _eval_in_list(expr: ast.InList, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    non_null_values = [v for v in expr.values if v is not None]
    list_has_null = len(non_null_values) < len(expr.values)
    matched = np.zeros(length, dtype=np.bool_)
    for value in non_null_values:
        matched |= np.asarray(child.values == value, dtype=np.bool_)
    matched &= ~child.nulls
    # SQL: x IN (...) is NULL when x is NULL, or when unmatched and the
    # list contains NULL.
    nulls = child.nulls.copy()
    if list_has_null:
        nulls = nulls | ~matched
    return Column(DataType.BOOLEAN, matched & ~nulls, nulls)


def _eval_is_null(expr: ast.IsNull, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    values = ~child.nulls if expr.negated else child.nulls.copy()
    return Column(DataType.BOOLEAN, values,
                  np.zeros(length, dtype=np.bool_))


def _eval_cast(expr: ast.Cast, columns, schema, length) -> Column:
    child = _eval(expr.child, columns, schema, length)
    if child.dtype == expr.target:
        return child
    if expr.target == DataType.INTEGER:
        # SQL CAST(double AS int) truncates toward zero.
        values = np.trunc(child.values).astype(np.int64)
    else:
        values = child.values.astype(expr.target.numpy_dtype())
    return Column(expr.target, values, child.nulls.copy())


# ----------------------------------------------------------------------
# Scalar functions
# ----------------------------------------------------------------------
def _eval_function(expr: ast.FunctionCall, columns, schema,
                   length) -> Column:
    args = [_eval(a, columns, schema, length) for a in expr.args]
    out_type = expr.dtype(schema)
    name = expr.name
    first = args[0]
    if name == "abs":
        return Column(out_type, np.abs(first.values), first.nulls.copy())
    if name == "ceil":
        return Column(out_type, np.ceil(first.values).astype(np.int64),
                      first.nulls.copy())
    if name == "floor":
        return Column(out_type, np.floor(first.values).astype(np.int64),
                      first.nulls.copy())
    if name == "round":
        return Column(out_type, np.round(first.values).astype(np.int64),
                      first.nulls.copy())
    if name in ("upper", "lower"):
        transform = str.upper if name == "upper" else str.lower
        values = np.array(
            [transform(v) if not n else "" for v, n
             in zip(first.values, first.nulls)], dtype=object)
        return Column(out_type, values, first.nulls.copy())
    if name == "length":
        values = np.fromiter(
            (len(v) if not n else 0 for v, n
             in zip(first.values, first.nulls)),
            dtype=np.int64, count=length)
        return Column(out_type, values, first.nulls.copy())
    if name == "coalesce":
        second = args[1]
        values = np.where(first.nulls,
                          second.values.astype(out_type.numpy_dtype()),
                          first.values.astype(out_type.numpy_dtype()))
        nulls = first.nulls & second.nulls
        return Column(out_type, values, nulls)
    if name in ("least", "greatest"):
        second = args[1]
        lv = first.values.astype(out_type.numpy_dtype())
        rv = second.values.astype(out_type.numpy_dtype())
        picker = np.minimum if name == "least" else np.maximum
        values = picker(lv, rv)
        # NULL if either argument is NULL (Snowflake semantics).
        nulls = first.nulls | second.nulls
        return Column(out_type, values, nulls)
    if name in ("year", "month", "day"):
        extractor = {"year": lambda d: d.year,
                     "month": lambda d: d.month,
                     "day": lambda d: d.day}[name]
        values = np.fromiter(
            (extractor(days_to_date(int(v))) if not n else 0
             for v, n in zip(first.values, first.nulls)),
            dtype=np.int64, count=length)
        return Column(out_type, values, first.nulls.copy())
    raise ExecutionError(f"no evaluator for function {name!r}")


_HANDLERS = {
    ast.ColumnRef: _eval_column_ref,
    ast.Literal: _eval_literal,
    ast.Arith: _eval_arith,
    ast.Neg: _eval_neg,
    ast.Compare: _eval_compare,
    ast.And: _eval_and,
    ast.Or: _eval_or,
    ast.Not: _eval_not,
    ast.If: _eval_if,
    ast.Like: _eval_like,
    ast.StartsWith: _eval_startswith,
    ast.EndsWith: _eval_endswith,
    ast.Contains: _eval_contains,
    ast.InList: _eval_in_list,
    ast.IsNull: _eval_is_null,
    ast.Cast: _eval_cast,
    ast.FunctionCall: _eval_function,
}
