"""Deriving min/max ranges of expressions from zone-map metadata (§3.1).

Every expression node can report a conservative :class:`ValueRange` —
the set of values it *might* take on some row of a partition — given
only that partition's per-column min/max/null metadata. The paper's
requirement is: "for effective pruning, every function must provide a
mechanism to derive transformed min/max ranges from its input".

Soundness contract: for every row of the partition, the value the
expression evaluates to is contained in the derived range (with
``maybe_null`` covering NULL results). Ranges may be wider than
necessary — that only costs pruning opportunities, never correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..errors import MetadataError
from ..storage.zonemap import ColumnStats, ZoneMap, prefix_successor
from ..types import DataType, Schema, date_to_days, days_to_date, infer_type
from . import ast


@dataclass(frozen=True)
class ValueRange:
    """Conservative value set of an expression over one partition.

    Attributes:
        dtype: the expression's SQL type.
        lo, hi: inclusive bounds on non-NULL values; both ``None`` when
            the expression can produce no non-NULL value (``known`` True)
            or when nothing is known about bounds (``known`` False).
        maybe_null: whether some row might evaluate to NULL.
        known: whether ``lo``/``hi`` are trustworthy. ``known=False``
            means "any value possible" (missing statistics, or a
            function whose output bounds cannot be derived).
    """

    dtype: DataType
    lo: Any
    hi: Any
    maybe_null: bool
    known: bool = True

    # -- constructors ---------------------------------------------------
    @classmethod
    def unknown(cls, dtype: DataType, maybe_null: bool = True) -> "ValueRange":
        return cls(dtype, None, None, maybe_null, known=False)

    @classmethod
    def point(cls, dtype: DataType, value: Any) -> "ValueRange":
        if value is None:
            return cls.null_only(dtype)
        return cls(dtype, value, value, maybe_null=False)

    @classmethod
    def null_only(cls, dtype: DataType) -> "ValueRange":
        return cls(dtype, None, None, maybe_null=True)

    @classmethod
    def empty(cls, dtype: DataType) -> "ValueRange":
        """No value at all (e.g. an empty partition)."""
        return cls(dtype, None, None, maybe_null=False)

    @classmethod
    def from_stats(cls, stats: ColumnStats) -> "ValueRange":
        if not stats.present:
            return cls.unknown(stats.dtype)
        if stats.row_count == 0:
            return cls.empty(stats.dtype)
        return cls(stats.dtype, stats.min_value, stats.max_value,
                   maybe_null=stats.null_count > 0)

    @classmethod
    def from_flags(cls, can_true: bool, can_false: bool,
                   maybe_null: bool) -> "ValueRange":
        """Build a BOOLEAN range from possibility flags."""
        if can_true and can_false:
            lo, hi = False, True
        elif can_true:
            lo = hi = True
        elif can_false:
            lo = hi = False
        else:
            lo = hi = None
        return cls(DataType.BOOLEAN, lo, hi, maybe_null)

    # -- inspection -----------------------------------------------------
    @property
    def has_values(self) -> bool:
        """Whether a non-NULL value is possible."""
        return not self.known or self.lo is not None

    @property
    def can_be_true(self) -> bool:
        """For BOOLEAN ranges: might some row evaluate to TRUE?"""
        if not self.known:
            return True
        return self.hi is True

    @property
    def can_be_false(self) -> bool:
        """For BOOLEAN ranges: might some row evaluate to FALSE?"""
        if not self.known:
            return True
        return self.lo is False

    def union(self, other: "ValueRange") -> "ValueRange":
        """Smallest range covering both inputs (same dtype)."""
        maybe_null = self.maybe_null or other.maybe_null
        if not (self.known and other.known):
            return ValueRange.unknown(self.dtype, maybe_null)
        if self.lo is None:
            return ValueRange(other.dtype, other.lo, other.hi, maybe_null)
        if other.lo is None:
            return ValueRange(self.dtype, self.lo, self.hi, maybe_null)
        return ValueRange(self.dtype, min(self.lo, other.lo),
                          max(self.hi, other.hi), maybe_null)


def derive_range(expr: ast.Expr, zone_map: ZoneMap,
                 schema: Schema) -> ValueRange:
    """Derive the conservative value range of ``expr`` on one partition."""
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        # Unknown node type: be maximally conservative.
        return ValueRange.unknown(expr.dtype(schema))
    return handler(expr, zone_map, schema)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
def _range_column_ref(expr: ast.ColumnRef, zone_map, schema) -> ValueRange:
    try:
        stats = zone_map.stats(expr.name)
    except MetadataError:
        return ValueRange.unknown(schema.dtype_of(expr.name))
    value_range = ValueRange.from_stats(stats)
    if stats.dtype == DataType.DATE and value_range.known \
            and value_range.lo is not None:
        # Stats hold epoch days; keep them as ints (comparisons against
        # DATE literals convert the literal instead).
        return value_range
    return value_range


def _range_literal(expr: ast.Literal, zone_map, schema) -> ValueRange:
    value = expr.value
    dtype = expr.dtype(schema)
    if value is None:
        return ValueRange.null_only(dtype)
    if dtype == DataType.DATE:
        value = date_to_days(value) if not isinstance(value, int) else value
    return ValueRange.point(dtype, value)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _range_arith(expr: ast.Arith, zone_map, schema) -> ValueRange:
    left = derive_range(expr.left, zone_map, schema)
    right = derive_range(expr.right, zone_map, schema)
    out_type = expr.dtype(schema)
    maybe_null = left.maybe_null or right.maybe_null
    if not (left.known and right.known):
        return ValueRange.unknown(out_type, maybe_null)
    if left.lo is None or right.lo is None:
        # One side is NULL on every row (or empty) -> result never
        # non-NULL.
        if left.maybe_null or right.maybe_null:
            return ValueRange.null_only(out_type)
        return ValueRange.empty(out_type)
    a_lo, a_hi, b_lo, b_hi = left.lo, left.hi, right.lo, right.hi
    if expr.op == "+":
        lo, hi = a_lo + b_lo, a_hi + b_hi
    elif expr.op == "-":
        lo, hi = a_lo - b_hi, a_hi - b_lo
    elif expr.op == "*":
        products = (a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi)
        lo, hi = min(products), max(products)
    elif expr.op == "/":
        if b_lo <= 0 <= b_hi:
            # Divisor may be (close to) zero: quotient unbounded, and a
            # zero divisor yields NULL in this engine.
            if b_lo == 0 == b_hi:
                return ValueRange.null_only(out_type)
            return ValueRange.unknown(out_type, maybe_null=True)
        quotients = (a_lo / b_lo, a_lo / b_hi, a_hi / b_lo, a_hi / b_hi)
        lo, hi = min(quotients), max(quotients)
    else:  # "%"
        if b_lo == 0 == b_hi:
            return ValueRange.null_only(out_type)
        magnitude = max(abs(b_lo), abs(b_hi))
        lo, hi = -magnitude, magnitude
        if b_lo <= 0 <= b_hi:
            maybe_null = True  # zero divisor rows yield NULL
    if out_type == DataType.INTEGER and _exceeds_int64(lo, hi):
        # The engine's int64 arithmetic wraps on overflow; interval
        # arithmetic over Python bignums would then over-promise.
        # Bail out to "anything possible" — sound either way.
        return ValueRange.unknown(out_type, maybe_null)
    return ValueRange(out_type, lo, hi, maybe_null)


_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _exceeds_int64(lo: Any, hi: Any) -> bool:
    return lo < _INT64_MIN or hi > _INT64_MAX


def _range_neg(expr: ast.Neg, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    out_type = expr.dtype(schema)
    if not child.known:
        return ValueRange.unknown(out_type, child.maybe_null)
    if child.lo is None:
        return ValueRange(out_type, None, None, child.maybe_null)
    return ValueRange(out_type, -child.hi, -child.lo, child.maybe_null)


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def _comparison_value(value: Any) -> Any:
    """Normalize DATE literals to epoch days for metadata comparison."""
    import datetime

    if isinstance(value, datetime.date):
        return date_to_days(value)
    return value


def _range_compare(expr: ast.Compare, zone_map, schema) -> ValueRange:
    left = derive_range(expr.left, zone_map, schema)
    right = derive_range(expr.right, zone_map, schema)
    maybe_null = left.maybe_null or right.maybe_null
    if not (left.known and right.known):
        return ValueRange.from_flags(True, True, maybe_null)
    if left.lo is None or right.lo is None:
        # Some side never produces a non-NULL value.
        if maybe_null:
            return ValueRange.null_only(DataType.BOOLEAN)
        return ValueRange.empty(DataType.BOOLEAN)
    a_lo, a_hi = _comparison_value(left.lo), _comparison_value(left.hi)
    b_lo, b_hi = _comparison_value(right.lo), _comparison_value(right.hi)
    op = expr.op
    if op == "<":
        can_true = a_lo < b_hi
        can_false = a_hi >= b_lo
    elif op == "<=":
        can_true = a_lo <= b_hi
        can_false = a_hi > b_lo
    elif op == ">":
        can_true = a_hi > b_lo
        can_false = a_lo <= b_hi
    elif op == ">=":
        can_true = a_hi >= b_lo
        can_false = a_lo < b_hi
    elif op == "=":
        can_true = a_lo <= b_hi and b_lo <= a_hi
        can_false = not (a_lo == a_hi == b_lo == b_hi)
    else:  # "<>"
        can_true = not (a_lo == a_hi == b_lo == b_hi)
        can_false = a_lo <= b_hi and b_lo <= a_hi
    return ValueRange.from_flags(can_true, can_false, maybe_null)


# ----------------------------------------------------------------------
# Boolean logic
# ----------------------------------------------------------------------
def _range_and(expr: ast.And, zone_map, schema) -> ValueRange:
    ranges = [derive_range(c, zone_map, schema) for c in expr.children()]
    can_true = all(r.can_be_true for r in ranges)
    can_false = any(r.can_be_false for r in ranges)
    maybe_null = any(r.maybe_null or not r.known for r in ranges)
    return ValueRange.from_flags(can_true, can_false, maybe_null)


def _range_or(expr: ast.Or, zone_map, schema) -> ValueRange:
    ranges = [derive_range(c, zone_map, schema) for c in expr.children()]
    # If some child is TRUE on every row, the OR is TRUE on every row.
    some_child_always = any(
        r.known and not r.can_be_false and not r.maybe_null
        and r.can_be_true
        for r in ranges)
    can_true = any(r.can_be_true for r in ranges)
    can_false = all(r.can_be_false for r in ranges)
    maybe_null = (not some_child_always
                  and any(r.maybe_null or not r.known for r in ranges))
    if some_child_always:
        can_false = False
    return ValueRange.from_flags(can_true, can_false, maybe_null)


def _range_not(expr: ast.Not, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    return ValueRange.from_flags(child.can_be_false, child.can_be_true,
                                 child.maybe_null or not child.known)


def _range_if(expr: ast.If, zone_map, schema) -> ValueRange:
    cond = derive_range(expr.cond, zone_map, schema)
    out_type = expr.dtype(schema)
    then_range = derive_range(expr.then, zone_map, schema)
    else_range = derive_range(expr.otherwise, zone_map, schema)
    cond_always_true = (cond.known and cond.can_be_true
                        and not cond.can_be_false and not cond.maybe_null)
    cond_never_true = cond.known and not cond.can_be_true
    if cond_always_true:
        result = then_range
    elif cond_never_true:
        result = else_range
    else:
        result = then_range.union(else_range)
    if result.dtype != out_type:
        result = ValueRange(out_type, result.lo, result.hi,
                            result.maybe_null, result.known)
    return result


# ----------------------------------------------------------------------
# String predicates
# ----------------------------------------------------------------------
def _prefix_flags(prefix: str, lo: str, hi: str) -> tuple[bool, bool]:
    """(can_true, can_false) for "value starts with prefix" vs [lo, hi].

    Strings starting with ``prefix`` form the half-open interval
    ``[prefix, succ)`` where ``succ`` is the true prefix successor
    (last non-maximal character incremented); overlap with the column
    range decides *can_true*, and both endpoints sharing the prefix
    decides *not can_false* (every string between two strings with a
    common prefix shares that prefix). When no successor exists (every
    character is U+10FFFF) the interval is ``[prefix, +inf)`` and only
    the lower bound constrains — appending a fixed number of maximal
    code points instead is unsound: ``lo = prefix + U+10FFFF * 5``
    starts with the prefix yet compares greater than a 4-character cap.
    """
    if prefix == "":
        return True, False  # every string starts with ""
    succ = prefix_successor(prefix)
    can_true = (succ is None or lo < succ) and prefix <= hi
    all_match = lo.startswith(prefix) and hi.startswith(prefix)
    return can_true, not all_match


def _range_like(expr: ast.Like, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    maybe_null = child.maybe_null or not child.known
    if not child.known:
        return ValueRange.from_flags(True, True, maybe_null)
    if child.lo is None:
        if child.maybe_null:
            return ValueRange.null_only(DataType.BOOLEAN)
        return ValueRange.empty(DataType.BOOLEAN)
    if expr.is_exact:
        can_true = child.lo <= expr.pattern <= child.hi
        can_false = not (child.lo == child.hi == expr.pattern)
        return ValueRange.from_flags(can_true, can_false, maybe_null)
    prefix = expr.literal_prefix
    can_true, can_false = _prefix_flags(prefix, child.lo, child.hi)
    # The widened prefix check can certify ALWAYS only when the rest of
    # the pattern is a single '%' (i.e. 'prefix%' matches any suffix).
    pattern_is_pure_prefix = expr.pattern == prefix + "%"
    if not pattern_is_pure_prefix:
        can_false = True
    return ValueRange.from_flags(can_true, can_false, maybe_null)


def _range_startswith(expr: ast.StartsWith, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    maybe_null = child.maybe_null or not child.known
    if not child.known:
        return ValueRange.from_flags(True, True, maybe_null)
    if child.lo is None:
        if child.maybe_null:
            return ValueRange.null_only(DataType.BOOLEAN)
        return ValueRange.empty(DataType.BOOLEAN)
    can_true, can_false = _prefix_flags(expr.needle, child.lo, child.hi)
    return ValueRange.from_flags(can_true, can_false, maybe_null)


def _range_opaque_string_pred(expr, zone_map, schema) -> ValueRange:
    """ENDSWITH / CONTAINS: min/max metadata cannot decide anything."""
    child = derive_range(expr.child, zone_map, schema)
    maybe_null = child.maybe_null or not child.known
    if child.known and child.lo is None:
        if child.maybe_null:
            return ValueRange.null_only(DataType.BOOLEAN)
        return ValueRange.empty(DataType.BOOLEAN)
    return ValueRange.from_flags(True, True, maybe_null)


# ----------------------------------------------------------------------
# IN / IS NULL / CAST / functions
# ----------------------------------------------------------------------
def _range_in_list(expr: ast.InList, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    values = [_comparison_value(v) for v in expr.values if v is not None]
    list_has_null = len(values) < len(expr.values)
    maybe_null = child.maybe_null or not child.known or list_has_null
    if not child.known:
        return ValueRange.from_flags(True, True, maybe_null)
    if child.lo is None:
        if child.maybe_null:
            return ValueRange.null_only(DataType.BOOLEAN)
        return ValueRange.empty(DataType.BOOLEAN)
    lo = _comparison_value(child.lo)
    hi = _comparison_value(child.hi)
    can_true = any(lo <= v <= hi for v in values)
    point = lo == hi
    can_false = not (point and lo in values)
    return ValueRange.from_flags(can_true, can_false, maybe_null)


def _range_is_null(expr: ast.IsNull, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    is_null_possible = child.maybe_null or not child.known
    not_null_possible = child.has_values
    can_true, can_false = (
        (not_null_possible, is_null_possible) if expr.negated
        else (is_null_possible, not_null_possible))
    return ValueRange.from_flags(can_true, can_false, maybe_null=False)


def _range_cast(expr: ast.Cast, zone_map, schema) -> ValueRange:
    child = derive_range(expr.child, zone_map, schema)
    target = expr.target
    if not child.known:
        return ValueRange.unknown(target, child.maybe_null)
    if child.lo is None:
        return ValueRange(target, None, None, child.maybe_null)
    if target == DataType.INTEGER:
        # trunc() is monotone non-decreasing, so endpoints map to
        # endpoints.
        return ValueRange(target, math.trunc(child.lo),
                          math.trunc(child.hi), child.maybe_null)
    if target == DataType.DOUBLE:
        return ValueRange(target, float(child.lo), float(child.hi),
                          child.maybe_null)
    return ValueRange(target, child.lo, child.hi, child.maybe_null)


def _range_function(expr: ast.FunctionCall, zone_map, schema) -> ValueRange:
    out_type = expr.dtype(schema)
    name = expr.name
    args = [derive_range(a, zone_map, schema) for a in expr.args]
    first = args[0]
    if name == "abs":
        if not first.known:
            return ValueRange.unknown(out_type, first.maybe_null)
        if first.lo is None:
            return ValueRange(out_type, None, None, first.maybe_null)
        if first.lo >= 0:
            lo, hi = first.lo, first.hi
        elif first.hi <= 0:
            lo, hi = -first.hi, -first.lo
        else:
            lo, hi = 0, max(abs(first.lo), abs(first.hi))
        return ValueRange(out_type, lo, hi, first.maybe_null)
    if name in ("ceil", "floor", "round"):
        if not first.known or first.lo is None:
            return ValueRange(out_type, None, None, first.maybe_null,
                              known=first.known)
        fn = {"ceil": math.ceil, "floor": math.floor,
              "round": round}[name]
        return ValueRange(out_type, int(fn(first.lo)), int(fn(first.hi)),
                          first.maybe_null)
    if name in ("upper", "lower", "length"):
        # Not order-preserving over arbitrary unicode; keep null-ness
        # only.
        return ValueRange.unknown(out_type, first.maybe_null
                                  or not first.known)
    if name == "coalesce":
        second = args[1]
        if first.known and first.has_values and not first.maybe_null:
            return ValueRange(out_type, first.lo, first.hi,
                              maybe_null=False, known=first.known)
        merged = first.union(second)
        maybe_null = ((first.maybe_null or not first.known)
                      and (second.maybe_null or not second.known))
        return ValueRange(out_type, merged.lo, merged.hi, maybe_null,
                          merged.known)
    if name in ("least", "greatest"):
        second = args[1]
        maybe_null = (first.maybe_null or second.maybe_null
                      or not first.known or not second.known)
        if not (first.known and second.known):
            return ValueRange.unknown(out_type, maybe_null)
        if first.lo is None or second.lo is None:
            return ValueRange(out_type, None, None, maybe_null)
        if name == "least":
            lo = min(first.lo, second.lo)
            hi = min(first.hi, second.hi)
        else:
            lo = max(first.lo, second.lo)
            hi = max(first.hi, second.hi)
        return ValueRange(out_type, lo, hi, maybe_null)
    if name == "year":
        if not first.known or first.lo is None:
            return ValueRange(out_type, None, None, first.maybe_null,
                              known=first.known)
        return ValueRange(out_type, days_to_date(first.lo).year,
                          days_to_date(first.hi).year, first.maybe_null)
    if name == "month":
        return ValueRange(out_type, 1, 12,
                          first.maybe_null or not first.known)
    if name == "day":
        return ValueRange(out_type, 1, 31,
                          first.maybe_null or not first.known)
    return ValueRange.unknown(out_type)


_HANDLERS = {
    ast.ColumnRef: _range_column_ref,
    ast.Literal: _range_literal,
    ast.Arith: _range_arith,
    ast.Neg: _range_neg,
    ast.Compare: _range_compare,
    ast.And: _range_and,
    ast.Or: _range_or,
    ast.Not: _range_not,
    ast.If: _range_if,
    ast.Like: _range_like,
    ast.StartsWith: _range_startswith,
    ast.EndsWith: _range_opaque_string_pred,
    ast.Contains: _range_opaque_string_pred,
    ast.InList: _range_in_list,
    ast.IsNull: _range_is_null,
    ast.Cast: _range_cast,
    ast.FunctionCall: _range_function,
}
