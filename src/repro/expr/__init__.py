"""Expression trees, vectorized evaluation, and range derivation.

This package implements the machinery behind §3 of the paper:

* :mod:`.ast` — SQL expression nodes (columns, literals, arithmetic,
  comparisons, boolean logic, ``IF``, ``LIKE``, functions, ...);
* :mod:`.eval` — vectorized evaluation over micro-partition columns
  with SQL three-valued NULL semantics;
* :mod:`.ranges` — interval arithmetic deriving the min/max range of an
  arbitrary expression from zone-map metadata ("Deriving Min/Max
  Ranges", §3.1);
* :mod:`.pruning` — the tri-state pruning verdict
  (NEVER / MAYBE / ALWAYS) built on range derivation;
* :mod:`.rewrite` — imprecise filter rewrites (§3.1) and predicate
  inversion for fully-matching detection (§4.2);
* :mod:`.simplify` — constant folding and boolean flattening.
"""

from .ast import (
    Expr,
    ColumnRef,
    Literal,
    Arith,
    Neg,
    Compare,
    And,
    Or,
    Not,
    If,
    Like,
    StartsWith,
    EndsWith,
    Contains,
    InList,
    IsNull,
    FunctionCall,
    Cast,
    col,
    lit,
)
from .pruning import TriState, prune_partition
from .ranges import ValueRange, derive_range
from .rewrite import not_true, widen_for_pruning
from .simplify import simplify

__all__ = [
    "Expr", "ColumnRef", "Literal", "Arith", "Neg", "Compare", "And",
    "Or", "Not", "If", "Like", "StartsWith", "EndsWith", "Contains",
    "InList", "IsNull", "FunctionCall", "Cast", "col", "lit",
    "TriState", "prune_partition", "ValueRange", "derive_range",
    "not_true", "widen_for_pruning", "simplify",
]
