"""Tri-state pruning verdicts from zone-map metadata.

Given a boolean predicate and a partition's zone map, classify the
partition (§2.1, §4.1):

* ``NEVER``  — no row can satisfy the predicate → the partition is
  *not-matching* and may be pruned from the scan set;
* ``ALWAYS`` — every row satisfies the predicate → the partition is
  *fully-matching* (the key enabler of LIMIT pruning, §4);
* ``MAYBE``  — the partition is *partially-matching* and must be
  scanned.

Correctness contract: pruning guarantees **no false negatives**. A
``NEVER`` verdict proves no row matches; an ``ALWAYS`` verdict proves
all rows match; ``MAYBE`` makes no promise either way.
"""

from __future__ import annotations

import enum

from ..storage.zonemap import ZoneMap
from ..types import Schema
from . import ast
from .ranges import derive_range


class TriState(enum.Enum):
    """Partition classification for one predicate."""

    NEVER = "never"      #: not-matching: prune it
    MAYBE = "maybe"      #: partially-matching: must scan
    ALWAYS = "always"    #: fully-matching: all rows qualify

    def __invert__(self) -> "TriState":
        """The verdict for the logically negated predicate."""
        if self is TriState.NEVER:
            return TriState.ALWAYS
        if self is TriState.ALWAYS:
            return TriState.NEVER
        return TriState.MAYBE


def prune_partition(predicate: ast.Expr, zone_map: ZoneMap,
                    schema: Schema) -> TriState:
    """Classify a partition against a boolean predicate.

    Empty partitions are trivially ``NEVER`` (nothing to scan). For
    non-empty partitions the predicate's derived boolean range decides:
    no possible TRUE row → ``NEVER``; no possible FALSE and no possible
    NULL row → ``ALWAYS`` (a NULL predicate row would be filtered out by
    SQL WHERE, so it blocks fully-matching status); otherwise ``MAYBE``.
    """
    if zone_map.row_count == 0:
        return TriState.NEVER
    value_range = derive_range(predicate, zone_map, schema)
    if not value_range.known:
        return TriState.MAYBE
    if not value_range.can_be_true:
        return TriState.NEVER
    if not value_range.can_be_false and not value_range.maybe_null:
        return TriState.ALWAYS
    return TriState.MAYBE
