"""The catalog: the top-level API of the engine.

A :class:`Catalog` owns the storage layer, the metadata store, the
tables, and an optional predicate cache, and exposes the user-facing
entry point :meth:`Catalog.sql`::

    catalog = Catalog()
    catalog.create_table_from_rows("t", schema, rows,
                                   layout=Layout.sorted_by("ts"))
    result = catalog.sql("SELECT * FROM t WHERE ts >= 100 LIMIT 5")
    print(result.rows, result.profile.pruning_summary())

DML is partition-wise, mirroring immutable micro-partitions: INSERT
creates new partitions; DELETE and UPDATE rewrite every partition that
contains affected rows, producing fresh partition ids — exactly the
behaviour the predicate cache's invalidation rules (§8.2) react to.
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .cache.partition_cache import PartitionCache
from .engine.context import ExecContext, QueryProfile
from .engine.executor import execute
from .errors import (
    CircuitOpenError,
    DurabilityError,
    MetadataError,
    MetadataUnavailableError,
    SchemaError,
    TransientError,
)
from .expr import ast
from .expr.eval import evaluate_predicate
from .obs.telemetry import TelemetryRecord, TelemetrySink
from .obs.trace import Tracer, render_span_tree
from .plan.compiler import CompilerOptions, QueryCompiler
from .plan.logical import LogicalNode
from .pruning.base import ScanSet
from .pruning.predicate_cache import PredicateCache
from .sql import parse_select
from .sql.planner import plan_select
from .storage.builder import DEFAULT_ROWS_PER_PARTITION, build_table
from .storage.clustering import Layout
from .storage.metadata_store import MetadataStore
from .storage.micropartition import MicroPartition
from .storage.storage_layer import CostModel, StorageLayer
from .storage.table import Table
from .types import DataType, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .durability import DurabilityManager

_QUERY_COUNTER = itertools.count(1)

#: shared no-op for untraced spans in the catalog's own phases
_NO_SPAN = nullcontext(None)


def _span(tracer: Tracer | None, name: str, **attrs):
    """A tracer span, or a shared no-op when tracing is off."""
    if tracer is None:
        return _NO_SPAN
    return tracer.span(name, **attrs)


@dataclass
class QueryResult:
    """Materialized rows plus the pruning/timing profile."""

    schema: Schema
    rows: list[tuple[Any, ...]]
    profile: QueryProfile
    sql: str = ""

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    @property
    def degraded(self) -> bool:
        """True when pruning degraded to full scans for some partitions
        (metadata unavailable); results are still correct."""
        return self.profile.degraded

    def column(self, name: str) -> list[Any]:
        """One output column's values, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]


class Catalog:
    """Tables, storage, metadata, and query execution in one place."""

    def __init__(self, cost_model: CostModel | None = None,
                 rows_per_partition: int = DEFAULT_ROWS_PER_PARTITION,
                 scan_parallelism: int = 1,
                 enable_tracing: bool = True):
        self.storage = StorageLayer(cost_model)
        self.metadata = MetadataStore()
        self.tables: dict[str, Table] = {}
        self.rows_per_partition = rows_per_partition
        #: worker count for morsel-driven parallel scans (1 = serial);
        #: typically set to the warehouse cluster size by the service.
        self.scan_parallelism = max(1, scan_parallelism)
        #: per-query trace spans (parse → plan → prune → scan → retry);
        #: cheap enough to stay on (gated < 5% on the scan benches).
        self.enable_tracing = enable_tracing
        #: fleet telemetry sink; off until :meth:`enable_telemetry`.
        self.telemetry: TelemetrySink | None = None
        self.predicate_cache: PredicateCache | None = None
        #: compiled-plan template cache (Fig. 12, §7); off until
        #: :meth:`enable_plan_cache`.
        self.plan_cache = None
        self._plan_cache_prune_schemas = True
        #: warehouse-local data cache; off until
        #: :meth:`enable_data_cache` (or a per-call override — the
        #: service layer passes each cluster's own cache into
        #: :meth:`sql`).
        self.data_cache: PartitionCache | None = None
        #: secondary-sketch configuration; off until
        #: :meth:`enable_sketches`. When set, partition registration
        #: also builds and registers per-partition sketches.
        self.sketch_config = None
        #: per-query-shape skip sets layered on the predicate cache;
        #: created by :meth:`enable_sketches`.
        self.skip_sets = None
        #: sketch-build accounting (failures fail open and count here).
        self.sketch_build_failures = 0
        self.sketch_build_ms = 0.0
        #: WAL + checkpoint pair making mutations crash-safe; off
        #: until :meth:`enable_durability`.
        self.durability: "DurabilityManager | None" = None
        #: True while recovery replays WAL records into this catalog
        #: (replayed mutations must not be re-logged).
        self._replaying = False
        self._iceberg_sources: dict[str, dict[int, object]] = {}
        self._compiler = QueryCompiler(self)
        self._change_listeners: list[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------
    # Change notification (service-layer hook points)
    # ------------------------------------------------------------------
    def add_change_listener(self,
                            listener: Callable[[str, int], None]) -> None:
        """Register ``listener(table_name, new_version)``.

        Called after any DML or recluster commits a new table version —
        the hook the service layer's result cache and background
        services (e.g. workload-aware reclustering) observe.
        """
        self._change_listeners.append(listener)

    def table_version(self, name: str) -> int:
        """Current data version of one table."""
        return self._table(name).version

    def table_versions(self, names: Sequence[str]) -> dict[str, int]:
        """Version snapshot for several tables (result-cache keys)."""
        return {name.lower(): self._table(name).version
                for name in names}

    def _bump_version(self, table: Table) -> None:
        version = table.bump_version()
        for listener in self._change_listeners:
            listener(table.name, version)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, table: Table) -> Table:
        """Register an existing table (its partitions move to storage)."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        if self._durable:
            from .durability.codec import create_record

            self._wal_log(create_record(table))
        self.tables[table.name] = table
        cache = self._sketch_build_cache(table.partitions, table.schema)
        for partition in table.partitions:
            self.storage.put(partition)
            self.metadata.register(table.name, partition.partition_id,
                                   partition.zone_map)
            self._build_sketches(table.name, partition, cache)
        return table

    def create_table_from_rows(
            self, name: str, schema: Schema,
            rows: Sequence[Sequence[Any]],
            layout: Layout | None = None,
            rows_per_partition: int | None = None) -> Table:
        """Build, partition, and register a table in one call."""
        table = build_table(
            name, schema, rows,
            rows_per_partition=rows_per_partition
            or self.rows_per_partition,
            layout=layout)
        return self.create_table(table)

    def create_table_from_iceberg(self, iceberg) -> Table:
        """Register an Iceberg table's row groups as micro-partitions.

        §8.1: Snowflake's pruning techniques operate transparently over
        Iceberg/Parquet — row groups play the role of micro-partitions.
        Row groups written *without* statistics are registered with
        missing metadata (no pruning possible) until
        :meth:`backfill_iceberg_metadata` reconstructs it.
        """
        from .storage.micropartition import MicroPartition

        if iceberg.name in self.tables:
            raise SchemaError(
                f"table {iceberg.name!r} already exists")
        table = Table(iceberg.name, iceberg.schema)
        sources: dict[int, object] = {}
        for entry in iceberg.entries:
            for group in entry.file.row_groups:
                partition = MicroPartition(iceberg.schema,
                                           group.columns)
                if group.stats is None:
                    partition = partition.with_zone_map(
                        partition.zone_map.without_stats())
                table.add_partition(partition)
                sources[partition.partition_id] = group
        self._iceberg_sources[iceberg.name] = sources
        return self.create_table(table)

    def backfill_iceberg_metadata(self, name: str) -> int:
        """Recompute missing metadata by scanning the data (§8.1).

        Returns the number of partitions whose metadata was repaired.
        The repaired zone maps replace the entries in the metadata
        store, so subsequent queries prune normally.
        """
        name = name.lower()
        table = self._table(name)
        if name not in self._iceberg_sources:
            raise SchemaError(f"{name!r} is not an Iceberg-backed table")
        repaired = 0
        refreshed = []
        for partition in table.partitions:
            if all(s.present
                   for s in partition.zone_map.columns.values()):
                refreshed.append(partition)
                continue
            fixed = partition.with_zone_map(
                partition.recompute_zone_map())
            self.storage.delete(partition.partition_id)
            self.storage.put(fixed)
            self.metadata.register(name, fixed.partition_id,
                                   fixed.zone_map)
            self._build_sketches(name, fixed)
            refreshed.append(fixed)
            repaired += 1
        table.replace_partitions(refreshed)
        return repaired

    def drop_table(self, name: str) -> None:
        """Remove a table, its partitions, metadata, and cache entries."""
        table = self.tables.get(name.lower())
        if table is None:
            raise SchemaError(f"no table named {name!r}")
        if self._durable:
            from .durability.codec import drop_record

            self._wal_log(drop_record(table.name))
        del self.tables[table.name]
        for partition_id in table.partition_ids:
            self.storage.delete(partition_id)
        self.metadata.drop_table(table.name)
        if self.predicate_cache is not None:
            self.predicate_cache.drop_table(table.name)
        if self.skip_sets is not None:
            self.skip_sets.drop_table(table.name)

    def enable_predicate_cache(self, max_entries: int = 1024,
                               max_partitions_per_entry: int = 256
                               ) -> PredicateCache:
        """Turn on the predicate cache (§8.2) for subsequent queries."""
        self.predicate_cache = PredicateCache(
            max_entries=max_entries,
            max_partitions_per_entry=max_partitions_per_entry)
        return self.predicate_cache

    def enable_sketches(self, config=None):
        """Turn on secondary sketches (n-gram filters, dictionaries,
        histograms — ``pruning/sketches.py``) plus per-query-shape
        skip sets.

        Sketches are built immediately for every existing partition
        and from then on at partition build/recluster time. Building
        fails open: a partition whose sketches cannot be built is
        simply scanned without them. Idempotent — an existing
        configuration is kept.
        """
        from .pruning.sketches import ShapeSkipSet, SketchConfig

        if self.sketch_config is None:
            self.sketch_config = config or SketchConfig()
            self.skip_sets = ShapeSkipSet()
            for table in self.tables.values():
                cache = self._sketch_build_cache(table.partitions,
                                                 table.schema)
                for partition in table.partitions:
                    self._build_sketches(table.name, partition, cache)
        return self.sketch_config

    def _sketch_build_cache(self, partitions=None, schema=None):
        """A shared hash cache for one batch of sketch builds.

        When the batch's partitions are known up front they are
        prewarmed: n-gram extraction and hashing run once for the
        whole batch instead of per partition. Prewarming is
        best-effort — on any failure the per-partition path rebuilds
        everything from scratch.
        """
        if self.sketch_config is None:
            return None
        from .pruning.sketches import SketchBuildCache

        cache = SketchBuildCache()
        if partitions is not None and schema is not None:
            try:
                started = time.perf_counter()
                cache.prewarm_ngrams(partitions, schema,
                                     self.sketch_config)
                self.sketch_build_ms += (time.perf_counter()
                                         - started) * 1000.0
            except Exception:  # noqa: BLE001 - best-effort prewarm
                cache.grams.clear()
        return cache

    def _build_sketches(self, table_name: str, partition,
                        cache=None) -> None:
        """Build and register one partition's sketches (fail open)."""
        if self.sketch_config is None:
            return
        from .pruning.sketches import build_partition_sketches

        try:
            sketches = build_partition_sketches(partition,
                                                self.sketch_config,
                                                cache)
            self.sketch_build_ms += sketches.build_ms
            if not sketches.is_empty():
                self.metadata.register_sketches(
                    table_name, partition.partition_id, sketches)
        except Exception:  # noqa: BLE001 - sketches are best-effort
            self.sketch_build_failures += 1

    def sketches_of(self, table: str):
        """Registered secondary sketches of a table, by partition id."""
        return self.metadata.sketches_of(table)

    def sketch_index(self, table: str):
        """Cached vectorized sketch lanes for a table."""
        ngram_size = (self.sketch_config.ngram_size
                      if self.sketch_config is not None else 3)
        return self.metadata.sketch_index(table, ngram_size)

    def enable_data_cache(self, budget_bytes: int = 64 * 2**20,
                          protected_fraction: float = 0.8,
                          prefetch: bool = True) -> PartitionCache:
        """Turn on the warehouse-local data cache (§2) for subsequent
        queries: scans serve repeated partitions from local storage
        instead of re-fetching them from simulated object storage.

        The cache attaches to the metadata store so DML/recluster
        rewrites (``unregister``) invalidate stale entries
        automatically. Idempotent — an existing cache is kept.
        """
        if self.data_cache is None:
            self.data_cache = PartitionCache(
                budget_bytes, protected_fraction=protected_fraction,
                prefetch=prefetch).attach(self.metadata)
        return self.data_cache

    def enable_plan_cache(self, max_entries: int = 256,
                          schema_pruning: bool = True):
        """Turn on the plan-shape compiled-plan cache (Fig. 12, §7).

        Subsequent SELECTs are parameterized at the token level; the
        first execution of each plan shape caches its logical-plan
        template, and repeats skip parse/bind/plan entirely — only the
        literals are rebound and the data-dependent pruning passes
        re-run against the live metadata. ``schema_pruning`` restricts
        template planning to the columns a statement references, so
        wide-schema compile cost scales with columns touched.
        Idempotent — an existing cache is kept.
        """
        if self.plan_cache is None:
            from .plancache import PlanCache

            self.plan_cache = PlanCache(max_entries=max_entries)
            self.plan_cache.attach(self)
            self._plan_cache_prune_schemas = schema_pruning
        return self.plan_cache

    def enable_telemetry(self, capacity: int = 4096,
                         slow_query_ms: float = 100.0
                         ) -> TelemetrySink:
        """Turn on fleet telemetry: every :meth:`sql` call records one
        :class:`~repro.obs.telemetry.TelemetryRecord` into a bounded
        ring buffer (idempotent — an existing sink is kept)."""
        if self.telemetry is None:
            self.telemetry = TelemetrySink(
                capacity=capacity, slow_query_ms=slow_query_ms)
        return self.telemetry

    # ------------------------------------------------------------------
    # Durability (WAL + checkpoints + recovery)
    # ------------------------------------------------------------------
    def enable_durability(self, path, *,
                          checkpoint_bytes: int = 4 * 2**20,
                          keep_checkpoints: int = 1,
                          crash_injector=None,
                          sync: bool = False) -> "DurabilityManager":
        """Make this catalog's mutations crash-safe under ``path``.

        Every subsequent committed mutation is appended to a
        CRC-framed write-ahead log *before* it is applied (see
        :mod:`repro.durability`). When ``path`` already holds durable
        state, the catalog — which must be empty — is first recovered
        from the newest checkpoint plus the WAL tail; otherwise a
        baseline checkpoint of the current state is written so
        recovery is always checkpoint + tail. Idempotent — an existing
        manager is kept.
        """
        if self.durability is not None:
            return self.durability
        from .durability import DurabilityManager

        manager = DurabilityManager(
            path, checkpoint_bytes=checkpoint_bytes,
            keep_checkpoints=keep_checkpoints,
            crash_injector=crash_injector, sync=sync)
        if manager.has_state():
            if self.tables:
                raise DurabilityError(
                    f"cannot recover durable state from {path} into "
                    f"a catalog that already has tables "
                    f"{sorted(self.tables)}")
            self._replaying = True
            try:
                manager.recover_into(self)
            finally:
                self._replaying = False
        self.durability = manager
        if manager.checkpoints.newest() is None:
            # Baseline snapshot: captures tables created before
            # durability was enabled, so recovery never needs a
            # special empty-checkpoint case.
            manager.checkpoint(self)
        return manager

    @classmethod
    def recover(cls, path, **kwargs) -> "Catalog":
        """Rebuild a catalog from a durability directory.

        Equivalent to constructing an empty catalog and calling
        :meth:`enable_durability` — the recovered catalog keeps
        logging to the same WAL.
        """
        catalog = cls(**kwargs)
        catalog.enable_durability(path)
        return catalog

    def checkpoint(self):
        """Snapshot now and truncate the WAL (durability required)."""
        if self.durability is None:
            raise DurabilityError(
                "checkpoint() requires enable_durability()")
        return self.durability.checkpoint(self)

    @property
    def _durable(self) -> bool:
        """True when mutations must be logged (not during replay)."""
        return self.durability is not None and not self._replaying

    def _wal_log(self, record: dict,
                 profile: QueryProfile | None = None,
                 tracer: Tracer | None = None) -> None:
        """Append one mutation record ahead of applying it."""
        seqno, nbytes = self.durability.log(record)
        if profile is not None:
            profile.wal_appends += 1
            profile.wal_bytes += nbytes
        if tracer is not None:
            tracer.event("wal:append", seqno=seqno, bytes=nbytes,
                         op=record.get("op", ""))

    def apply_wal_record(self, record: dict) -> None:
        """Apply one decoded WAL record (recovery replay path).

        Replay reuses the exact apply helpers live commits use, so a
        replayed mutation reproduces partition ids, contents, version
        bumps, and cache invalidations identically.
        """
        from .durability.codec import decode_partitions, decode_schema

        op = record["op"]
        if op == "create":
            schema = decode_schema(record["schema"])
            self.create_table(Table(
                record["table"], schema,
                decode_partitions(schema, record["partitions"])))
        elif op == "insert":
            table = self._table(record["table"])
            self._apply_insert(table, decode_partitions(
                table.schema, record["partitions"]))
        elif op == "rewrite":
            table = self._table(record["table"])
            removed = [table.partition(pid)
                       for pid in record["removed"]]
            added = decode_partitions(table.schema,
                                      record["partitions"])
            self._apply_rewrite(table, removed, added,
                                kind=record["kind"],
                                columns=record.get("columns"))
        elif op == "drop":
            self.drop_table(record["table"])
        else:
            from .errors import WalCorruptionError

            raise WalCorruptionError(
                f"unknown WAL record op {op!r}")

    def _new_tracer(self) -> Tracer | None:
        return Tracer() if self.enable_tracing else None

    # ------------------------------------------------------------------
    # Compiler interface
    # ------------------------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """A table's schema (compiler resolver interface)."""
        return self._table(table).schema

    #: metadata failures that degrade pruning instead of failing the
    #: query: exhausted transient faults, a metadata-service outage,
    #: and a tripped circuit breaker. A plain :class:`MetadataError`
    #: (key genuinely missing) is a logical error and still propagates.
    _DEGRADABLE = (TransientError, MetadataUnavailableError,
                   CircuitOpenError)

    def scan_set(self, table: str) -> ScanSet:
        """A table's full scan set from the metadata store.

        Pruning fails open: when a partition's metadata cannot be
        fetched (after retries), the partition enters the scan set
        with a stats-free zone map — every pruning check answers MAYBE
        and the partition is scanned. A full metadata outage degrades
        the partition *listing* to the in-memory table as well. The
        returned scan set carries ``degraded_ids`` plus metadata retry
        accounting for the query profile.
        """
        meta = self.metadata
        if (meta.fault_injector is None and meta.retry_policy is None
                and meta.breaker is None):
            return ScanSet(meta.iter_table(table))

        from .faults.retry import RetryStats

        stats = RetryStats()
        in_memory: dict[int, MicroPartition] | None = None

        def partitions_by_id() -> dict[int, MicroPartition]:
            nonlocal in_memory
            if in_memory is None:
                in_memory = {p.partition_id: p
                             for p in self._table(table).partitions}
            return in_memory

        try:
            pids = meta.partitions_of(table, retry_stats=stats)
        except self._DEGRADABLE:
            # Listing outage: the compiler still knows which partitions
            # exist (the in-memory table is the simulated data plane).
            pids = list(partitions_by_id())
        entries: list[tuple[int, object]] = []
        degraded_ids: list[int] = []
        for pid in pids:
            try:
                entries.append((pid, meta.get(table, pid,
                                              retry_stats=stats)))
                continue
            except self._DEGRADABLE:
                pass
            except MetadataError:
                if pid in partitions_by_id():
                    raise
                continue  # unregistered by concurrent DML; skip
            partition = partitions_by_id().get(pid)
            if partition is None:
                continue  # removed by concurrent DML; skip
            # Cannot prune it — scan it. A stats-free zone map makes
            # every pruning check answer MAYBE.
            entries.append((pid, partition.zone_map.without_stats()))
            degraded_ids.append(pid)
        scan = ScanSet(entries, degraded_ids=degraded_ids)
        snap = stats.snapshot()
        scan.metadata_retries = int(snap["retries"])
        scan.metadata_backoff_ms = snap["backoff_ms"]
        return scan

    def stats_index(self, table: str):
        """SoA zone-map index for vectorized pruning of ``table``.

        Delegates to the metadata store, which maintains the index
        incrementally from DML write deltas. The compiler matches the
        index against the scan set it actually fetched per partition
        (object identity), so degraded or stale entries simply take
        the scalar path.
        """
        return self.metadata.stats_index(self._table(table).name)

    def enable_fault_injection(self, injector, retry_policy=None,
                               breaker=None):
        """Wire a :class:`~repro.faults.FaultInjector` (plus retry
        policy and metadata circuit breaker) into storage and metadata.

        ``retry_policy`` defaults to ``RetryPolicy()``; ``breaker``
        defaults to a fresh ``CircuitBreaker()``. Returns the injector
        for chaining.
        """
        from .faults import CircuitBreaker, RetryPolicy
        from .faults.retry import RetryStats

        if retry_policy is None:
            retry_policy = RetryPolicy()
        self.storage.fault_injector = injector
        self.storage.retry_policy = retry_policy
        self.metadata.fault_injector = injector
        self.metadata.retry_policy = retry_policy
        self.metadata.breaker = (breaker if breaker is not None
                                 else CircuitBreaker())
        if self.metadata.retry_stats is None:
            self.metadata.retry_stats = RetryStats()
        return injector

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _effective_cache(self,
                         cache: PartitionCache | None
                         ) -> PartitionCache | None:
        """Per-call cache override (the service layer passes each
        warehouse cluster's own cache), else the catalog-wide one."""
        return cache if cache is not None else self.data_cache

    def sql(self, text: str,
            options: CompilerOptions | None = None,
            cache: PartitionCache | None = None,
            parsed=None) -> QueryResult:
        """Parse, plan, and execute one SELECT, DELETE, or UPDATE.

        DML statements return a single-row result with the number of
        affected rows; their profile records the partition pruning the
        DML benefited from (§7's flow covers DML too). ``cache``
        overrides the catalog-wide data cache for this statement
        (per-warehouse-cluster caches). ``parsed`` lets callers that
        already hold the parsed statement (the service layer's hot
        path) skip the re-parse; it must be the parse of ``text``.
        """
        from .sql.parser import DeleteStmt, UpdateStmt, parse_statement

        started = time.perf_counter()
        tracer = self._new_tracer()
        stmt = parsed
        result = None
        kind = "select"
        if self.plan_cache is not None and not isinstance(
                stmt, (DeleteStmt, UpdateStmt)):
            result, stmt = self._sql_via_plan_cache(
                text, options, cache, tracer, stmt)
        if result is None:
            if stmt is None:
                with _span(tracer, "parse"):
                    stmt = parse_statement(text)
            if isinstance(stmt, (DeleteStmt, UpdateStmt)):
                kind = "dml"
                with _span(tracer, "dml", table=stmt.table):
                    result = self._execute_dml(stmt, cache=cache,
                                               tracer=tracer)
                if tracer is not None:
                    result.profile.trace = tracer.finish()
            else:
                with _span(tracer, "plan"):
                    plan = plan_select(stmt, self.schema_of)
                result = self.execute_plan(
                    plan, options, tracer=tracer, cache=cache,
                    pre_compile_ms=self._cold_compile_cost(stmt))
        result.sql = text
        if self.telemetry is not None:
            wall_ms = (time.perf_counter() - started) * 1e3
            self.telemetry.record(TelemetryRecord.from_result(
                result, wall_ms=wall_ms, kind=kind))
        return result

    def _cold_compile_cost(self, stmt) -> float:
        """Simulated parse+bind cost of one cold compile.

        Binding considers every column of every referenced table's
        schema — the full-width cost that compile-time schema pruning
        (``repro.plancache.schema_prune``) avoids.
        """
        cost = self.storage.cost_model
        tables = dict.fromkeys(
            t.lower() for t in [stmt.table.name]
            + [j.table.name for j in stmt.joins])
        width = 0
        for name in tables:
            try:
                width += len(self.schema_of(name))
            except SchemaError:
                pass  # unknown table: the planner raises the real error
        return cost.parse_cost_ms + cost.bind_column_cost_ms * width

    def _sql_via_plan_cache(self, text, options, cache, tracer, stmt):
        """Serve one SELECT through the plan cache if possible.

        Returns ``(result, stmt)``: ``result`` is ``None`` when the
        statement must take the cold path, and ``stmt`` carries any
        parse work already done here so the cold path never re-parses.
        Every failure mode on the cached path — bind mismatch, stale
        schema, template extraction failure — falls closed to the cold
        compile, which surfaces errors with the original literals.
        """
        from .plancache import (
            CachedPlan,
            StalePlanError,
            bind_plan,
            binds_match,
            build_template,
            make_pruned_resolver,
            parameterize_text,
            validate_binds,
        )
        from .sql.parser import SelectStmt, parse_statement

        cost = self.storage.cost_model
        plan_cache = self.plan_cache
        with _span(tracer, "parameterize"):
            pq = parameterize_text(text)
        if not pq.is_select or plan_cache.is_uncacheable(pq.shape_key):
            return None, stmt
        entry = plan_cache.lookup(pq.shape_key)
        if entry is not None:
            usable = False
            try:
                with _span(tracer, "plan_cache:rebind",
                           binds=len(pq.binds)):
                    plan_cache.validate(entry, self.schema_of)
                    validate_binds(pq.binds, entry.slots)
                    usable = True
            except StalePlanError:
                pass  # evicted; recompile below (fail closed)
            except Exception:
                plan_cache.record_fallback()
            if usable:
                if tracer is not None:
                    tracer.event("plan_cache:hit", shape=pq.shape_key)
                result = self.execute_plan(
                    None, options, tracer=tracer, cache=cache,
                    pre_compile_ms=cost.plan_rebind_cost_ms,
                    rebind=(entry.template, pq.binds, entry.slots))
                result.profile.plan_cache_checked = True
                result.profile.plan_cache_hit = True
                return result, None
        # Miss: plan a parameterized template, cache it, and execute
        # the rebound plan — hits and misses run the identical tree,
        # so a hit can never diverge from what a miss would return.
        if stmt is None:
            with _span(tracer, "parse"):
                stmt = parse_statement(text)
        if not isinstance(stmt, SelectStmt):
            return None, stmt
        try:
            template_stmt, slots, ast_binds = build_template(stmt)
            cacheable = binds_match(ast_binds, pq.binds)
        except Exception:
            cacheable = False
        if not cacheable:
            plan_cache.mark_uncacheable(pq.shape_key)
            return None, stmt
        tables = list(dict.fromkeys(
            t.lower() for t in [stmt.table.name]
            + [j.table.name for j in stmt.joins]))
        try:
            if self._plan_cache_prune_schemas:
                resolver, width = make_pruned_resolver(
                    stmt, self.schema_of, tables)
            else:
                resolver = self.schema_of
                width = sum(len(self.schema_of(t)) for t in tables)
            with _span(tracer, "plan"):
                template = plan_select(template_stmt, resolver)
            plan = bind_plan(template, pq.binds, slots)
        except Exception:
            # Genuine planning errors recur on the cold path, which
            # reports them against the original literals.
            return None, stmt
        plan_cache.store(CachedPlan(
            shape_key=pq.shape_key, template=template, slots=slots,
            tables=tuple(tables),
            schemas={t: self.schema_of(t) for t in tables},
            bind_width=width))
        result = self.execute_plan(
            plan, options, tracer=tracer, cache=cache,
            pre_compile_ms=cost.parse_cost_ms
            + cost.bind_column_cost_ms * width)
        result.profile.plan_cache_checked = True
        return result, None

    def _execute_dml(self, stmt,
                     cache: PartitionCache | None = None,
                     tracer: Tracer | None = None) -> QueryResult:
        from .sql.parser import DeleteStmt

        table = self._table(stmt.table)
        predicate = stmt.where if stmt.where is not None \
            else ast.Literal(True)
        profile = QueryProfile(query_id=f"q{next(_QUERY_COUNTER)}")
        if isinstance(stmt, DeleteStmt):
            affected = self.delete_where(table.name, predicate,
                                         profile=profile, cache=cache,
                                         tracer=tracer)
        else:
            affected = self._update_with_expr(
                table, predicate, stmt.column, stmt.value, profile,
                cache=cache, tracer=tracer)
        return QueryResult(
            schema=Schema.of(rows_affected=DataType.INTEGER),
            rows=[(affected,)],
            profile=profile)

    def _update_with_expr(self, table: Table, predicate: ast.Expr,
                          column: str, value_expr: ast.Expr,
                          profile: QueryProfile,
                          cache: PartitionCache | None = None,
                          tracer: Tracer | None = None) -> int:
        """UPDATE with a SQL value expression evaluated per row."""
        from .expr.eval import evaluate

        column = column.lower()
        target_dtype = table.schema.dtype_of(column)
        value_dtype = value_expr.dtype(table.schema)
        if value_dtype != target_dtype:
            value_expr = ast.Cast(value_expr, target_dtype)
        updated_rows = 0
        removed: list[MicroPartition] = []
        added: list[MicroPartition] = []
        for partition in self._dml_candidates(table, predicate,
                                              profile, cache=cache):
            mask = evaluate_predicate(predicate, partition.columns(),
                                      table.schema)
            hits = int(mask.sum())
            if hits == 0:
                continue
            updated_rows += hits
            removed.append(partition)
            columns = partition.columns()
            old = columns[column]
            new = evaluate(value_expr, columns, table.schema)
            merged_values = np.where(mask, new.values, old.values)
            merged_nulls = np.where(mask, new.nulls, old.nulls)
            from .storage.column import Column

            columns[column] = Column(
                target_dtype,
                np.asarray(merged_values,
                           dtype=target_dtype.numpy_dtype()),
                np.asarray(merged_nulls, dtype=np.bool_))
            added.append(MicroPartition(table.schema, columns))
        self._commit_rewrite(table, removed, added, kind="update",
                             columns=[column], profile=profile,
                             tracer=tracer)
        return updated_rows

    def plan_sql(self, text: str) -> LogicalNode:
        """Parse and plan without executing (plan-shape analyses)."""
        return plan_select(parse_select(text), self.schema_of)

    def explain(self, text: str,
                options: CompilerOptions | None = None) -> str:
        """Compile a query and render its physical plan with pruning
        annotations, without executing it."""
        from .plan.explain import render_plan

        options = options or CompilerOptions()
        if options.predicate_cache is None and \
                self.predicate_cache is not None:
            options.predicate_cache = self.predicate_cache
        stmt = parse_select(text)
        plan = plan_select(stmt, self.schema_of)
        context = ExecContext(self.storage, self.metadata,
                              query_id="explain",
                              scan_parallelism=self.scan_parallelism)
        compiled = self._compiler.compile(plan, context, options)
        rendered = render_plan(compiled.root)
        tables = [stmt.table.name] + [j.table.name
                                      for j in stmt.joins]
        versions = ", ".join(
            f"{name}=v{self._table(name).version}"
            for name in dict.fromkeys(t.lower() for t in tables))
        report = f"{rendered}\n-- table versions: {versions}"
        if self.plan_cache is not None:
            from .plancache import parameterize_text

            pq = parameterize_text(text)
            status = ("cached shape (literal rebind on execution)"
                      if self.plan_cache.peek(pq.shape_key)
                      else "shape not cached (cold compile)")
            report += f"\n-- plan cache: {status}"
        return report

    def explain_analyze(self, text: str,
                        options: CompilerOptions | None = None) -> str:
        """Execute a statement, then render its plan annotated with
        the *observed* pruning, retry, and degradation counters.

        Unlike :meth:`explain`, the query actually runs; the report
        includes the resilience summary (retries absorbed, backoff,
        degraded partitions) so operators can see how a query behaved
        under faults.
        """
        from .plan.explain import render_plan
        from .sql.parser import DeleteStmt, UpdateStmt, parse_statement

        tracer = self._new_tracer()
        with _span(tracer, "parse"):
            stmt = parse_statement(text)
        if isinstance(stmt, (DeleteStmt, UpdateStmt)):
            with _span(tracer, "dml", table=stmt.table):
                result = self._execute_dml(stmt, tracer=tracer)
            profile = result.profile
            if tracer is not None:
                profile.trace = tracer.finish()
            header = (f"-- EXPLAIN ANALYZE "
                      f"({result.rows[0][0]} rows affected)")
            body = profile.pruning_summary()
        else:
            options = options or CompilerOptions()
            if options.predicate_cache is None and \
                    self.predicate_cache is not None:
                options.predicate_cache = self.predicate_cache
            with _span(tracer, "plan"):
                plan = plan_select(stmt, self.schema_of)
            context = ExecContext(self.storage, self.metadata,
                                  query_id=f"q{next(_QUERY_COUNTER)}",
                                  scan_parallelism=self.scan_parallelism,
                                  tracer=tracer,
                                  cache=self._effective_cache(None))
            with _span(tracer, "compile"):
                compiled = self._compiler.compile(plan, context,
                                                  options)
            with _span(tracer, "execute") as exec_span:
                context.exec_span = exec_span
                execution = execute(compiled.root, context)
                for hook in compiled.post_exec_hooks:
                    hook()
            profile = context.profile
            if tracer is not None:
                profile.trace = tracer.finish()
            header = (f"-- EXPLAIN ANALYZE ({len(execution.rows)} rows, "
                      f"{profile.total_ms:.2f} ms simulated)")
            body = render_plan(compiled.root)
            topk_checks = sum(s.topk_checks for s in profile.scans)
            if topk_checks:
                body += (f"\n-- topk: {topk_checks} checks / "
                         f"{sum(s.topk_skipped for s in profile.scans)}"
                         f" skipped / {profile.topk_boundary_updates} "
                         f"boundary updates")
        resilience = profile.resilience_summary().replace("\n", "\n-- ")
        report = f"{header}\n{body}\n-- {resilience}"
        if self.durability is not None:
            report += (f"\n-- wal: {profile.wal_appends} appends / "
                       f"{profile.wal_bytes} bytes")
        if profile.trace is not None:
            tree = render_span_tree(profile.trace)
            report += "\n-- trace:\n-- " + tree.replace("\n", "\n-- ")
        return report

    def execute_plan(self, plan: LogicalNode | None,
                     options: CompilerOptions | None = None,
                     tracer: Tracer | None = None,
                     cache: PartitionCache | None = None,
                     pre_compile_ms: float = 0.0,
                     rebind: tuple | None = None) -> QueryResult:
        """Compile and execute an already-planned logical tree.

        ``pre_compile_ms`` charges simulated compile time spent before
        lowering (parse/bind on the cold path, literal rebinding on a
        plan-cache hit) so ``profile.compile_ms`` reflects the whole
        front end. ``rebind=(template, binds, slots)`` lowers a cached
        plan-cache template through
        :meth:`~repro.plan.compiler.QueryCompiler.compile_rebound`
        instead of ``plan``.
        """
        options = options or CompilerOptions()
        if options.predicate_cache is None and \
                self.predicate_cache is not None:
            options.predicate_cache = self.predicate_cache
        if tracer is None:
            tracer = self._new_tracer()
        context = ExecContext(self.storage, self.metadata,
                              query_id=f"q{next(_QUERY_COUNTER)}",
                              scan_parallelism=self.scan_parallelism,
                              tracer=tracer,
                              cache=self._effective_cache(cache))
        if pre_compile_ms:
            context.charge_compile(pre_compile_ms)
        with _span(tracer, "compile"):
            if rebind is not None:
                template, binds, slots = rebind
                compiled = self._compiler.compile_rebound(
                    template, binds, slots, context, options)
            else:
                compiled = self._compiler.compile(plan, context,
                                                  options)
        with _span(tracer, "execute") as exec_span:
            context.exec_span = exec_span
            execution = execute(compiled.root, context)
            for hook in compiled.post_exec_hooks:
                hook()
        if tracer is not None:
            context.profile.trace = tracer.finish()
        return QueryResult(schema=execution.schema,
                           rows=execution.rows,
                           profile=context.profile)

    # ------------------------------------------------------------------
    # DML (partition-wise, immutable rewrites)
    # ------------------------------------------------------------------
    def insert(self, table_name: str,
               rows: Sequence[Sequence[Any]]) -> list[int]:
        """Append rows as new micro-partitions; returns new ids.

        Two-phase: the partitions are built first (pure), logged to
        the WAL as one record, and only then applied — so a crash
        either loses the whole insert or none of it.
        """
        table = self._table(table_name)
        appended = build_table(table.name, table.schema, rows,
                               rows_per_partition=self.rows_per_partition)
        if appended.partitions and self._durable:
            from .durability.codec import insert_record

            self._wal_log(insert_record(table.name,
                                        appended.partitions))
        return self._apply_insert(table, appended.partitions)

    def _apply_insert(self, table: Table,
                      partitions: Sequence[MicroPartition]
                      ) -> list[int]:
        """Register already-built partitions (live commit and replay)."""
        new_ids = []
        for partition in partitions:
            table.add_partition(partition)
            self.storage.put(partition)
            self.metadata.register(table.name, partition.partition_id,
                                   partition.zone_map)
            self._build_sketches(table.name, partition)
            new_ids.append(partition.partition_id)
        if self.predicate_cache is not None:
            self.predicate_cache.on_insert(table.name, new_ids)
        if new_ids:
            self._bump_version(table)
        return new_ids

    def _dml_candidates(self, table: Table, predicate: ast.Expr,
                        profile: QueryProfile | None = None,
                        cache: PartitionCache | None = None
                        ) -> list[MicroPartition]:
        """Partitions a DML statement must inspect, after pruning.

        DML benefits from filter pruning exactly like SELECT (§7's
        flow covers "both DML and SELECT queries"): partitions whose
        metadata proves no row matches are neither read nor rewritten.

        With a data cache attached, candidate reads route through it:
        residency is accounted as hits (the rewrite did not re-fetch
        the partition) and misses populate the cache — the partitions
        a DML inspects are exactly the hot set a follow-up SELECT on
        the same predicate scans. Candidates always come from the
        authoritative in-memory table, so DML results are identical
        with the cache on or off.
        """
        from .pruning.filter_pruning import is_prunable
        from .pruning.stats_index import VectorizedFilterPruner

        scan_profile = None
        if not is_prunable(predicate):
            candidates = table.partitions
        else:
            scan_set = ScanSet((p.partition_id, p.zone_map)
                               for p in table.partitions)
            pruner = VectorizedFilterPruner(predicate, table.schema,
                                            detect_fully_matching=False,
                                            index=table.stats_index())
            result = pruner.prune(scan_set)
            if profile is not None:
                scan_profile = profile.new_scan(table.name)
                scan_profile.total_partitions = len(scan_set)
                scan_profile.filter_result = result
                scan_profile.filter_eligible = True
                scan_profile.filter_columns = tuple(
                    sorted(predicate.column_refs()))
                scan_profile.pruning_mode = pruner.mode
            kept = set(result.kept.partition_ids)
            candidates = [p for p in table.partitions
                          if p.partition_id in kept]
        cache = self._effective_cache(cache)
        if cache is not None:
            for partition in candidates:
                cached = cache.get(
                    partition.partition_id,
                    expected_checksum=partition.checksum)
                if cached is None:
                    cache.put(partition)
                if scan_profile is not None:
                    if cached is not None:
                        scan_profile.cache_hits += 1
                        scan_profile.cache_bytes_saved += \
                            partition.nbytes()
                    else:
                        scan_profile.cache_misses += 1
        return candidates

    def delete_where(self, table_name: str, predicate: ast.Expr,
                     profile: QueryProfile | None = None,
                     cache: PartitionCache | None = None,
                     tracer: Tracer | None = None) -> int:
        """DELETE FROM t WHERE ...; rewrites affected partitions.

        Partition pruning runs first: partitions provably without
        matches are untouched. Returns the number of rows deleted.
        Pass a :class:`QueryProfile` to record the pruning outcome.
        The full rewrite is computed before anything is applied
        (two-phase), so the WAL record precedes every swap.
        """
        table = self._table(table_name)
        deleted_rows = 0
        removed: list[MicroPartition] = []
        added: list[MicroPartition] = []
        for partition in self._dml_candidates(table, predicate,
                                              profile, cache=cache):
            mask = evaluate_predicate(predicate, partition.columns(),
                                      table.schema)
            hits = int(mask.sum())
            if hits == 0:
                continue
            deleted_rows += hits
            removed.append(partition)
            if partition.row_count - hits:
                keep = ~mask
                columns = {name: col.filter(keep)
                           for name, col in partition.columns().items()}
                added.append(MicroPartition(table.schema, columns))
        self._commit_rewrite(table, removed, added, kind="delete",
                             profile=profile, tracer=tracer)
        return deleted_rows

    def update_where(self, table_name: str, predicate: ast.Expr,
                     column: str, value_fn: Callable[[Any], Any],
                     profile: QueryProfile | None = None,
                     cache: PartitionCache | None = None,
                     tracer: Tracer | None = None) -> int:
        """UPDATE t SET column = value_fn(old) WHERE ...

        Partition pruning runs first, then every partition containing
        affected rows is rewritten (two-phase: plan, log, apply).
        Returns the number of rows updated.
        """
        table = self._table(table_name)
        column = column.lower()
        dtype = table.schema.dtype_of(column)
        updated_rows = 0
        removed: list[MicroPartition] = []
        added: list[MicroPartition] = []
        for partition in self._dml_candidates(table, predicate,
                                              profile, cache=cache):
            mask = evaluate_predicate(predicate, partition.columns(),
                                      table.schema)
            hits = int(mask.sum())
            if hits == 0:
                continue
            updated_rows += hits
            removed.append(partition)
            columns = partition.columns()
            old = columns[column]
            new_values = old.to_pylist()
            for i in np.flatnonzero(mask):
                new_values[int(i)] = value_fn(new_values[int(i)])
            from .storage.column import Column

            columns[column] = Column.from_pylist(dtype, new_values)
            added.append(MicroPartition(table.schema, columns))
        self._commit_rewrite(table, removed, added, kind="update",
                             columns=[column], profile=profile,
                             tracer=tracer)
        return updated_rows

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist all tables to a directory (see repro.persistence)."""
        from .persistence import save_catalog

        save_catalog(self, path)

    @classmethod
    def load(cls, path, **kwargs) -> "Catalog":
        """Load a catalog previously written with :meth:`save`."""
        from .persistence import load_catalog

        return load_catalog(path, **kwargs)

    # ------------------------------------------------------------------
    # Clustering maintenance
    # ------------------------------------------------------------------
    def clustering_information(self, table_name: str, column: str):
        """Overlap-depth statistics for one column's zone maps.

        The paper notes pruning effectiveness "primarily depends on how
        data is distributed among micro-partitions" (§1); this is the
        observability side of that statement.
        """
        from .storage.clustering import clustering_information

        table = self._table(table_name)
        return clustering_information(table.partitions, column)

    def recluster(self, table_name: str, *keys: str,
                  rows_per_partition: int | None = None) -> int:
        """Rewrite a table fully sorted by ``keys``.

        Models Snowflake's (re)clustering service: all partitions are
        rewritten, metadata is refreshed, and — since every partition
        id changes — the predicate cache is invalidated for the table.
        Returns the new partition count.
        """
        table = self._table(table_name)
        if not keys:
            raise SchemaError("recluster requires at least one key")
        old_partitions = list(table.partitions)
        rows = table.to_rows()
        rebuilt = build_table(
            table.name, table.schema, rows,
            rows_per_partition=rows_per_partition
            or self.rows_per_partition,
            layout=Layout.sorted_by(*keys))
        if not old_partitions and not rebuilt.partitions:
            # Empty table: a rewrite that touches nothing must be a true
            # no-op — no version bump, no cache invalidation, no WAL
            # record (matches _commit_rewrite's contract).
            return 0
        self._commit_rewrite(table, old_partitions,
                             rebuilt.partitions, kind="recluster")
        return table.num_partitions

    # ------------------------------------------------------------------
    # Rewrite commit machinery (shared by DELETE/UPDATE/RECLUSTER)
    # ------------------------------------------------------------------
    def _commit_rewrite(self, table: Table,
                        removed: Sequence[MicroPartition],
                        added: Sequence[MicroPartition],
                        kind: str,
                        columns: Sequence[str] | None = None,
                        profile: QueryProfile | None = None,
                        tracer: Tracer | None = None) -> None:
        """Log one rewrite record, then apply it (log-before-apply).

        A rewrite that touches nothing logs nothing — one WAL record
        per *committed* mutation, never per attempted statement.
        """
        if not removed and not added:
            return
        if self._durable:
            from .durability.codec import rewrite_record

            self._wal_log(rewrite_record(
                table.name, kind,
                [p.partition_id for p in removed], added, columns),
                profile=profile, tracer=tracer)
        self._apply_rewrite(table, removed, added, kind=kind,
                            columns=columns)

    def _apply_rewrite(self, table: Table,
                       removed: Sequence[MicroPartition],
                       added: Sequence[MicroPartition],
                       kind: str,
                       columns: Sequence[str] | None = None) -> None:
        """Swap partition sets in storage/metadata and fire the cache
        invalidation hooks (live commit and replay take this path)."""
        removed_ids = []
        for old in removed:
            table.remove_partition(old.partition_id)
            self.storage.delete(old.partition_id)
            self.metadata.unregister(table.name, old.partition_id)
            removed_ids.append(old.partition_id)
        inserted_ids = []
        cache = self._sketch_build_cache(added, table.schema)
        for new in added:
            table.add_partition(new)
            self.storage.put(new)
            self.metadata.register(table.name, new.partition_id,
                                   new.zone_map)
            self._build_sketches(table.name, new, cache)
            inserted_ids.append(new.partition_id)
        if self.predicate_cache is not None and removed_ids:
            if kind == "delete":
                self.predicate_cache.on_delete(table.name, removed_ids)
                if inserted_ids:
                    self.predicate_cache.on_insert(table.name,
                                                   inserted_ids)
            else:
                cols = (list(columns) if columns is not None
                        else table.schema.names())
                self.predicate_cache.on_update(
                    table.name, removed_ids, inserted_ids, cols)
        self._bump_version(table)
