"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from ..errors import ParseError
from ..expr import ast
from ..types import DataType
from .lexer import Token, tokenize

AGG_FUNCS = ("count", "sum", "min", "max", "avg")
KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT",
    "OFFSET", "JOIN", "LEFT", "OUTER", "INNER", "ON", "AS", "AND",
    "OR", "NOT", "LIKE", "IN", "IS", "NULL", "TRUE", "FALSE",
    "BETWEEN", "ASC", "DESC", "IF", "CAST", "DATE", "DISTINCT",
    "HAVING", "DELETE", "UPDATE", "SET",
}


class AggCall(ast.Expr):
    """Parser-level aggregate reference inside an expression.

    Appears in HAVING clauses (``HAVING count(*) > 5``); the planner
    replaces every occurrence with a column reference to the
    aggregate's output before the expression is typed or evaluated.
    """

    _child_slots = ()

    def __init__(self, func: str, arg: ast.Expr | None):
        self.func = func          #: count_star/count/sum/min/max/avg
        self.arg = arg

    def with_children(self, children):
        return self

    def dtype(self, schema):
        raise ParseError(
            f"aggregate {self.func}() used outside HAVING/GROUP BY "
            "context")

    def to_sql(self) -> str:
        inner = self.arg.to_sql() if self.arg is not None else "*"
        return f"{self.func.replace('_star', '')}({inner})"

    def shape(self) -> str:
        inner = self.arg.shape() if self.arg is not None else "*"
        return f"{self.func}({inner})"

    def _key(self):
        return ("AggCall", self.func, self.arg)


@dataclass
class SelectItem:
    """One SELECT-list entry."""

    expr: ast.Expr | None          #: None for a bare aggregate
    alias: str | None
    agg_func: str | None = None    #: count/sum/min/max/avg, or None
    agg_arg: ast.Expr | None = None  #: None for COUNT(*)

    @property
    def is_aggregate(self) -> bool:
        return self.agg_func is not None


@dataclass
class TableRef:
    name: str
    alias: str


@dataclass
class JoinClause:
    table: TableRef
    left_ref: str     #: qualified or bare column text, e.g. "t.x"
    right_ref: str
    join_type: str    #: "inner" | "left_outer"


@dataclass
class OrderItem:
    expr: ast.Expr | None
    desc: bool
    agg_func: str | None = None
    agg_arg: ast.Expr | None = None


@dataclass
class SelectStmt:
    items: list[SelectItem]
    star: bool
    table: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: ast.Expr | None = None
    group_by: list[str] = field(default_factory=list)
    having: ast.Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass
class DeleteStmt:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: ast.Expr | None


@dataclass
class UpdateStmt:
    """``UPDATE t SET col = expr [WHERE ...]``."""

    table: str
    column: str
    value: ast.Expr
    where: ast.Expr | None


def parse_select(text: str) -> SelectStmt:
    """Parse one SELECT statement (a trailing ';' is allowed)."""
    statement = parse_statement(text)
    if not isinstance(statement, SelectStmt):
        raise ParseError("expected a SELECT statement")
    return statement


def parse_statement(text: str) -> "SelectStmt | DeleteStmt | UpdateStmt":
    """Parse one SELECT, DELETE, or UPDATE statement."""
    parser = _Parser(tokenize(text))
    if parser.check_keyword("DELETE"):
        return parser.parse_delete()
    if parser.check_keyword("UPDATE"):
        return parser.parse_update()
    return parser.parse()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "IDENT" and token.upper in words

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(
                f"expected {word}, found {self.peek().value!r}",
                position=self.peek().pos)

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "SYMBOL" and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self.peek().value!r}",
                position=self.peek().pos)

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "IDENT" or token.upper in KEYWORDS:
            raise ParseError(
                f"expected identifier, found {token.value!r}",
                position=token.pos)
        self.advance()
        return token.value.lower()

    # -- grammar ---------------------------------------------------------
    def parse(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        star, items = self._select_list()
        self.expect_keyword("FROM")
        table = self._table_ref()
        joins = []
        while self.check_keyword("JOIN", "LEFT", "INNER"):
            joins.append(self._join_clause())
        where = None
        if self.accept_keyword("WHERE"):
            where = self._expr()
        group_by: list[str] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self._column_text())
            while self.accept_symbol(","):
                group_by.append(self._column_text())
        having = None
        if self.accept_keyword("HAVING"):
            having = self._expr()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_symbol(","):
                order_by.append(self._order_item())
        limit = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self._int_literal()
            if self.accept_keyword("OFFSET"):
                offset = self._int_literal()
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {self.peek().value!r}",
                position=self.peek().pos)
        return SelectStmt(items=items, star=star, table=table,
                          joins=joins, where=where, group_by=group_by,
                          having=having, order_by=order_by,
                          limit=limit, offset=offset,
                          distinct=distinct)

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._expr()
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {self.peek().value!r}",
                position=self.peek().pos)
        return DeleteStmt(table=table, where=where)

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        column = self.expect_ident()
        self.expect_symbol("=")
        value = self._expr()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._expr()
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {self.peek().value!r}",
                position=self.peek().pos)
        return UpdateStmt(table=table, column=column, value=value,
                          where=where)

    def _select_list(self) -> tuple[bool, list[SelectItem]]:
        if self.accept_symbol("*"):
            return True, []
        items = [self._select_item()]
        while self.accept_symbol(","):
            items.append(self._select_item())
        return False, items

    def _select_item(self) -> SelectItem:
        agg = self._try_aggregate()
        if agg is not None:
            func, arg = agg
            alias = self._optional_alias()
            return SelectItem(expr=None, alias=alias, agg_func=func,
                              agg_arg=arg)
        expr = self._expr()
        alias = self._optional_alias()
        return SelectItem(expr=expr, alias=alias)

    def _optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident()
        token = self.peek()
        if token.kind == "IDENT" and token.upper not in KEYWORDS:
            self.advance()
            return token.value.lower()
        return None

    def _try_aggregate(self) -> tuple[str, ast.Expr | None] | None:
        token = self.peek()
        next_token = self.tokens[self.pos + 1]
        if (token.kind == "IDENT" and token.value.lower() in AGG_FUNCS
                and next_token.kind == "SYMBOL"
                and next_token.value == "("):
            func = token.value.lower()
            self.advance()
            self.advance()
            if func == "count" and self.accept_symbol("*"):
                self.expect_symbol(")")
                return "count_star", None
            arg = self._expr()
            self.expect_symbol(")")
            return func, arg
        return None

    def _table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = name
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        else:
            token = self.peek()
            if token.kind == "IDENT" and token.upper not in KEYWORDS:
                self.advance()
                alias = token.value.lower()
        return TableRef(name=name, alias=alias)

    def _join_clause(self) -> JoinClause:
        join_type = "inner"
        if self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            join_type = "left_outer"
        else:
            self.accept_keyword("INNER")
        self.expect_keyword("JOIN")
        table = self._table_ref()
        self.expect_keyword("ON")
        left = self._column_text()
        self.expect_symbol("=")
        right = self._column_text()
        return JoinClause(table=table, left_ref=left, right_ref=right,
                          join_type=join_type)

    def _column_text(self) -> str:
        """A possibly qualified column: ``col`` or ``alias.col``."""
        first = self.expect_ident()
        if self.accept_symbol("."):
            second = self.expect_ident()
            return f"{first}.{second}"
        return first

    def _order_item(self) -> OrderItem:
        agg = self._try_aggregate()
        if agg is not None:
            func, arg = agg
            desc = self._direction()
            return OrderItem(expr=None, desc=desc, agg_func=func,
                             agg_arg=arg)
        expr = self._expr()
        return OrderItem(expr=expr, desc=self._direction())

    def _direction(self) -> bool:
        if self.accept_keyword("DESC"):
            return True
        self.accept_keyword("ASC")
        return False

    def _int_literal(self) -> int:
        token = self.peek()
        if token.kind != "NUMBER" or "." in token.value:
            raise ParseError(
                f"expected integer, found {token.value!r}",
                position=token.pos)
        self.advance()
        return int(token.value)

    # -- expressions -------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self) -> ast.Expr:
        parts = [self._and()]
        while self.accept_keyword("OR"):
            parts.append(self._and())
        return parts[0] if len(parts) == 1 else ast.Or(parts)

    def _and(self) -> ast.Expr:
        parts = [self._not()]
        while self.accept_keyword("AND"):
            parts.append(self._not())
        return parts[0] if len(parts) == 1 else ast.And(parts)

    def _not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Not(self._not())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "SYMBOL" and token.value in (
                "=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.Compare(op, left, self._additive())
        if self.check_keyword("BETWEEN"):
            self.advance()
            lo = self._additive()
            self.expect_keyword("AND")
            hi = self._additive()
            return ast.between(left, lo, hi)
        negated = False
        if self.check_keyword("NOT"):
            lookahead = self.tokens[self.pos + 1]
            if lookahead.kind == "IDENT" and lookahead.upper in (
                    "LIKE", "IN"):
                self.advance()
                negated = True
        if self.accept_keyword("LIKE"):
            pattern_token = self.peek()
            if pattern_token.kind != "STRING":
                raise ParseError("LIKE requires a string pattern",
                                 position=pattern_token.pos)
            self.advance()
            result: ast.Expr = ast.Like(left, pattern_token.value)
            return ast.Not(result) if negated else result
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            values = [self._literal_value()]
            while self.accept_symbol(","):
                values.append(self._literal_value())
            self.expect_symbol(")")
            result = ast.InList(left, values)
            return ast.Not(result) if negated else result
        if negated:
            raise ParseError("expected LIKE or IN after NOT",
                             position=self.peek().pos)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "SYMBOL" and token.value in ("+", "-"):
                self.advance()
                left = ast.Arith(token.value, left,
                                 self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "SYMBOL" and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.Arith(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            return ast.Neg(self._unary())
        return self._primary()

    def _literal_value(self):
        """A literal usable inside IN lists (returns a Python value)."""
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return _number(token.value)
        if token.kind == "STRING":
            self.advance()
            return token.value
        if self.accept_keyword("NULL"):
            return None
        if self.accept_keyword("TRUE"):
            return True
        if self.accept_keyword("FALSE"):
            return False
        if self.check_keyword("DATE"):
            self.advance()
            return self._date_body()
        raise ParseError(f"expected literal, found {token.value!r}",
                         position=token.pos)

    def _date_body(self) -> datetime.date:
        token = self.peek()
        if token.kind != "STRING":
            raise ParseError("DATE requires a 'YYYY-MM-DD' string",
                             position=token.pos)
        self.advance()
        try:
            return datetime.date.fromisoformat(token.value)
        except ValueError as exc:
            raise ParseError(f"invalid date {token.value!r}: {exc}",
                             position=token.pos) from None

    def _primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return ast.Literal(_number(token.value))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if self.accept_symbol("("):
            inner = self._expr()
            self.expect_symbol(")")
            return inner
        if self.accept_keyword("NULL"):
            # Untyped NULL literals default to INTEGER; CAST overrides.
            return ast.Literal(None, DataType.INTEGER)
        if self.accept_keyword("TRUE"):
            return ast.Literal(True)
        if self.accept_keyword("FALSE"):
            return ast.Literal(False)
        if self.check_keyword("DATE"):
            self.advance()
            return ast.Literal(self._date_body())
        if self.check_keyword("IF"):
            self.advance()
            self.expect_symbol("(")
            cond = self._expr()
            self.expect_symbol(",")
            then = self._expr()
            self.expect_symbol(",")
            otherwise = self._expr()
            self.expect_symbol(")")
            return ast.If(cond, then, otherwise)
        if self.check_keyword("CAST"):
            self.advance()
            self.expect_symbol("(")
            inner = self._expr()
            self.expect_keyword("AS")
            type_name = self.expect_ident().upper()
            self.expect_symbol(")")
            try:
                target = DataType(type_name)
            except ValueError:
                raise ParseError(f"unknown type {type_name!r}",
                                 position=token.pos) from None
            return ast.Cast(inner, target)
        if token.kind == "IDENT" and token.upper not in KEYWORDS:
            return self._ident_expr()
        raise ParseError(f"unexpected token {token.value!r}",
                         position=token.pos)

    def _ident_expr(self) -> ast.Expr:
        name = self.expect_ident()
        next_token = self.peek()
        if next_token.kind == "SYMBOL" and next_token.value == "(":
            return self._function_call(name)
        if self.accept_symbol("."):
            column = self.expect_ident()
            return ast.ColumnRef(f"{name}.{column}")
        return ast.ColumnRef(name)

    def _function_call(self, name: str) -> ast.Expr:
        self.expect_symbol("(")
        lowered = name.lower()
        if lowered in AGG_FUNCS:
            # Aggregate inside an expression (legal only in HAVING;
            # the planner enforces context).
            if lowered == "count" and self.accept_symbol("*"):
                self.expect_symbol(")")
                return AggCall("count_star", None)
            arg = self._expr()
            self.expect_symbol(")")
            return AggCall(lowered, arg)
        args = [self._expr()]
        while self.accept_symbol(","):
            args.append(self._expr())
        self.expect_symbol(")")
        if lowered in ("startswith", "endswith", "contains"):
            if len(args) != 2 or not isinstance(args[1], ast.Literal) \
                    or not isinstance(args[1].value, str):
                raise ParseError(
                    f"{name} requires (expr, 'string literal')")
            node_type = {"startswith": ast.StartsWith,
                         "endswith": ast.EndsWith,
                         "contains": ast.Contains}[lowered]
            return node_type(args[0], args[1].value)
        if lowered in ast.FUNCTIONS:
            return ast.FunctionCall(lowered, args)
        raise ParseError(f"unknown function {name!r}")


def _number(text: str):
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
