"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

SYMBOLS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ".",
           "*", "+", "-", "/", "%", ";")


@dataclass(frozen=True)
class Token:
    kind: str       #: IDENT, NUMBER, STRING, SYMBOL, EOF
    value: str
    pos: int

    @property
    def upper(self) -> str:
        return self.value.upper()


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens.

    Raises:
        ParseError: on unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            # scientific notation
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token("NUMBER", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token("IDENT", text[start:i], start))
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start)
