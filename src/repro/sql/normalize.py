"""SQL text normalization for result-cache keys.

The service layer's result cache (§2's Cloud Services keep a query
result cache in front of the warehouses) must treat textually
different but semantically identical statements as the same key:
whitespace, comments, keyword/identifier case, and a trailing ``;``
must not cause cache misses. Normalization is purely lexical — it
reuses the SQL tokenizer, lowercases identifiers (the parser binds
names case-insensitively), re-quotes string literals (preserving
case), and joins tokens with single spaces.

Beyond the canonical text, the cache needs the set of tables a
statement touches so it can snapshot their versions:
:func:`referenced_tables` extracts them from the parsed statement.
"""

from __future__ import annotations

from .lexer import tokenize
from .parser import SelectStmt, parse_statement

__all__ = ["normalize_sql", "referenced_tables", "is_select"]


def normalize_sql(text: str) -> str:
    """Canonical single-line form of a statement, for cache keys.

    ``SELECT * FROM t  WHERE x=1;`` and ``select *\\nfrom T where
    x = 1 -- comment`` normalize identically. String literals keep
    their case (SQL strings are case-sensitive); numbers keep their
    written form (``1.0`` and ``1`` stay distinct — they are
    different literals even when equal).
    """
    parts: list[str] = []
    for token in tokenize(text):
        if token.kind == "EOF":
            break
        if token.kind == "IDENT":
            parts.append(token.value.lower())
        elif token.kind == "STRING":
            parts.append("'" + token.value.replace("'", "''") + "'")
        else:
            parts.append(token.value)
    while parts and parts[-1] == ";":
        parts.pop()
    return " ".join(parts)


def referenced_tables(statement) -> tuple[str, ...]:
    """Sorted, lower-cased names of every table a statement reads
    or writes (FROM table, JOIN tables, or the DML target).

    Accepts either raw SQL text or an already-parsed statement, so
    hot paths that hold the parse (the service layer) don't pay a
    second parse just to learn the table set.
    """
    stmt = (parse_statement(statement) if isinstance(statement, str)
            else statement)
    if isinstance(stmt, SelectStmt):
        names = [stmt.table.name]
        names.extend(join.table.name for join in stmt.joins)
    else:
        names = [stmt.table]
    return tuple(sorted({name.lower() for name in names}))


def is_select(text: str) -> bool:
    """True when the statement is a SELECT (cacheable, shared-lock);
    False for DML (DELETE/UPDATE: never cached, exclusive-lock)."""
    return isinstance(parse_statement(text), SelectStmt)
