"""Binding and logical planning for parsed SELECT statements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import PlanError, SchemaError
from ..expr import ast
from ..plan import logical as L
from ..types import Schema
from .parser import OrderItem, SelectItem, SelectStmt

SchemaResolver = Callable[[str], Schema]


@dataclass
class _Scope:
    """Name resolution over the FROM clause."""

    #: alias -> (table name, schema)
    tables: dict[str, tuple[str, Schema]]

    def resolve(self, ref: str) -> str:
        """Resolve a possibly qualified column to its bare name.

        Raises:
            PlanError: for unknown or ambiguous columns.
        """
        ref = ref.lower()
        if "." in ref:
            alias, column = ref.split(".", 1)
            if alias not in self.tables:
                raise PlanError(f"unknown table alias {alias!r}")
            _, schema = self.tables[alias]
            if column not in schema:
                raise PlanError(
                    f"table {alias!r} has no column {column!r}")
            return column
        owners = [alias for alias, (_, schema) in self.tables.items()
                  if ref in schema]
        if not owners:
            raise PlanError(f"unknown column {ref!r}")
        if len(owners) > 1:
            raise PlanError(
                f"column {ref!r} is ambiguous across tables {owners}; "
                "qualify it")
        return ref

    def table_of(self, ref: str) -> str:
        """The alias owning a (possibly qualified) column."""
        ref = ref.lower()
        if "." in ref:
            alias, _ = ref.split(".", 1)
            if alias not in self.tables:
                raise PlanError(f"unknown table alias {alias!r}")
            return alias
        owners = [alias for alias, (_, schema) in self.tables.items()
                  if ref in schema]
        if len(owners) != 1:
            raise PlanError(f"cannot attribute column {ref!r}")
        return owners[0]


def _rewrite_refs(expr: ast.Expr, scope: _Scope) -> ast.Expr:
    """Replace qualified column refs with resolved bare names."""
    from .parser import AggCall

    if isinstance(expr, AggCall):
        raise PlanError(
            f"aggregate {expr.to_sql()} is only allowed in the select "
            "list, ORDER BY, or HAVING")
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(scope.resolve(expr.name))
    children = [_rewrite_refs(c, scope) for c in expr.children()]
    return expr.with_children(children)


def plan_select(stmt: SelectStmt,
                resolver: SchemaResolver) -> L.LogicalNode:
    """Bind a parsed statement and build its logical plan."""
    scope = _build_scope(stmt, resolver)
    plan = _build_join_tree(stmt, scope)
    if stmt.where is not None:
        plan = L.LogicalFilter(plan, _rewrite_refs(stmt.where, scope))

    has_aggregates = any(item.is_aggregate for item in stmt.items) or \
        any(item.agg_func for item in stmt.order_by)
    if stmt.having is not None and not (stmt.group_by or has_aggregates):
        raise PlanError("HAVING requires GROUP BY or aggregates")
    if stmt.group_by or has_aggregates:
        plan, output_names, order_agg_names = _plan_aggregate(
            stmt, scope, plan, resolver)
        plan, strip_to = _plan_aggregate_order_limit(
            stmt, plan, output_names, resolver, order_agg_names)
    else:
        plan, strip_to = _plan_select_core(stmt, scope, plan, resolver)
    if strip_to is not None:
        plan = L.LogicalProject(
            plan, [ast.ColumnRef(n) for n in strip_to], strip_to)
    return plan


def _build_scope(stmt: SelectStmt, resolver: SchemaResolver) -> _Scope:
    tables: dict[str, tuple[str, Schema]] = {}

    def add(name: str, alias: str) -> None:
        alias = alias.lower()
        if alias in tables:
            raise PlanError(f"duplicate table alias {alias!r}")
        tables[alias] = (name.lower(), resolver(name))

    add(stmt.table.name, stmt.table.alias)
    for join in stmt.joins:
        add(join.table.name, join.table.alias)
    return _Scope(tables)


def _build_join_tree(stmt: SelectStmt, scope: _Scope) -> L.LogicalNode:
    plan: L.LogicalNode = L.LogicalScan(
        scope.tables[stmt.table.alias.lower()][0])
    seen_aliases = {stmt.table.alias.lower()}
    for join in stmt.joins:
        new_alias = join.table.alias.lower()
        left_owner = scope.table_of(join.left_ref)
        right_owner = scope.table_of(join.right_ref)
        if right_owner == new_alias and left_owner in seen_aliases:
            probe_ref, build_ref = join.left_ref, join.right_ref
        elif left_owner == new_alias and right_owner in seen_aliases:
            probe_ref, build_ref = join.right_ref, join.left_ref
        else:
            raise PlanError(
                "join condition must relate the new table to an "
                f"earlier one: ON {join.left_ref} = {join.right_ref}")
        plan = L.LogicalJoin(
            plan,
            L.LogicalScan(scope.tables[new_alias][0]),
            left_key=scope.resolve(probe_ref),
            right_key=scope.resolve(build_ref),
            join_type=join.join_type,
        )
        seen_aliases.add(new_alias)
    return plan


def _item_output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if item.is_aggregate:
        base = item.agg_func.replace("_star", "")
        if item.agg_arg is not None and isinstance(item.agg_arg,
                                                   ast.ColumnRef):
            return f"{base}_{item.agg_arg.name.replace('.', '_')}"
        return base
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name.split(".")[-1]
    return f"col{index}"


def _plan_select_core(stmt: SelectStmt, scope: _Scope,
                      plan: L.LogicalNode, resolver: SchemaResolver
                      ) -> tuple[L.LogicalNode, list[str] | None]:
    """Projection + Sort + Limit for the non-aggregate case.

    ORDER BY items that are neither select aliases nor output columns
    become hidden projection columns computed against the *base*
    schema (pre-projection), then stripped above the Limit. Returns
    (plan, columns-to-strip-to or None).
    """
    base_schema = plan.output_schema(resolver)
    if stmt.star:
        names = base_schema.names()
        exprs: list[ast.Expr] = [ast.ColumnRef(n) for n in names]
    else:
        exprs = [_rewrite_refs(item.expr, scope)
                 for item in stmt.items]
        names = [_item_output_name(item, i)
                 for i, item in enumerate(stmt.items)]

    sort_keys: list[L.SortItem] = []
    hidden_exprs: list[ast.Expr] = []
    hidden_names: list[str] = []
    for i, order in enumerate(stmt.order_by):
        if order.agg_func is not None:
            raise PlanError(
                "aggregate in ORDER BY requires GROUP BY")
        column = _resolve_order_target(order.expr, names, scope)
        if column is not None:
            sort_keys.append(L.SortItem(column, order.desc))
            continue
        bound = _rewrite_refs(order.expr, scope)
        name = f"__ord{i}"
        hidden_exprs.append(bound)
        hidden_names.append(name)
        sort_keys.append(L.SortItem(name, order.desc))

    if stmt.distinct and hidden_exprs:
        raise PlanError(
            "ORDER BY expressions must appear in the select list when "
            "SELECT DISTINCT is used")
    needs_project = (not stmt.star) or bool(hidden_exprs)
    if needs_project:
        plan = L.LogicalProject(plan, exprs + hidden_exprs,
                                names + hidden_names)
    if stmt.distinct:
        # DISTINCT = grouping on every output column, no aggregates.
        plan = L.LogicalAggregate(plan, names, [])
    if sort_keys:
        plan = L.LogicalSort(plan, sort_keys)
    if stmt.limit is not None:
        plan = L.LogicalLimit(plan, stmt.limit, stmt.offset)
    return plan, names if hidden_exprs else None


def _resolve_order_target(expr: ast.Expr | None, output_names: list[str],
                          scope: _Scope) -> str | None:
    """Resolve an ORDER BY expression to an output column, if it is one."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    bare = expr.name.split(".")[-1]
    if "." not in expr.name and bare in output_names:
        return bare
    try:
        resolved = scope.resolve(expr.name)
    except PlanError:
        return None
    if resolved in output_names:
        return resolved
    return None


def _plan_aggregate(stmt: SelectStmt, scope: _Scope,
                    plan: L.LogicalNode, resolver: SchemaResolver
                    ) -> tuple[L.LogicalNode, list[str], dict[int, str]]:
    group_keys = [scope.resolve(g) for g in stmt.group_by]
    agg_items: list[L.AggItem] = []
    output_names: list[str] = []

    def add_aggregate(func: str, arg: ast.Expr | None,
                      output: str) -> None:
        input_column = None
        if arg is not None:
            bound = _rewrite_refs(arg, scope)
            if not isinstance(bound, ast.ColumnRef):
                raise PlanError(
                    "aggregate arguments must be plain columns in this "
                    f"engine; got {arg!r}")
            input_column = bound.name
        agg_items.append(L.AggItem(func, input_column, output))

    for i, item in enumerate(stmt.items):
        name = _item_output_name(item, i)
        output_names.append(name)
        if item.is_aggregate:
            add_aggregate(item.agg_func, item.agg_arg, name)
            continue
        bound = _rewrite_refs(item.expr, scope)
        if not isinstance(bound, ast.ColumnRef) or \
                bound.name not in group_keys:
            raise PlanError(
                f"non-aggregate select item {item.expr!r} must be a "
                "GROUP BY key")
    if stmt.star:
        raise PlanError("SELECT * cannot be combined with GROUP BY")

    # ORDER BY may reference aggregates not in the select list; give
    # them hidden outputs and remember which output each order item
    # resolves to.
    hidden: list[str] = []
    order_agg_names: dict[int, str] = {}
    for i, order in enumerate(stmt.order_by):
        if order.agg_func is None:
            continue
        existing = _find_agg_output(order, agg_items, scope)
        if existing is None:
            name = f"__ord_agg{len(hidden)}"
            add_aggregate(order.agg_func, order.agg_arg, name)
            hidden.append(name)
            order_agg_names[i] = name
        else:
            order_agg_names[i] = existing

    # HAVING: rewrite aggregate calls to (possibly hidden) aggregate
    # outputs and filter above the aggregate, below the projection.
    having_expr = None
    if stmt.having is not None:
        having_expr = _rewrite_having(stmt.having, scope, group_keys,
                                      output_names, agg_items,
                                      add_aggregate)

    aggregate: L.LogicalNode = L.LogicalAggregate(plan, group_keys,
                                                  agg_items)
    if having_expr is not None:
        aggregate = L.LogicalFilter(aggregate, having_expr)
    # Project to the select-list order (plus hidden sort outputs).
    projected = output_names + hidden
    project = L.LogicalProject(
        aggregate, [ast.ColumnRef(n) for n in projected], projected)
    return project, output_names, order_agg_names


def _rewrite_having(expr: ast.Expr, scope: _Scope,
                    group_keys: list[str], output_names: list[str],
                    agg_items: list[L.AggItem],
                    add_aggregate) -> ast.Expr:
    """Bind a HAVING expression against the aggregate's outputs."""
    from .parser import AggCall

    if isinstance(expr, AggCall):
        input_column = None
        if expr.arg is not None:
            bound = _rewrite_refs(expr.arg, scope)
            if not isinstance(bound, ast.ColumnRef):
                raise PlanError(
                    "aggregate arguments must be plain columns; got "
                    f"{expr.arg!r}")
            input_column = bound.name
        for item in agg_items:
            if item.func == expr.func and item.input == input_column:
                return ast.ColumnRef(item.output)
        name = f"__hav{len(agg_items)}"
        add_aggregate(expr.func, expr.arg, name)
        return ast.ColumnRef(name)
    if isinstance(expr, ast.ColumnRef):
        bare = expr.name.split(".")[-1]
        if "." not in expr.name and (bare in output_names
                                     or bare in group_keys):
            return ast.ColumnRef(bare)
        resolved = scope.resolve(expr.name)
        if resolved not in group_keys:
            raise PlanError(
                f"HAVING column {expr.name!r} must be a grouping key "
                "or aggregate")
        return ast.ColumnRef(resolved)
    children = [_rewrite_having(c, scope, group_keys, output_names,
                                agg_items, add_aggregate)
                for c in expr.children()]
    return expr.with_children(children)


def _find_agg_output(order: OrderItem, agg_items: list[L.AggItem],
                     scope: _Scope) -> str | None:
    arg_column = None
    if order.agg_arg is not None:
        bound = _rewrite_refs(order.agg_arg, scope)
        if not isinstance(bound, ast.ColumnRef):
            return None
        arg_column = bound.name
    for item in agg_items:
        if item.func == order.agg_func and item.input == arg_column:
            return item.output
    return None


def _plan_aggregate_order_limit(
        stmt: SelectStmt, plan: L.LogicalNode, output_names: list[str],
        resolver: SchemaResolver, order_agg_names: dict[int, str]
        ) -> tuple[L.LogicalNode, list[str] | None]:
    """Sort + Limit over aggregate outputs.

    ORDER BY items must be grouping keys, select aliases, or
    aggregates (resolved to their — possibly hidden — outputs in
    ``order_agg_names``). Returns (plan, columns to strip to).
    """
    needs_strip = False
    if stmt.order_by:
        schema = plan.output_schema(resolver)
        keys: list[L.SortItem] = []
        for i, order in enumerate(stmt.order_by):
            if i in order_agg_names:
                name = order_agg_names[i]
                keys.append(L.SortItem(name, order.desc))
                if name not in output_names:
                    needs_strip = True
                continue
            if isinstance(order.expr, ast.ColumnRef):
                bare = order.expr.name.split(".")[-1]
                if bare in schema:
                    keys.append(L.SortItem(bare, order.desc))
                    continue
            raise PlanError(
                f"ORDER BY item {order.expr!r} must be a grouping "
                "key, select alias, or aggregate")
        plan = L.LogicalSort(plan, keys)
    if stmt.limit is not None:
        plan = L.LogicalLimit(plan, stmt.limit, stmt.offset)
    return plan, output_names if needs_strip else None
