"""A SQL subset front end.

Supports the query shapes the paper analyzes::

    SELECT [DISTINCT] <exprs | aggregates | *>
    FROM t [AS a] [[LEFT [OUTER]] JOIN u [AS b] ON a.x = b.y]...
    [WHERE <predicate>]
    [GROUP BY <columns> [HAVING <predicate over aggregates>]]
    [ORDER BY <expr> [ASC|DESC], ...]
    [LIMIT k [OFFSET m]]

plus partition-pruned DML::

    DELETE FROM t [WHERE <predicate>]
    UPDATE t SET col = <expr> [WHERE <predicate>]

:mod:`.lexer` tokenizes, :mod:`.parser` builds a statement AST, and
:mod:`.planner` binds names and produces a logical plan.
"""

from .lexer import tokenize, Token
from .normalize import is_select, normalize_sql, referenced_tables
from .parser import (
    DeleteStmt,
    SelectStmt,
    UpdateStmt,
    parse_select,
    parse_statement,
)
from .planner import plan_select

__all__ = ["tokenize", "Token", "parse_select", "parse_statement",
           "SelectStmt", "DeleteStmt", "UpdateStmt", "plan_select",
           "normalize_sql", "referenced_tables", "is_select"]


def parse_sql(text: str) -> SelectStmt:
    """Parse one SELECT statement."""
    return parse_select(text)
