"""Simulated disaggregated cloud object storage with I/O accounting.

The paper's central argument is that in a decoupled compute/storage
architecture, pruning primarily saves *network I/O* (§1, §2). We model
cloud object storage (S3/Azure Blob/GCS) as an in-process store that
counts every request and byte and charges a simple latency+bandwidth
cost model, so experiments can report simulated runtimes
deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import (
    CorruptionError,
    PartitionUnavailableError,
    StorageError,
    TransientError,
)
from .micropartition import MicroPartition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..faults.retry import RetryPolicy, RetryStats

#: XOR mask applied to a checksum to simulate a wire-level bit flip.
_CORRUPTION_MASK = 0x5A5A5A5A


@dataclass
class CostModel:
    """Time model for simulated query execution.

    The defaults loosely mirror cloud object storage: a fixed per-request
    latency, a bandwidth term per byte, and a CPU term per row processed.
    All costs are in milliseconds.
    """

    request_latency_ms: float = 10.0
    ms_per_mb: float = 10.0          # ~100 MB/s effective bandwidth
    cpu_ms_per_krow: float = 0.5     # per 1000 rows scanned/filtered
    metadata_lookup_ms: float = 0.02  # per-partition metadata access
    prune_check_ms: float = 0.002    # per predicate/partition prune check
    #: amortized per-partition cost when a compiled kernel classifies
    #: the whole table in one vectorized pass (~10x cheaper; §7 treats
    #: pruning time itself as a first-class cost).
    vectorized_prune_check_ms: float = 0.0002
    #: fixed cost of serving a partition from the warehouse-local data
    #: cache (§2): local SSD/memory, no object-store round trip.
    cached_hit_cost_ms: float = 0.5
    #: bandwidth term for cached reads (~1 GB/s effective local
    #: bandwidth vs ~100 MB/s to object storage).
    cached_ms_per_mb: float = 1.0
    #: fixed front-end cost of a cold compile: lexing, parsing, and
    #: building the logical plan (§7 treats compile time as a
    #: first-class cost; the plan cache exists to avoid this).
    parse_cost_ms: float = 0.25
    #: per-column binding/name-resolution cost across the referenced
    #: tables' schemas — full width cold, touched-columns-only with
    #: compile-time schema pruning (repro.plancache.schema_prune).
    bind_column_cost_ms: float = 0.03
    #: flat cost of rebinding literals into a cached plan template on
    #: a plan-cache hit (replaces parse + bind entirely).
    plan_rebind_cost_ms: float = 0.05

    def load_cost(self, nbytes: int) -> float:
        """Cost of fetching ``nbytes`` from object storage."""
        return self.request_latency_ms + self.ms_per_mb * nbytes / 2**20

    def cached_load_cost(self, nbytes: int) -> float:
        """Cost of reading ``nbytes`` from the warehouse-local cache."""
        return self.cached_hit_cost_ms + self.cached_ms_per_mb * nbytes / 2**20

    def scan_cost(self, rows: int) -> float:
        """CPU cost of scanning/filtering ``rows`` rows."""
        return self.cpu_ms_per_krow * rows / 1000.0


@dataclass
class IOStats:
    """Mutable counters for storage traffic during an execution.

    Counter updates are guarded by an internal lock so concurrent
    scans (e.g. through :class:`repro.service.QueryService`) never
    lose accounting increments; plain attribute reads stay lock-free
    and may observe a slightly stale value mid-flight. Use
    :meth:`snapshot` for a consistent point-in-time copy.
    """

    requests: int = 0
    bytes_read: int = 0
    partitions_loaded: int = 0
    metadata_lookups: int = 0
    rows_scanned: int = 0
    failed_requests: int = 0
    retries: int = 0
    retry_backoff_ms: float = 0.0
    corrupt_reads: int = 0
    injected_latency_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_saved: int = 0
    loaded_partition_ids: list[int] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_load(self, partition_id: int, nbytes: int) -> None:
        """Atomically account one partition fetch."""
        with self._lock:
            self.requests += 1
            self.bytes_read += nbytes
            self.partitions_loaded += 1
            self.loaded_partition_ids.append(partition_id)

    def record_cache_hit(self, nbytes: int) -> None:
        """Account one data-cache hit: ``nbytes`` never left storage."""
        with self._lock:
            self.cache_hits += 1
            self.cache_bytes_saved += nbytes

    def record_cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def add_metadata_lookups(self, lookups: int) -> None:
        with self._lock:
            self.metadata_lookups += lookups

    def add_rows_scanned(self, rows: int) -> None:
        with self._lock:
            self.rows_scanned += rows

    def record_failed_request(self) -> None:
        with self._lock:
            self.failed_requests += 1

    def record_retry(self, backoff_ms: float) -> None:
        with self._lock:
            self.failed_requests += 1
            self.retries += 1
            self.retry_backoff_ms += backoff_ms

    def record_corrupt_read(self) -> None:
        with self._lock:
            self.corrupt_reads += 1

    def record_injected_latency(self, ms: float) -> None:
        with self._lock:
            self.injected_latency_ms += ms

    def reset(self) -> None:
        with self._lock:
            self.requests = 0
            self.bytes_read = 0
            self.partitions_loaded = 0
            self.metadata_lookups = 0
            self.rows_scanned = 0
            self.failed_requests = 0
            self.retries = 0
            self.retry_backoff_ms = 0.0
            self.corrupt_reads = 0
            self.injected_latency_ms = 0.0
            self.cache_hits = 0
            self.cache_misses = 0
            self.cache_bytes_saved = 0
            self.loaded_partition_ids.clear()

    def snapshot(self) -> "IOStats":
        with self._lock:
            return IOStats(
                requests=self.requests,
                bytes_read=self.bytes_read,
                partitions_loaded=self.partitions_loaded,
                metadata_lookups=self.metadata_lookups,
                rows_scanned=self.rows_scanned,
                failed_requests=self.failed_requests,
                retries=self.retries,
                retry_backoff_ms=self.retry_backoff_ms,
                corrupt_reads=self.corrupt_reads,
                injected_latency_ms=self.injected_latency_ms,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_bytes_saved=self.cache_bytes_saved,
                loaded_partition_ids=list(self.loaded_partition_ids),
            )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted.

        The minuend is taken as one locked :meth:`snapshot`, never as a
        sequence of live field reads: with parallel morsel scans
        mutating the counters concurrently, unlocked field-by-field
        reads produce torn diffs (e.g. ``retries > failed_requests``,
        or ``loaded_partition_ids`` longer than ``partitions_loaded``).
        """
        current = self.snapshot()
        return IOStats(
            requests=current.requests - earlier.requests,
            bytes_read=current.bytes_read - earlier.bytes_read,
            partitions_loaded=current.partitions_loaded
            - earlier.partitions_loaded,
            metadata_lookups=current.metadata_lookups
            - earlier.metadata_lookups,
            rows_scanned=current.rows_scanned - earlier.rows_scanned,
            failed_requests=current.failed_requests
            - earlier.failed_requests,
            retries=current.retries - earlier.retries,
            retry_backoff_ms=current.retry_backoff_ms
            - earlier.retry_backoff_ms,
            corrupt_reads=current.corrupt_reads - earlier.corrupt_reads,
            injected_latency_ms=current.injected_latency_ms
            - earlier.injected_latency_ms,
            cache_hits=current.cache_hits - earlier.cache_hits,
            cache_misses=current.cache_misses - earlier.cache_misses,
            cache_bytes_saved=current.cache_bytes_saved
            - earlier.cache_bytes_saved,
            loaded_partition_ids=current.loaded_partition_ids[
                len(earlier.loaded_partition_ids):],
        )


class StorageLayer:
    """An addressable store of micro-partitions with traffic accounting.

    Every data access goes through :meth:`load`, which records request
    counts and bytes so pruning effectiveness translates into observable
    I/O savings. Metadata access is *not* a data load — it goes through
    the metadata store — mirroring the paper's architecture where the
    metadata service allows pruning "without loading the actual data".
    """

    def __init__(self, cost_model: CostModel | None = None,
                 fault_injector: "FaultInjector | None" = None,
                 retry_policy: "RetryPolicy | None" = None,
                 verify_checksums: bool | None = None):
        self._partitions: dict[int, MicroPartition] = {}
        # Guards _partitions: DML put/delete runs concurrently with
        # parallel scan workers loading (CPython dict ops are atomic,
        # but the put-collision check-then-set below is not).
        self._map_lock = threading.Lock()
        self.cost_model = cost_model or CostModel()
        self.stats = IOStats()
        #: optional :class:`~repro.faults.FaultInjector` consulted on
        #: every load attempt (simulated network faults).
        self.fault_injector = fault_injector
        #: optional :class:`~repro.faults.RetryPolicy` absorbing
        #: transient faults and corrupt reads per load.
        self.retry_policy = retry_policy
        #: verify partition checksums on load. ``None`` = auto:
        #: verify only when a fault injector is attached (verification
        #: costs a full content re-hash per load).
        self.verify_checksums = verify_checksums
        #: optional *real* per-load sleep (milliseconds) emulating
        #: object-storage latency with actual wall time. The simulated
        #: cost model is unaffected; this exists so parallel-scan
        #: benchmarks exhibit genuine I/O overlap (the sleep releases
        #: the GIL). 0 disables it.
        self.io_sleep_ms: float = 0.0

    def put(self, partition: MicroPartition) -> int:
        """Store a partition; returns its id.

        Micro-partitions are immutable and ids are never reused (DML
        rewrites mint fresh ids), so an id collision is always a bug —
        and silently overwriting would let caches serve stale bytes.

        Raises:
            StorageError: a different partition already holds this id.
        """
        with self._map_lock:
            existing = self._partitions.get(partition.partition_id)
            if existing is not None and existing is not partition:
                raise StorageError(
                    f"partition id {partition.partition_id} already "
                    f"exists; micro-partition ids are immutable and "
                    f"never reused")
            self._partitions[partition.partition_id] = partition
        return partition.partition_id

    def put_all(self, partitions: Iterable[MicroPartition]) -> list[int]:
        return [self.put(p) for p in partitions]

    def delete(self, partition_id: int) -> None:
        with self._map_lock:
            if partition_id not in self._partitions:
                raise StorageError(f"no partition with id {partition_id}")
            del self._partitions[partition_id]

    def __contains__(self, partition_id: int) -> bool:
        with self._map_lock:
            return partition_id in self._partitions

    def __len__(self) -> int:
        with self._map_lock:
            return len(self._partitions)

    def _verification_enabled(self) -> bool:
        if self.verify_checksums is not None:
            return self.verify_checksums
        return self.fault_injector is not None

    def _load_attempt(self, partition_id: int,
                      latency_sink: list[float]) -> MicroPartition:
        """One fetch attempt: fault roll, lookup, checksum verify."""
        decision = None
        if self.fault_injector is not None:
            decision = self.fault_injector.storage_check(partition_id)
        with self._map_lock:
            partition = self._partitions.get(partition_id)
        if partition is None:
            raise PartitionUnavailableError(
                f"no partition with id {partition_id}",
                partition_id=partition_id)
        if decision is not None and decision.latency_ms:
            self.stats.record_injected_latency(decision.latency_ms)
            latency_sink[0] += decision.latency_ms
        if self._verification_enabled():
            observed = partition.compute_checksum()
            if decision is not None and decision.corrupt:
                # Simulate a wire-level bit flip in the received bytes.
                observed ^= _CORRUPTION_MASK
            if observed != partition.checksum:
                self.stats.record_corrupt_read()
                raise CorruptionError(
                    f"partition {partition_id} failed checksum "
                    f"verification (expected "
                    f"{partition.checksum:#010x}, got "
                    f"{observed:#010x})", partition_id=partition_id)
        return partition

    def load(self, partition_id: int,
             columns: Sequence[str] | None = None,
             retry_stats: "RetryStats | None" = None,
             retries: bool = True) -> MicroPartition:
        """Fetch a partition, charging one request plus bytes read.

        ``columns`` restricts accounting to the named columns (PAX layout
        allows reading a column subset), but the full partition object is
        returned for simplicity.

        With a fault injector attached, every attempt may fail with a
        typed error; the configured :class:`RetryPolicy` absorbs
        transient faults and corrupt reads with capped, jittered
        backoff (simulated time). ``retry_stats`` additionally
        receives per-query attribution of retries, backoff, and
        injected latency. ``retries=False`` makes the load
        single-attempt regardless of the policy (background prefetch
        uses this so readahead never burns a query's retry budget).

        Raises:
            PartitionUnavailableError: the partition does not exist or
                is permanently unreachable.
            CorruptionError: checksum verification failed after
                exhausting retries.
            StorageTimeout / StorageThrottled: a transient fault
                survived the retry budget.
        """
        latency_sink = [0.0]

        def on_retry(exc: BaseException, delay_ms: float) -> None:
            self.stats.record_retry(delay_ms)
            if retry_stats is not None:
                retry_stats.record_retry(exc, delay_ms)

        try:
            if self.retry_policy is not None and retries:
                partition = self.retry_policy.run(
                    lambda: self._load_attempt(partition_id, latency_sink),
                    on_retry=on_retry)
            else:
                partition = self._load_attempt(partition_id, latency_sink)
        except StorageError:
            self.stats.record_failed_request()
            raise
        if retry_stats is not None and latency_sink[0]:
            retry_stats.add_latency(latency_sink[0])
        if self.io_sleep_ms:
            time.sleep(self.io_sleep_ms / 1000.0)
        nbytes = (partition.project_bytes(columns)
                  if columns is not None else partition.nbytes())
        self.stats.record_load(partition_id, nbytes)
        return partition

    def peek(self, partition_id: int) -> MicroPartition:
        """Access a partition without accounting (testing/admin only)."""
        with self._map_lock:
            partition = self._partitions.get(partition_id)
        if partition is None:
            raise StorageError(f"no partition with id {partition_id}")
        return partition

    def load_cost_ms(self, partition_id: int,
                     columns: Sequence[str] | None = None) -> float:
        """Simulated cost of loading a partition, without loading it."""
        partition = self.peek(partition_id)
        nbytes = (partition.project_bytes(columns)
                  if columns is not None else partition.nbytes())
        return self.cost_model.load_cost(nbytes)
