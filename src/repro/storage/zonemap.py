"""Zone maps / small materialized aggregates (SMAs).

Per micro-partition, the engine keeps lightweight metadata for each
column: minimum, maximum, and null count — exactly the information the
paper's pruning techniques rely on (§2.1). A :class:`ZoneMap` bundles
the per-column stats with the partition row count.

Stats may be *absent* (``ColumnStats.unknown``): Parquet files written
without statistics have no usable metadata until it is backfilled
(§8.1). Absent stats make every pruning question answer "maybe".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import MetadataError
from ..types import DataType
from .column import Column


@dataclass(frozen=True)
class ColumnStats:
    """Min/max/null metadata for one column of one micro-partition.

    ``min_value``/``max_value`` are in internal representation (epoch
    days for DATE) and are ``None`` when the column is all-NULL *or*
    when stats are missing; ``present`` distinguishes the two cases.
    """

    dtype: DataType
    min_value: Any
    max_value: Any
    null_count: int
    row_count: int
    present: bool = True

    @classmethod
    def from_column(cls, column: Column) -> "ColumnStats":
        lo, hi = column.min_max()
        return cls(
            dtype=column.dtype,
            min_value=lo,
            max_value=hi,
            null_count=column.null_count(),
            row_count=len(column),
        )

    @classmethod
    def unknown(cls, dtype: DataType, row_count: int) -> "ColumnStats":
        """Placeholder for missing statistics (no pruning possible)."""
        return cls(
            dtype=dtype,
            min_value=None,
            max_value=None,
            null_count=0,
            row_count=row_count,
            present=False,
        )

    @property
    def has_nulls(self) -> bool:
        return self.null_count > 0

    @property
    def all_null(self) -> bool:
        return self.present and self.null_count == self.row_count

    @property
    def has_values(self) -> bool:
        """Whether the column is known to contain at least one non-NULL."""
        return self.present and self.min_value is not None

    def merge(self, other: "ColumnStats") -> "ColumnStats":
        """Combine stats of two partitions (used for file-level metadata)."""
        if self.dtype != other.dtype:
            raise MetadataError(
                f"cannot merge stats of {self.dtype} with {other.dtype}")
        if not (self.present and other.present):
            return ColumnStats.unknown(
                self.dtype, self.row_count + other.row_count)
        if self.min_value is None:
            lo, hi = other.min_value, other.max_value
        elif other.min_value is None:
            lo, hi = self.min_value, self.max_value
        else:
            lo = min(self.min_value, other.min_value)
            hi = max(self.max_value, other.max_value)
        return ColumnStats(
            dtype=self.dtype,
            min_value=lo,
            max_value=hi,
            null_count=self.null_count + other.null_count,
            row_count=self.row_count + other.row_count,
        )


#: Largest unicode code point, used to round truncated upper bounds up.
_MAX_CODEPOINT = "\U0010ffff"


def truncate_string_stats(stats: ColumnStats,
                          max_length: int) -> ColumnStats:
    """Truncate VARCHAR min/max to bounded length, staying sound.

    Real metadata stores bound the size of string statistics (Parquet
    truncates column-index values, Snowflake clips long strings). The
    minimum may simply be cut — a prefix sorts <= the full string — but
    the maximum must be *rounded up* after cutting so it still bounds
    every value: we increment the last kept character, falling back to
    appending the maximal code point if the prefix is already maximal.
    """
    if stats.dtype != DataType.VARCHAR or not stats.present:
        return stats
    lo, hi = stats.min_value, stats.max_value
    changed = False
    if lo is not None and len(lo) > max_length:
        lo = lo[:max_length]
        changed = True
    if hi is not None and len(hi) > max_length:
        rounded = prefix_successor(hi[:max_length])
        if rounded is None:
            # Every kept character is already the maximal code point:
            # no bounded-length upper bound exists, so keep the full
            # value (what Parquet does when truncation cannot produce
            # a valid bound).
            rounded = hi
        hi = rounded
        changed = True
    if not changed:
        return stats
    return ColumnStats(
        dtype=stats.dtype, min_value=lo, max_value=hi,
        null_count=stats.null_count, row_count=stats.row_count)


def prefix_successor(prefix: str) -> str | None:
    """Smallest convenient string > every string starting with prefix.

    Increments the last non-maximal character and truncates there, so
    strings with the prefix form the half-open interval
    ``[prefix, prefix_successor(prefix))``. Returns None when no such
    bounded string exists (every character is already the maximal code
    point — the interval is ``[prefix, +inf)``). Shared by string-stat
    truncation and prefix pruning (``expr/ranges.py``,
    ``pruning/stats_index.py``), which must agree exactly.
    """
    chars = list(prefix)
    for i in range(len(chars) - 1, -1, -1):
        if chars[i] != _MAX_CODEPOINT:
            chars[i] = chr(ord(chars[i]) + 1)
            return "".join(chars[: i + 1])
    return None


#: backwards-compatible alias (pre-1.10 internal name)
_round_up = prefix_successor


class ZoneMap:
    """Partition-level metadata: row count plus per-column stats."""

    __slots__ = ("row_count", "columns")

    def __init__(self, row_count: int, columns: Mapping[str, ColumnStats]):
        self.row_count = row_count
        self.columns: dict[str, ColumnStats] = dict(columns)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Column]) -> "ZoneMap":
        """Compute a zone map from materialized column data."""
        stats = {name: ColumnStats.from_column(col)
                 for name, col in columns.items()}
        row_count = 0
        for col in columns.values():
            row_count = len(col)
            break
        return cls(row_count, stats)

    def stats(self, name: str) -> ColumnStats:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise MetadataError(f"no stats for column {name!r}") from None

    def has_stats(self, name: str) -> bool:
        stats = self.columns.get(name.lower())
        return stats is not None and stats.present

    def with_truncated_strings(self, max_length: int = 32) -> "ZoneMap":
        """A copy whose VARCHAR stats are length-bounded (still sound)."""
        return ZoneMap(
            self.row_count,
            {name: truncate_string_stats(s, max_length)
             for name, s in self.columns.items()},
        )

    def without_stats(self) -> "ZoneMap":
        """A copy whose column stats are all marked missing.

        Models Parquet files written without statistics (§8.1).
        """
        return ZoneMap(
            self.row_count,
            {
                name: ColumnStats.unknown(s.dtype, s.row_count)
                for name, s in self.columns.items()
            },
        )

    def merge(self, other: "ZoneMap") -> "ZoneMap":
        """Union of two zone maps covering disjoint row sets."""
        if set(self.columns) != set(other.columns):
            raise MetadataError("zone maps cover different column sets")
        merged = {
            name: stats.merge(other.columns[name])
            for name, stats in self.columns.items()
        }
        return ZoneMap(self.row_count + other.row_count, merged)

    def nbytes(self) -> int:
        """Approximate serialized metadata size (for the cost model)."""
        size = 8  # row count
        for name, stats in self.columns.items():
            size += len(name) + 16 + 8  # min + max + null count
        return size

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{n}=[{s.min_value!r}..{s.max_value!r}]"
            for n, s in self.columns.items()
        )
        return f"ZoneMap(rows={self.row_count}, {cols})"
