"""Tables: named collections of micro-partitions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import SchemaError
from ..types import Schema
from .micropartition import MicroPartition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..pruning.stats_index import StatsIndex


class Table:
    """A horizontally partitioned table.

    A table is a name, a schema, and an ordered list of micro-partitions.
    The partition list is append-only from the caller's perspective;
    DML rewrites partitions wholesale (see :class:`repro.catalog.Catalog`).

    Every table carries a monotonically increasing :attr:`version`,
    bumped by the catalog whenever DML or reclustering changes the
    table's contents. Version numbers are the result cache's
    invalidation signal (a cached result is valid only while every
    referenced table still has the version it was computed at) and
    appear in EXPLAIN output.
    """

    def __init__(self, name: str, schema: Schema,
                 partitions: Iterable[MicroPartition] = ()):
        self.name = name.lower()
        self.schema = schema
        self._partitions: list[MicroPartition] = []
        self._version = 1
        self._stats_index: "StatsIndex | None" = None
        for partition in partitions:
            self.add_partition(partition)

    @property
    def version(self) -> int:
        """Monotonic data version; changes whenever contents change."""
        return self._version

    def bump_version(self) -> int:
        """Advance the data version (catalog-internal); returns it."""
        self._version += 1
        return self._version

    def add_partition(self, partition: MicroPartition) -> None:
        if partition.schema != self.schema:
            raise SchemaError(
                f"partition schema {partition.schema} does not match table "
                f"{self.name!r} schema {self.schema}")
        self._partitions.append(partition)
        self._stats_index = None

    def remove_partition(self, partition_id: int) -> MicroPartition:
        for i, partition in enumerate(self._partitions):
            if partition.partition_id == partition_id:
                self._stats_index = None
                return self._partitions.pop(i)
        raise SchemaError(
            f"table {self.name!r} has no partition {partition_id}")

    def replace_partitions(
            self, partitions: Sequence[MicroPartition]) -> None:
        """Swap in a new partition list (used by DML rewrites)."""
        self._partitions = []
        self._stats_index = None
        for partition in partitions:
            self.add_partition(partition)

    def stats_index(self) -> "StatsIndex":
        """SoA zone-map index over the current partition list.

        Cached until the partition list itself changes (metadata
        backfills swap partitions without bumping :attr:`version`, so
        invalidation keys off mutation, not the version counter). Used
        by vectorized DML candidate pruning.
        """
        if self._stats_index is None:
            from ..pruning.stats_index import StatsIndex

            self._stats_index = StatsIndex(
                (p.partition_id, p.zone_map) for p in self._partitions)
        return self._stats_index

    @property
    def partitions(self) -> list[MicroPartition]:
        return list(self._partitions)

    @property
    def partition_ids(self) -> list[int]:
        return [p.partition_id for p in self._partitions]

    def partition(self, partition_id: int) -> MicroPartition:
        for p in self._partitions:
            if p.partition_id == partition_id:
                return p
        raise SchemaError(
            f"table {self.name!r} has no partition {partition_id}")

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self._partitions)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize all rows (testing only; defeats pruning)."""
        rows: list[tuple[Any, ...]] = []
        for partition in self._partitions:
            rows.extend(partition.to_rows())
        return rows

    def __repr__(self) -> str:
        return (f"Table({self.name!r}, partitions={self.num_partitions}, "
                f"rows={self.row_count})")
