"""Physical layout strategies for partition construction.

How data is distributed among micro-partitions determines how much
pruning is possible (§1, §5.3): fully sorted tables give tight,
non-overlapping zone maps; random layouts give wide, overlapping ones.
The paper treats layout as a given; this module lets experiments vary
it explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import SchemaError
from ..types import Schema


@dataclass(frozen=True)
class Layout:
    """A declarative description of a table's physical row order.

    Kinds:
      * ``sorted``    — total order on ``keys``; zone maps barely overlap.
      * ``clustered`` — sorted on ``keys`` then locally shuffled within a
        window of ``jitter`` rows; models imperfect natural clustering
        (e.g. event time with late arrivals).
      * ``random``    — uniform shuffle; worst case for pruning.
    """

    kind: str
    keys: tuple[str, ...] = ()
    jitter: int = 0
    seed: int = 0

    @classmethod
    def sorted_by(cls, *keys: str) -> "Layout":
        return cls(kind="sorted", keys=tuple(k.lower() for k in keys))

    @classmethod
    def clustered_by(cls, *keys: str, jitter: int = 1000,
                     seed: int = 0) -> "Layout":
        return cls(kind="clustered", keys=tuple(k.lower() for k in keys),
                   jitter=jitter, seed=seed)

    @classmethod
    def random(cls, seed: int = 0) -> "Layout":
        return cls(kind="random", seed=seed)

    @classmethod
    def natural(cls) -> "Layout":
        """Keep insertion order (no reordering)."""
        return cls(kind="natural")


def _sort_key(schema: Schema, keys: Sequence[str]):
    indices = [schema.index_of(k) for k in keys]

    def key(row: Sequence[Any]):
        # None (SQL NULL) sorts first; the tuple tag keeps comparisons
        # between None and real values out of Python's type system.
        parts = []
        for i in indices:
            value = row[i]
            parts.append((value is not None, value))
        return tuple(parts)

    return key


def apply_layout(schema: Schema, rows: Sequence[Sequence[Any]],
                 layout: Layout) -> list[Any]:
    """Return rows reordered according to ``layout``."""
    rows = list(rows)
    if layout.kind == "natural":
        return rows
    if layout.kind == "random":
        rng = random.Random(layout.seed)
        rng.shuffle(rows)
        return rows
    if layout.kind in ("sorted", "clustered"):
        if not layout.keys:
            raise SchemaError(f"layout {layout.kind!r} requires keys")
        rows.sort(key=_sort_key(schema, layout.keys))
        if layout.kind == "clustered" and layout.jitter > 0:
            rng = random.Random(layout.seed)
            n = len(rows)
            # Local shuffles: each row may swap with a neighbour within
            # the jitter window, preserving coarse order.
            for i in range(n):
                j = min(n - 1, max(0, i + rng.randint(
                    -layout.jitter, layout.jitter)))
                rows[i], rows[j] = rows[j], rows[i]
        return rows
    raise SchemaError(f"unknown layout kind {layout.kind!r}")


@dataclass
class OverlapReport:
    """Measures how much partition zone maps overlap on one column.

    ``mean_overlap`` is the average, over partitions, of the number of
    *other* partitions whose [min, max] range intersects it. 0 means a
    perfectly sorted layout.
    """

    column: str
    mean_overlap: float
    max_overlap: int
    ranges: list[tuple[Any, Any]] = field(repr=False, default_factory=list)


@dataclass
class ClusteringInfo:
    """Clustering health of one column, à la Snowflake's
    SYSTEM$CLUSTERING_INFORMATION.

    ``average_overlaps`` counts, per partition, how many *other*
    partitions its [min, max] range intersects; ``average_depth`` is
    that count plus one (the partition itself); ``depth_histogram``
    buckets partitions by their depth. 1.0 average depth means a
    perfectly clustered (constant-free, non-overlapping) layout.
    """

    column: str
    partition_count: int
    average_overlaps: float
    average_depth: float
    max_depth: int
    depth_histogram: dict[int, int]

    def __str__(self) -> str:
        buckets = ", ".join(f"depth {d}: {c}"
                            for d, c in sorted(
                                self.depth_histogram.items()))
        return (f"clustering({self.column}): partitions="
                f"{self.partition_count}, avg depth="
                f"{self.average_depth:.2f}, max depth="
                f"{self.max_depth} [{buckets}]")


def clustering_information(partitions: Sequence,
                           column: str) -> ClusteringInfo:
    """Compute overlap-depth statistics for one column's zone maps.

    Degenerate layouts score as *already clustered* rather than as
    candidates for a rewrite: a table whose key column is entirely NULL
    (no usable zone-map ranges) or that has a single partition cannot be
    improved by reordering rows, so both report an average depth of 1.
    An empty table (no partitions at all) reports depth 0.
    """
    report = measure_overlap(partitions, column)
    if not report.ranges and len(partitions) > 0:
        # All-NULL key column: every range was skipped. There is nothing
        # a recluster could tighten, so this is depth 1 by definition.
        return ClusteringInfo(
            column=column,
            partition_count=len(partitions),
            average_overlaps=0.0,
            average_depth=1.0,
            max_depth=1,
            depth_histogram={1: len(partitions)},
        )
    depths = []
    ranges = report.ranges
    for i, (lo_i, hi_i) in enumerate(ranges):
        depth = 1 + sum(
            1 for j, (lo_j, hi_j) in enumerate(ranges)
            if i != j and lo_i <= hi_j and lo_j <= hi_i)
        depths.append(depth)
    histogram: dict[int, int] = {}
    for depth in depths:
        # power-of-two depth buckets, like Snowflake's output
        bucket = 1
        while bucket < depth:
            bucket *= 2
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return ClusteringInfo(
        column=column,
        partition_count=len(ranges),
        average_overlaps=report.mean_overlap,
        average_depth=(sum(depths) / len(depths)) if depths else 0.0,
        max_depth=max(depths) if depths else 0,
        depth_histogram=histogram,
    )


def measure_overlap(partitions: Sequence, column: str) -> OverlapReport:
    """Quantify zone-map overlap on ``column`` across partitions."""
    ranges = []
    for partition in partitions:
        stats = partition.zone_map.stats(column)
        if stats.min_value is not None:
            ranges.append((stats.min_value, stats.max_value))
    if not ranges:
        return OverlapReport(column, 0.0, 0, [])
    overlaps = []
    for i, (lo_i, hi_i) in enumerate(ranges):
        count = sum(
            1 for j, (lo_j, hi_j) in enumerate(ranges)
            if i != j and lo_i <= hi_j and lo_j <= hi_i
        )
        overlaps.append(count)
    return OverlapReport(
        column=column,
        mean_overlap=sum(overlaps) / len(overlaps),
        max_overlap=max(overlaps),
        ranges=ranges,
    )
