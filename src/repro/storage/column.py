"""Null-aware columnar vectors.

A :class:`Column` pairs a numpy value array with a boolean null mask
(``True`` marks NULL). Values under the mask are well-defined dummies
(0, 0.0, "", False) so vectorized kernels never see garbage; SQL
three-valued logic is implemented on top of the masks in
:mod:`repro.expr.eval`.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import TypeMismatchError
from ..types import DataType, date_to_days, days_to_date

_DUMMY = {
    DataType.INTEGER: 0,
    DataType.DOUBLE: 0.0,
    DataType.VARCHAR: "",
    DataType.BOOLEAN: False,
    DataType.DATE: 0,
}


class Column:
    """An immutable, typed vector of SQL values with a null mask."""

    __slots__ = ("dtype", "values", "nulls")

    def __init__(self, dtype: DataType, values: np.ndarray, nulls: np.ndarray):
        if len(values) != len(nulls):
            raise ValueError("values and nulls must have equal length")
        self.dtype = dtype
        self.values = values
        self.nulls = nulls

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pylist(cls, dtype: DataType, items: Sequence[Any]) -> "Column":
        """Build a column from Python scalars; ``None`` becomes NULL.

        DATE columns accept ``datetime.date`` objects or raw epoch-day
        integers.
        """
        n = len(items)
        nulls = np.zeros(n, dtype=np.bool_)
        values = np.empty(n, dtype=dtype.numpy_dtype())
        dummy = _DUMMY[dtype]
        for i, item in enumerate(items):
            if item is None:
                nulls[i] = True
                values[i] = dummy
            else:
                values[i] = cls._coerce(dtype, item)
        return cls(dtype, values, nulls)

    @classmethod
    def from_numpy(cls, dtype: DataType, values: np.ndarray,
                   nulls: np.ndarray | None = None) -> "Column":
        """Wrap an existing numpy array (no copy) as a column."""
        values = np.asarray(values, dtype=dtype.numpy_dtype())
        if nulls is None:
            nulls = np.zeros(len(values), dtype=np.bool_)
        else:
            nulls = np.asarray(nulls, dtype=np.bool_)
        return cls(dtype, values, nulls)

    @classmethod
    def all_null(cls, dtype: DataType, length: int) -> "Column":
        """A column of ``length`` NULLs."""
        values = np.full(length, _DUMMY[dtype], dtype=dtype.numpy_dtype())
        return cls(dtype, values, np.ones(length, dtype=np.bool_))

    @classmethod
    def constant(cls, dtype: DataType, value: Any, length: int) -> "Column":
        """A column repeating one scalar (``None`` yields all NULLs)."""
        if value is None:
            return cls.all_null(dtype, length)
        coerced = cls._coerce(dtype, value)
        values = np.full(length, coerced, dtype=dtype.numpy_dtype())
        return cls(dtype, values, np.zeros(length, dtype=np.bool_))

    @staticmethod
    def _coerce(dtype: DataType, item: Any) -> Any:
        if dtype == DataType.DATE and isinstance(item, datetime.date):
            return date_to_days(item)
        if dtype == DataType.VARCHAR and not isinstance(item, str):
            raise TypeMismatchError(f"expected str for VARCHAR, got {item!r}")
        if dtype == DataType.BOOLEAN and not isinstance(
                item, (bool, np.bool_)):
            raise TypeMismatchError(
                f"expected bool for BOOLEAN, got {item!r}")
        return item

    # ------------------------------------------------------------------
    # Shape operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by integer indices."""
        return Column(self.dtype, self.values[indices], self.nulls[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        return Column(self.dtype, self.values[mask], self.nulls[mask])

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.dtype, self.values[start:stop],
                      self.nulls[start:stop])

    @classmethod
    def concat(cls, columns: Sequence["Column"]) -> "Column":
        """Concatenate columns of the same dtype."""
        if not columns:
            raise ValueError("cannot concatenate zero columns")
        dtype = columns[0].dtype
        if any(c.dtype != dtype for c in columns):
            raise TypeMismatchError("concat requires uniform dtype")
        values = np.concatenate([c.values for c in columns])
        nulls = np.concatenate([c.nulls for c in columns])
        return cls(dtype, values, nulls)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def null_count(self) -> int:
        return int(self.nulls.sum())

    def is_all_null(self) -> bool:
        return bool(self.nulls.all()) if len(self) else False

    def min_max(self) -> tuple[Any, Any]:
        """(min, max) over non-null values, or ``(None, None)`` if none.

        Values are returned in internal representation (epoch days for
        DATE) because zone maps store internal values.
        """
        if len(self) == 0:
            return None, None
        valid = ~self.nulls
        if not valid.any():
            return None, None
        if self.dtype == DataType.VARCHAR:
            present = self.values[valid]
            return min(present), max(present)
        present = self.values[valid]
        lo, hi = present.min(), present.max()
        if self.dtype == DataType.DOUBLE:
            return float(lo), float(hi)
        if self.dtype == DataType.BOOLEAN:
            return bool(lo), bool(hi)
        return int(lo), int(hi)

    def value_at(self, i: int) -> Any:
        """The Python scalar at row ``i`` (``None`` for NULL)."""
        if self.nulls[i]:
            return None
        raw = self.values[i]
        if self.dtype == DataType.DATE:
            return days_to_date(int(raw))
        if self.dtype == DataType.INTEGER:
            return int(raw)
        if self.dtype == DataType.DOUBLE:
            return float(raw)
        if self.dtype == DataType.BOOLEAN:
            return bool(raw)
        return raw

    def to_pylist(self) -> list[Any]:
        """Materialize as Python scalars (``None`` for NULL).

        Bulk path: ``ndarray.tolist()`` converts to Python scalars in
        C, then NULL slots are overwritten (their raw values are
        garbage). DATE converts element-wise because NULL slots may
        hold values ``days_to_date`` would reject.
        """
        n = len(self)
        if n == 0:
            return []
        if self.dtype == DataType.DATE:
            out: list[Any] = [None] * n
            for i in np.flatnonzero(~self.nulls):
                out[int(i)] = days_to_date(int(self.values[i]))
            return out
        out = self.values.tolist()
        if self.nulls.any():
            for i in np.flatnonzero(self.nulls):
                out[int(i)] = None
        return out

    def crc32(self, state: int = 0) -> int:
        """Fold this column's contents into a CRC-32 ``state``.

        Used for per-partition content checksums: VARCHAR columns
        (object arrays) are hashed value-by-value with NUL separators;
        fixed-width columns hash their raw buffer. The null mask is
        always included so NULL vs dummy-value differences are caught.
        """
        import zlib

        if self.dtype == DataType.VARCHAR:
            for value, is_null in zip(self.values, self.nulls):
                if is_null:
                    state = zlib.crc32(b"\xff", state)
                else:
                    # surrogatepass: lone surrogates are legal Python
                    # str contents and must hash, not crash.
                    encoded = value.encode("utf-8", "surrogatepass")
                    # Length prefix keeps value boundaries unambiguous.
                    state = zlib.crc32(
                        len(encoded).to_bytes(4, "little") + encoded,
                        state)
        else:
            state = zlib.crc32(np.ascontiguousarray(
                self.values).tobytes(), state)
        return zlib.crc32(np.ascontiguousarray(
            self.nulls).tobytes(), state)

    def nbytes(self) -> int:
        """Approximate in-memory size, used by the storage cost model."""
        if self.dtype == DataType.VARCHAR:
            payload = sum(
                len(v) for v, is_null in zip(self.values, self.nulls)
                if not is_null
            )
            return payload + len(self)  # + per-row offset overhead
        return int(self.values.nbytes) + int(self.nulls.nbytes)

    def __repr__(self) -> str:
        preview = self.to_pylist()[:6]
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self.dtype.value}>[{len(self)}]({preview}{suffix})"


def column_from_values(items: Iterable[Any],
                       dtype: DataType | None = None) -> Column:
    """Build a column, inferring the dtype from the first non-null item."""
    data = list(items)
    if dtype is None:
        from ..types import infer_type

        first = next((x for x in data if x is not None), None)
        if first is None:
            raise TypeMismatchError(
                "cannot infer dtype of an all-NULL column; pass dtype")
        dtype = infer_type(first)
    return Column.from_pylist(dtype, data)
