"""Micro-partitioned columnar storage with zone-map metadata.

This package is the storage substrate of the reproduction: PAX-style
micro-partitions (:mod:`.micropartition`) made of null-aware columnar
vectors (:mod:`.column`), per-partition min/max metadata
(:mod:`.zonemap`), tables and partition builders (:mod:`.table`,
:mod:`.builder`), physical layout strategies (:mod:`.clustering`), the
metadata key-value service (:mod:`.metadata_store`), and a simulated
cloud object store with I/O accounting (:mod:`.storage_layer`).
"""

from .column import Column
from .zonemap import ColumnStats, ZoneMap
from .micropartition import MicroPartition
from .table import Table
from .builder import TableBuilder
from .clustering import Layout, apply_layout
from .metadata_store import MetadataStore
from .storage_layer import StorageLayer, IOStats, CostModel

__all__ = [
    "Column",
    "ColumnStats",
    "ZoneMap",
    "MicroPartition",
    "Table",
    "TableBuilder",
    "Layout",
    "apply_layout",
    "MetadataStore",
    "StorageLayer",
    "IOStats",
    "CostModel",
]
