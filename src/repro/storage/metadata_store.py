"""The metadata service: a transactional-ish key-value store of zone maps.

Snowflake's cloud services layer keeps partition metadata in a dedicated
scalable KV store so the compiler can prune "without loading the actual
data" (§2). We model it as a versioned in-memory KV store keyed by
``(table, partition_id)``, with lookup accounting so experiments can
charge metadata access in the cost model.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import MetadataError
from .zonemap import ZoneMap


class MetadataStore:
    """Versioned key-value store mapping partitions to zone maps."""

    def __init__(self):
        self._entries: dict[tuple[str, int], ZoneMap] = {}
        self._table_partitions: dict[str, list[int]] = {}
        self.version = 0
        self.lookups = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def register(self, table: str, partition_id: int,
                 zone_map: ZoneMap) -> None:
        """Add or replace metadata for one partition of a table."""
        table = table.lower()
        key = (table, partition_id)
        if key not in self._entries:
            self._table_partitions.setdefault(table, []).append(partition_id)
        self._entries[key] = zone_map
        self.version += 1

    def unregister(self, table: str, partition_id: int) -> None:
        """Remove a partition's metadata (after DELETE/rewrite)."""
        table = table.lower()
        key = (table, partition_id)
        if key not in self._entries:
            raise MetadataError(
                f"no metadata for partition {partition_id} of {table!r}")
        del self._entries[key]
        self._table_partitions[table].remove(partition_id)
        self.version += 1

    def register_table(self, table: str,
                       zone_maps: Iterable[tuple[int, ZoneMap]]) -> None:
        for partition_id, zone_map in zone_maps:
            self.register(table, partition_id, zone_map)

    def drop_table(self, table: str) -> None:
        table = table.lower()
        for partition_id in self._table_partitions.pop(table, []):
            del self._entries[(table, partition_id)]
        self.version += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, table: str, partition_id: int) -> ZoneMap:
        self.lookups += 1
        try:
            return self._entries[(table.lower(), partition_id)]
        except KeyError:
            raise MetadataError(
                f"no metadata for partition {partition_id} of "
                f"{table!r}") from None

    def partitions_of(self, table: str) -> list[int]:
        """All partition ids of a table, in registration order."""
        return list(self._table_partitions.get(table.lower(), []))

    def iter_table(self, table: str) -> Iterator[tuple[int, ZoneMap]]:
        for partition_id in self.partitions_of(table):
            yield partition_id, self.get(table, partition_id)

    def table_row_count(self, table: str) -> int:
        return sum(zm.row_count for _, zm in self.iter_table(table))

    def __len__(self) -> int:
        return len(self._entries)
