"""The metadata service: a transactional-ish key-value store of zone maps.

Snowflake's cloud services layer keeps partition metadata in a dedicated
scalable KV store so the compiler can prune "without loading the actual
data" (§2). We model it as a versioned in-memory KV store keyed by
``(table, partition_id)``, with lookup accounting so experiments can
charge metadata access in the cost model.

Reads can optionally traverse a resilience stack — circuit breaker →
fault injector → retry policy — mirroring how a real compiler talks to
a remote metadata service over a flaky network. Writes stay fault-free:
in the modeled architecture DML commits through a transactional path
with its own guarantees, and the interesting failure surface for
*pruning* is the read side.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..errors import MetadataError, MetadataUnavailableError, TransientError
from .zonemap import ZoneMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.breaker import CircuitBreaker
    from ..faults.injector import FaultInjector
    from ..faults.retry import RetryPolicy, RetryStats
    from ..pruning.sketches import PartitionSketches, SketchIndex
    from ..pruning.stats_index import StatsIndex


class MetadataStore:
    """Versioned key-value store mapping partitions to zone maps.

    Thread safety: all access to ``_entries``/``_table_partitions`` and
    the ``version``/``lookups`` counters is guarded by an internal
    re-entrant lock, so concurrent DML (register/unregister) and
    compile-time reads never observe torn state.
    """

    def __init__(self, fault_injector: "FaultInjector | None" = None,
                 retry_policy: "RetryPolicy | None" = None,
                 breaker: "CircuitBreaker | None" = None):
        self._entries: dict[tuple[str, int], ZoneMap] = {}
        # Dict-backed ordered set: preserves registration order while
        # making unregister O(1) instead of list.remove's O(n).
        self._table_partitions: dict[str, dict[int, None]] = {}
        self.version = 0
        self.lookups = 0
        self._lock = threading.RLock()
        # Vectorized-pruning support: per-table SoA StatsIndex snapshots
        # plus the write deltas accumulated since each snapshot, so
        # stats_index() refreshes copy-on-write instead of rescanning
        # the table (see pruning/stats_index.py).
        self._stats_indexes: dict[str, "StatsIndex"] = {}
        self._stats_dirty: dict[str, dict[int, ZoneMap | None]] = {}
        # Secondary sketches (pruning/sketches.py) registered alongside
        # the zone maps, plus per-table SoA SketchIndex caches. The
        # caches are simply dropped on any sketch write for the table:
        # sketch writes ride DML, which is orders of magnitude rarer
        # than the compile-time reads the cache serves.
        self._sketches: dict[tuple[str, int], "PartitionSketches"] = {}
        self._sketch_indexes: dict[str, "SketchIndex"] = {}
        # Invalidation listeners: called as fn(table, partition_id)
        # after a partition's metadata is removed (unregister /
        # drop_table). Warehouse-local data caches subscribe here so
        # DML/recluster rewrites evict stale entries automatically.
        # Listeners run *outside* the lock to keep lock ordering simple.
        self._invalidation_listeners: list[Callable[[str, int], None]] = []
        #: optional :class:`~repro.faults.FaultInjector` consulted on
        #: every read (simulated metadata-service faults).
        self.fault_injector = fault_injector
        #: optional :class:`~repro.faults.RetryPolicy` absorbing
        #: transient metadata faults per read.
        self.retry_policy = retry_policy
        #: optional :class:`~repro.faults.CircuitBreaker` failing fast
        #: during sustained metadata outages.
        self.breaker = breaker
        #: store-wide retry accounting across all reads.
        self.retry_stats: "RetryStats | None" = None
        if retry_policy is not None:
            from ..faults.retry import RetryStats

            self.retry_stats = RetryStats()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def register(self, table: str, partition_id: int,
                 zone_map: ZoneMap) -> None:
        """Add or replace metadata for one partition of a table."""
        table = table.lower()
        key = (table, partition_id)
        with self._lock:
            if key not in self._entries:
                self._table_partitions.setdefault(
                    table, {})[partition_id] = None
            self._entries[key] = zone_map
            if table in self._stats_indexes:
                self._stats_dirty.setdefault(table, {})[partition_id] = \
                    zone_map
            self.version += 1

    def unregister(self, table: str, partition_id: int) -> None:
        """Remove a partition's metadata (after DELETE/rewrite)."""
        table = table.lower()
        key = (table, partition_id)
        with self._lock:
            if key not in self._entries:
                raise MetadataError(
                    f"no metadata for partition {partition_id} of {table!r}")
            del self._entries[key]
            bucket = self._table_partitions[table]
            del bucket[partition_id]
            if not bucket:
                # Don't leak empty per-table buckets for dropped data.
                del self._table_partitions[table]
            if table in self._stats_indexes:
                self._stats_dirty.setdefault(table, {})[partition_id] = None
            if self._sketches.pop(key, None) is not None:
                self._sketch_indexes.pop(table, None)
            self.version += 1
            listeners = list(self._invalidation_listeners)
        for listener in listeners:
            listener(table, partition_id)

    def register_table(self, table: str,
                       zone_maps: Iterable[tuple[int, ZoneMap]]) -> None:
        for partition_id, zone_map in zone_maps:
            self.register(table, partition_id, zone_map)

    def drop_table(self, table: str) -> None:
        table = table.lower()
        with self._lock:
            removed = list(self._table_partitions.pop(table, {}))
            for partition_id in removed:
                del self._entries[(table, partition_id)]
            self._stats_indexes.pop(table, None)
            self._stats_dirty.pop(table, None)
            for partition_id in removed:
                self._sketches.pop((table, partition_id), None)
            self._sketch_indexes.pop(table, None)
            self.version += 1
            listeners = list(self._invalidation_listeners)
        for listener in listeners:
            for partition_id in removed:
                listener(table, partition_id)

    # ------------------------------------------------------------------
    # Invalidation listeners
    # ------------------------------------------------------------------
    def add_invalidation_listener(
            self, listener: Callable[[str, int], None]) -> None:
        """Subscribe ``fn(table, partition_id)`` to metadata removals."""
        with self._lock:
            self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(
            self, listener: Callable[[str, int], None]) -> None:
        with self._lock:
            try:
                self._invalidation_listeners.remove(listener)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _guarded_read(self, key: object, fn: Callable[[], object],
                      retry_stats: "RetryStats | None"):
        """Run one read through breaker → injector → retry policy.

        The circuit breaker is consulted once per *logical* read (not
        per attempt): while open it fails fast with
        :class:`CircuitOpenError` so a metadata outage doesn't stall
        every query on full retry schedules.
        """
        if self.breaker is not None:
            self.breaker.check()

        def attempt():
            if self.fault_injector is not None:
                decision = self.fault_injector.metadata_check(key)
                if decision.latency_ms:
                    for sink in (retry_stats, self.retry_stats):
                        if sink is not None:
                            sink.add_latency(decision.latency_ms)
            return fn()

        def on_retry(exc: BaseException, delay_ms: float) -> None:
            for sink in (retry_stats, self.retry_stats):
                if sink is not None:
                    sink.record_retry(exc, delay_ms)

        try:
            if self.retry_policy is not None:
                result = self.retry_policy.run(attempt, on_retry=on_retry)
            else:
                result = attempt()
        except (TransientError, MetadataUnavailableError):
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, table: str, partition_id: int,
            retry_stats: "RetryStats | None" = None) -> ZoneMap:
        table = table.lower()

        def read() -> ZoneMap:
            with self._lock:
                self.lookups += 1
                try:
                    return self._entries[(table, partition_id)]
                except KeyError:
                    raise MetadataError(
                        f"no metadata for partition {partition_id} of "
                        f"{table!r}") from None

        return self._guarded_read((table, partition_id), read, retry_stats)

    def partitions_of(self, table: str,
                      retry_stats: "RetryStats | None" = None) -> list[int]:
        """All partition ids of a table, in registration order."""
        table = table.lower()

        def read() -> list[int]:
            with self._lock:
                return list(self._table_partitions.get(table, {}))

        return self._guarded_read(("list", table), read, retry_stats)

    def iter_table(self, table: str) -> Iterator[tuple[int, ZoneMap]]:
        for partition_id in self.partitions_of(table):
            yield partition_id, self.get(table, partition_id)

    def stats_index(self, table: str) -> "StatsIndex":
        """Current SoA :class:`~repro.pruning.StatsIndex` for a table.

        Kept incrementally: the first call snapshots the table; later
        calls apply the register/unregister deltas recorded since,
        copy-on-write, so readers always hold a consistent immutable
        index and steady-state refreshes cost O(changed partitions)
        bookkeeping rather than a metadata rescan. This is an internal
        metadata-service structure, so reads here are not charged as
        lookups and do not traverse the fault stack — per-partition
        consistency with what the *query* actually fetched is enforced
        by the pruner's zone-map identity check instead.
        """
        from ..pruning.stats_index import StatsIndex

        table = table.lower()
        with self._lock:
            index = self._stats_indexes.get(table)
            dirty = self._stats_dirty.pop(table, None)
            if index is None:
                index = StatsIndex(
                    (pid, self._entries[(table, pid)])
                    for pid in self._table_partitions.get(table, {}))
            elif dirty:
                index = index.with_changes(dirty)
            self._stats_indexes[table] = index
            return index

    # ------------------------------------------------------------------
    # Secondary sketches (pruning/sketches.py)
    # ------------------------------------------------------------------
    def register_sketches(self, table: str, partition_id: int,
                          sketches: "PartitionSketches") -> None:
        """Attach secondary sketches to a registered partition."""
        table = table.lower()
        with self._lock:
            if (table, partition_id) not in self._entries:
                raise MetadataError(
                    f"no metadata for partition {partition_id} of "
                    f"{table!r}")
            self._sketches[(table, partition_id)] = sketches
            self._sketch_indexes.pop(table, None)

    def sketches_of(self, table: str,
                    retry_stats: "RetryStats | None" = None
                    ) -> dict[int, "PartitionSketches"]:
        """All registered sketches of a table, keyed by partition id.

        Traverses the fault stack like any other compile-time metadata
        read: an injected outage surfaces here and the caller fails
        open (scans without sketch pruning).
        """
        table = table.lower()

        def read() -> dict[int, "PartitionSketches"]:
            with self._lock:
                self.lookups += 1
                return {pid: sketches
                        for (tbl, pid), sketches in self._sketches.items()
                        if tbl == table}

        return self._guarded_read(("sketches", table), read, retry_stats)

    def sketch_index(self, table: str,
                     ngram_size: int = 3) -> "SketchIndex":
        """Cached SoA :class:`~repro.pruning.SketchIndex` for a table.

        Like :meth:`stats_index` this is an internal metadata-service
        structure: reads are not charged as lookups and skip the fault
        stack. Partition ids are never reused, so a cached row can
        never describe different data than the scalar sketch it was
        packed from — the pruner's covered-row check handles the rest.
        """
        from ..pruning.sketches import SketchIndex

        table = table.lower()
        with self._lock:
            index = self._sketch_indexes.get(table)
            if index is None or index.ngram_size != ngram_size:
                index = SketchIndex(
                    ((pid, sketches)
                     for (tbl, pid), sketches in self._sketches.items()
                     if tbl == table),
                    ngram_size=ngram_size)
                self._sketch_indexes[table] = index
            return index

    def table_row_count(self, table: str) -> int:
        return sum(zm.row_count for _, zm in self.iter_table(table))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
