"""Building tables out of row streams.

:class:`TableBuilder` chunks incoming rows into micro-partitions of a
target size, optionally applying a physical :class:`~.clustering.Layout`
first. Snowflake micro-partitions hold 50–500 MB of uncompressed data;
at laptop scale we size partitions by row count instead, which preserves
all pruning behaviour.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import SchemaError
from ..types import Schema
from .clustering import Layout, apply_layout
from .micropartition import MicroPartition
from .table import Table

DEFAULT_ROWS_PER_PARTITION = 1000


class TableBuilder:
    """Accumulates rows and flushes them into micro-partitions."""

    def __init__(self, name: str, schema: Schema,
                 rows_per_partition: int = DEFAULT_ROWS_PER_PARTITION,
                 verify_checksums: bool = False):
        if rows_per_partition <= 0:
            raise SchemaError("rows_per_partition must be positive")
        self.name = name
        self.schema = schema
        self.rows_per_partition = rows_per_partition
        #: re-verify each partition's content checksum right after
        #: building it (write-path integrity check; off by default
        #: because construction just computed the same checksum).
        self.verify_checksums = verify_checksums
        self._pending: list[Sequence[Any]] = []
        self._partitions: list[MicroPartition] = []

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.schema)}")
        self._pending.append(row)
        if len(self._pending) >= self.rows_per_partition:
            self._flush()

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def _flush(self) -> None:
        if not self._pending:
            return
        partition = MicroPartition.from_rows(self.schema, self._pending)
        if self.verify_checksums:
            partition.verify_integrity()
        self._partitions.append(partition)
        self._pending = []

    def finish(self) -> Table:
        """Flush any tail rows and return the finished table."""
        self._flush()
        table = Table(self.name, self.schema, self._partitions)
        self._partitions = []
        return table


def build_table(name: str, schema: Schema, rows: Sequence[Sequence[Any]],
                rows_per_partition: int = DEFAULT_ROWS_PER_PARTITION,
                layout: Layout | None = None) -> Table:
    """One-shot table construction with an optional physical layout."""
    if layout is not None:
        rows = apply_layout(schema, rows, layout)
    builder = TableBuilder(name, schema, rows_per_partition)
    builder.add_rows(rows)
    return builder.finish()
