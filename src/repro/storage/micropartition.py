"""Micro-partitions: immutable PAX-style horizontal chunks of a table.

Each micro-partition stores its rows column-wise and carries a
:class:`~repro.storage.zonemap.ZoneMap` computed at write time. Data is
never mutated in place — matching Snowflake's immutable micro-partition
design, where DML rewrites whole partitions (§2).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import CorruptionError, SchemaError
from ..types import DataType, Schema
from .column import Column
from .zonemap import ZoneMap


class _IdGenerator:
    """Monotonic partition-id source with a raisable floor.

    Loading a persisted catalog must not hand out ids that collide
    with already-stored partitions, so deserialization raises the
    floor past the largest loaded id.
    """

    def __init__(self) -> None:
        self._next = 1

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def ensure_floor(self, floor: int) -> None:
        self._next = max(self._next, floor + 1)


partition_id_generator = _IdGenerator()


class MicroPartition:
    """An immutable columnar chunk with zone-map metadata."""

    __slots__ = ("partition_id", "schema", "_columns", "zone_map",
                 "checksum")

    def __init__(self, schema: Schema, columns: Mapping[str, Column],
                 partition_id: int | None = None,
                 zone_map: ZoneMap | None = None,
                 checksum: int | None = None):
        normalized = {name.lower(): col for name, col in columns.items()}
        if set(normalized) != set(schema.names()):
            raise SchemaError(
                f"columns {sorted(normalized)} do not match schema "
                f"{schema.names()}")
        lengths = {len(col) for col in normalized.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged column lengths: {sorted(lengths)}")
        for field in schema:
            if normalized[field.name].dtype != field.dtype:
                raise SchemaError(
                    f"column {field.name!r} has dtype "
                    f"{normalized[field.name].dtype}, schema says "
                    f"{field.dtype}")
        self.partition_id = (
            partition_id if partition_id is not None
            else partition_id_generator())
        self.schema = schema
        self._columns = normalized
        self.zone_map = zone_map or ZoneMap.from_columns(normalized)
        # Content checksum computed at build (write) time; the storage
        # layer re-verifies it on load to surface corrupt reads.
        self.checksum = (checksum if checksum is not None
                         else self.compute_checksum())

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[Any]],
                  partition_id: int | None = None) -> "MicroPartition":
        """Build a partition from row tuples in schema order."""
        transposed = zip(*rows) if rows \
            else [()] * len(schema.fields)
        columns = {}
        for field, values in zip(schema, transposed):
            columns[field.name] = Column.from_pylist(
                field.dtype, list(values))
        return cls(schema, columns, partition_id=partition_id)

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self.zone_map.row_count

    def column(self, name: str) -> Column:
        try:
            return self._columns[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r} in partition "
                f"{self.partition_id}") from None

    def columns(self) -> dict[str, Column]:
        """All columns keyed by name (shallow copy)."""
        return dict(self._columns)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python row tuples in schema order."""
        cols = [self._columns[f.name].to_pylist() for f in self.schema]
        return list(zip(*cols)) if cols else []

    def nbytes(self) -> int:
        """Approximate uncompressed size, used for I/O accounting."""
        return sum(col.nbytes() for col in self._columns.values())

    def project_bytes(self, names: Sequence[str]) -> int:
        """Size of just the named columns (PAX enables column-level reads)."""
        return sum(self.column(n).nbytes() for n in names)

    def compute_checksum(self) -> int:
        """CRC-32 over every column's values and null masks.

        Column order follows the schema, so logically equal partitions
        checksum identically regardless of construction order.
        """
        state = 0
        for field in self.schema:
            state = self._columns[field.name].crc32(state)
        return state

    def verify_integrity(self) -> None:
        """Recompute the checksum and compare against the stored one.

        Raises:
            CorruptionError: when the content no longer matches the
                checksum computed at build time.
        """
        actual = self.compute_checksum()
        if actual != self.checksum:
            raise CorruptionError(
                f"partition {self.partition_id} failed checksum "
                f"verification (expected {self.checksum:#010x}, "
                f"got {actual:#010x})",
                partition_id=self.partition_id)

    def with_zone_map(self, zone_map: ZoneMap) -> "MicroPartition":
        """A view of this partition carrying different metadata.

        Used to simulate files that were written without statistics.
        """
        return MicroPartition(self.schema, self._columns,
                              partition_id=self.partition_id,
                              zone_map=zone_map,
                              checksum=self.checksum)

    def recompute_zone_map(self) -> ZoneMap:
        """Scan the data and rebuild complete metadata (backfill, §8.1)."""
        return ZoneMap.from_columns(self._columns)

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return (f"MicroPartition(id={self.partition_id}, "
                f"rows={self.row_count}, cols={self.schema.names()})")
