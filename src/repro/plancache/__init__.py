"""Plan-shape compiled-plan cache: compile once, serve millions (§7).

See :mod:`.parameterize` for shape keys and literal rebinding,
:mod:`.plan_cache` for the bounded template cache, and
:mod:`.schema_prune` for compile-time schema pruning.
"""

from .parameterize import (
    BindMismatchError,
    Param,
    ParameterizedQuery,
    UnparameterizableError,
    bind_plan,
    build_template,
    binds_match,
    parameterize_text,
    validate_binds,
)
from .plan_cache import CachedPlan, PlanCache, PlanCacheStats, StalePlanError
from .schema_prune import make_pruned_resolver, referenced_columns

__all__ = [
    "BindMismatchError",
    "CachedPlan",
    "Param",
    "ParameterizedQuery",
    "PlanCache",
    "PlanCacheStats",
    "StalePlanError",
    "UnparameterizableError",
    "bind_plan",
    "binds_match",
    "build_template",
    "make_pruned_resolver",
    "parameterize_text",
    "referenced_columns",
    "validate_binds",
]
