"""Query parameterization: plan-shape keys, bind tuples, and templates.

The fleet study (Figure 12, §7) shows query *shapes* repeat massively
while literals churn. This module separates the two:

* :func:`parameterize_text` works on the raw token stream — no parsing —
  and produces a canonical *shape key* plus the ordered tuple of literal
  *binds* that were masked out of it. Two spellings of the same literal
  (``1.0`` vs ``1.00``) collapse to one key; int-like and float-like
  numbers stay distinct (``x + 1`` and ``x + 1.0`` type differently).
* :func:`build_template` walks a parsed statement and replaces each
  literal with a typed :class:`Param` slot, yielding a reusable
  *template* whose logical plan can be cached.
* :func:`bind_plan` substitutes a fresh bind tuple back into a cached
  logical-plan template — O(plan) work that replaces the whole
  parse/bind/plan pipeline on a cache hit.

Safety: template extraction walks the AST in source order, and the
binds it collects must equal the token-derived binds exactly (same
values *and* Python types). Statements where the two disagree — e.g.
``x + 1 BETWEEN 2 AND 3``, whose desugaring duplicates the left
operand — are reported via :exc:`UnparameterizableError` and the caller
falls back to cold compilation, so the cache can never serve a plan
whose slots misalign with the token stream.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import ParseError, PlanError, ReproError
from ..expr import ast
from ..plan import logical as L
from ..sql.lexer import tokenize
from ..sql.parser import AggCall, OrderItem, SelectItem, SelectStmt
from ..types import DataType, infer_type

__all__ = [
    "BindMismatchError",
    "Param",
    "ParameterizedQuery",
    "UnparameterizableError",
    "bind_plan",
    "build_template",
    "parameterize_text",
]


class UnparameterizableError(ReproError):
    """The statement cannot be safely parameterized; compile it cold."""


class BindMismatchError(ReproError):
    """A bind tuple does not fit a cached template's slots."""


#: Mask characters for the shape key, by literal category. Int-like and
#: float-like numbers get distinct masks because they bind to different
#: SQL types (INTEGER vs DOUBLE) and therefore different plans.
_MASK_INT = "?i"
_MASK_FLOAT = "?f"
_MASK_STRING = "?s"
_MASK_DATE = "?d"

#: NUMBER tokens directly after these keywords stay in the shape:
#: LIMIT/OFFSET values are plan-structural (they parameterize the
#: top-k pruning pass at compile time), not row literals.
_STRUCTURAL_KEYWORDS = ("LIMIT", "OFFSET")


@dataclass(frozen=True)
class ParameterizedQuery:
    """Token-level decomposition of one SQL statement."""

    #: canonical shape key: lowercased tokens with literals masked.
    shape_key: str
    #: literal values in token order (ints/floats/strings/dates).
    binds: tuple
    #: ``False`` for DELETE/UPDATE statements (never plan-cached).
    is_select: bool

    @property
    def cache_key(self) -> tuple:
        """Hashable composite key: shape + bound literals."""
        return (self.shape_key, self.binds)


def _bind_number(text: str) -> int | float:
    """Mirror the parser's literal conversion exactly."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def parameterize_text(text: str) -> ParameterizedQuery:
    """Shape key + bind tuple from the raw token stream (no parse).

    Raises:
        ParseError: on lexical errors or a malformed DATE literal —
            the same failures cold compilation would surface.
    """
    tokens = tokenize(text)
    first = tokens[0]
    is_select = not (first.kind == "IDENT"
                     and first.upper in ("DELETE", "UPDATE"))
    parts: list[str] = []
    binds: list = []
    prev_upper = ""
    for token in tokens:
        if token.kind == "EOF":
            break
        if token.kind == "NUMBER":
            if prev_upper in _STRUCTURAL_KEYWORDS:
                parts.append(token.value)
            elif any(c in token.value for c in ".eE"):
                parts.append(_MASK_FLOAT)
                binds.append(_bind_number(token.value))
            else:
                parts.append(_MASK_INT)
                binds.append(_bind_number(token.value))
        elif token.kind == "STRING":
            if prev_upper == "DATE":
                try:
                    value = datetime.date.fromisoformat(token.value)
                except ValueError as exc:
                    raise ParseError(f"invalid date literal: {exc}",
                                     position=token.pos) from None
                parts.append(_MASK_DATE)
                binds.append(value)
            else:
                parts.append(_MASK_STRING)
                binds.append(token.value)
        elif token.kind == "IDENT":
            parts.append(token.value.lower())
        else:
            parts.append(token.value)
        prev_upper = token.upper if token.kind == "IDENT" else ""
    while parts and parts[-1] == ";":
        parts.pop()
    return ParameterizedQuery(" ".join(parts), tuple(binds), is_select)


# ----------------------------------------------------------------------
# Template nodes
# ----------------------------------------------------------------------
class Param(ast.Expr):
    """A typed placeholder for a bound literal in a plan template."""

    _child_slots: tuple[str, ...] = ()

    def __init__(self, slot: int, dtype: DataType):
        self.slot = slot
        self._dtype = dtype

    def with_children(self, children: Sequence[ast.Expr]) -> "Param":
        return self

    def dtype(self, schema) -> DataType:
        return self._dtype

    def to_sql(self) -> str:
        return f"?{self.slot}"

    def shape(self) -> str:
        return f"param:{self._dtype.value}"

    def _key(self) -> tuple:
        return ("Param", self.slot, self._dtype)


class _TemplateLike(ast.Expr):
    """LIKE whose pattern (non-child state) lives in a bind slot."""

    _child_slots = ("child",)

    def __init__(self, child: ast.Expr, slot: int):
        self.child = child
        self.slot = slot

    def with_children(self, children: Sequence[ast.Expr]) -> "_TemplateLike":
        return _TemplateLike(children[0], self.slot)

    def dtype(self, schema) -> DataType:
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        return f"({self.child.to_sql()} LIKE ?{self.slot})"

    def shape(self) -> str:
        return f"({self.child.shape()} LIKE ?)"

    def _key(self) -> tuple:
        return ("_TemplateLike", self.child, self.slot)


class _TemplateStringPredicate(ast.Expr):
    """startswith/endswith/contains whose needle lives in a bind slot."""

    _child_slots = ("child",)

    def __init__(self, cls: type, child: ast.Expr, slot: int):
        self.cls = cls
        self.child = child
        self.slot = slot

    def with_children(
            self, children: Sequence[ast.Expr]) -> "_TemplateStringPredicate":
        return _TemplateStringPredicate(self.cls, children[0], self.slot)

    def dtype(self, schema) -> DataType:
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        return f"{self.cls.__name__.lower()}({self.child.to_sql()}, ?{self.slot})"

    def shape(self) -> str:
        return f"{self.cls.__name__.lower()}({self.child.shape()}, ?)"

    def _key(self) -> tuple:
        return ("_TemplateStringPredicate", self.cls, self.child, self.slot)


class _TemplateInList(ast.Expr):
    """IN list mixing fixed values (NULL/booleans) and bind slots.

    ``parts`` is a tuple of ``("value", v)`` / ``("slot", i)`` pairs in
    source order, so substitution reconstructs the original value order.
    """

    _child_slots = ("child",)

    def __init__(self, child: ast.Expr, parts: tuple):
        self.child = child
        self.parts = parts

    def with_children(self, children: Sequence[ast.Expr]) -> "_TemplateInList":
        return _TemplateInList(children[0], self.parts)

    def dtype(self, schema) -> DataType:
        return DataType.BOOLEAN

    def to_sql(self) -> str:
        inner = ", ".join(
            f"?{payload}" if kind == "slot" else repr(payload)
            for kind, payload in self.parts)
        return f"({self.child.to_sql()} IN ({inner}))"

    def shape(self) -> str:
        return f"({self.child.shape()} IN [*{len(self.parts)}])"

    def _key(self) -> tuple:
        return ("_TemplateInList", self.child, self.parts)


# ----------------------------------------------------------------------
# Template extraction
# ----------------------------------------------------------------------
def build_template(
        stmt: SelectStmt) -> tuple[SelectStmt, tuple[DataType, ...], list]:
    """Replace literals in a parsed statement with :class:`Param` slots.

    Returns ``(template_stmt, slot_dtypes, ast_binds)`` where
    ``ast_binds`` lists the replaced literal values in slot order. The
    caller must verify ``ast_binds`` equals the token-derived binds
    (see :func:`binds_match`) before caching the template: slot order
    is defined by AST pre-order traversal, which matches token order
    for every shape the grammar produces except desugarings that
    duplicate sub-expressions (e.g. a computed BETWEEN operand).
    """
    slots: list[DataType] = []
    ast_binds: list = []

    def alloc(value) -> int:
        slots.append(infer_type(value))
        ast_binds.append(value)
        return len(slots) - 1

    def rewrite(expr: ast.Expr | None) -> ast.Expr | None:
        if expr is None:
            return None
        if isinstance(expr, AggCall):
            return AggCall(expr.func, rewrite(expr.arg))
        if isinstance(expr, ast.Literal):
            value = expr.value
            if value is None or isinstance(value, bool):
                return expr  # stays in the shape; never masked
            return Param(alloc(value), infer_type(value))
        if isinstance(expr, ast.Like):
            child = rewrite(expr.child)
            return _TemplateLike(child, alloc(expr.pattern))
        if isinstance(expr, (ast.StartsWith, ast.EndsWith, ast.Contains)):
            child = rewrite(expr.child)
            return _TemplateStringPredicate(
                type(expr), child, alloc(expr.needle))
        if isinstance(expr, ast.InList):
            child = rewrite(expr.child)
            parts = tuple(
                ("value", v) if v is None or isinstance(v, bool)
                else ("slot", alloc(v))
                for v in expr.values)
            return _TemplateInList(child, parts)
        children = [rewrite(c) for c in expr.children()]
        return expr.with_children(children)

    items = [replace(item, expr=rewrite(item.expr),
                     agg_arg=rewrite(item.agg_arg))
             for item in stmt.items]
    where = rewrite(stmt.where)
    having = rewrite(stmt.having)
    order_by = [replace(o, expr=rewrite(o.expr), agg_arg=rewrite(o.agg_arg))
                for o in stmt.order_by]
    template = replace(stmt, items=items, where=where, having=having,
                       order_by=order_by)
    return template, tuple(slots), ast_binds


def binds_match(ast_binds: Sequence, token_binds: Sequence) -> bool:
    """True iff both bind sequences agree in length, type, and value."""
    if len(ast_binds) != len(token_binds):
        return False
    for a, b in zip(ast_binds, token_binds):
        if type(a) is not type(b) or a != b:
            return False
    return True


# ----------------------------------------------------------------------
# Rebinding
# ----------------------------------------------------------------------
def validate_binds(binds: Sequence,
                   slots: Sequence[DataType]) -> None:
    """Type-check a bind tuple against a template's slots (fail closed).

    Raises:
        BindMismatchError: on arity or type disagreement; callers fall
            back to a cold compile rather than serving a mistyped plan.
    """
    if len(binds) != len(slots):
        raise BindMismatchError(
            f"expected {len(slots)} binds, got {len(binds)}")
    for i, (value, dtype) in enumerate(zip(binds, slots)):
        if infer_type(value) is not dtype:
            raise BindMismatchError(
                f"bind {i} has type {infer_type(value).value}, "
                f"slot expects {dtype.value}")


def _bind_expr(expr: ast.Expr | None, binds: Sequence) -> ast.Expr | None:
    if expr is None:
        return None
    if isinstance(expr, Param):
        return ast.Literal(binds[expr.slot])
    if isinstance(expr, _TemplateLike):
        return ast.Like(_bind_expr(expr.child, binds), binds[expr.slot])
    if isinstance(expr, _TemplateStringPredicate):
        return expr.cls(_bind_expr(expr.child, binds), binds[expr.slot])
    if isinstance(expr, _TemplateInList):
        values = [binds[payload] if kind == "slot" else payload
                  for kind, payload in expr.parts]
        return ast.InList(_bind_expr(expr.child, binds), values)
    children = [_bind_expr(c, binds) for c in expr.children()]
    return expr.with_children(children)


def bind_plan(plan: L.LogicalNode, binds: Sequence,
              slots: Sequence[DataType]) -> L.LogicalNode:
    """Substitute binds into a cached logical-plan template.

    Produces a fresh plan tree (templates are shared across threads and
    never mutated). Only literal positions change; scan sets, pruning,
    and predicate-cache interaction are all re-derived at compile time
    from the substituted plan, so a rebind can never reuse stale
    data-dependent artifacts.
    """
    validate_binds(binds, slots)
    return _bind_node(plan, binds)


def _bind_node(node: L.LogicalNode, binds: Sequence) -> L.LogicalNode:
    if isinstance(node, L.LogicalScan):
        return L.LogicalScan(node.table, _bind_expr(node.predicate, binds))
    if isinstance(node, L.LogicalFilter):
        return L.LogicalFilter(_bind_node(node.child, binds),
                               _bind_expr(node.predicate, binds))
    if isinstance(node, L.LogicalProject):
        return L.LogicalProject(
            _bind_node(node.child, binds),
            [_bind_expr(e, binds) for e in node.exprs],
            node.names)
    if isinstance(node, L.LogicalJoin):
        return L.LogicalJoin(_bind_node(node.left, binds),
                             _bind_node(node.right, binds),
                             node.left_key, node.right_key,
                             node.join_type)
    if isinstance(node, L.LogicalAggregate):
        return L.LogicalAggregate(_bind_node(node.child, binds),
                                  node.group_keys, node.aggs)
    if isinstance(node, L.LogicalSort):
        return L.LogicalSort(_bind_node(node.child, binds), node.keys)
    if isinstance(node, L.LogicalLimit):
        return L.LogicalLimit(_bind_node(node.child, binds),
                              node.k, node.offset)
    raise PlanError(f"cannot rebind logical node {type(node).__name__}")
