"""A bounded, thread-safe cache of compiled logical-plan templates.

Entries are keyed by the token-level *shape key* (see
:mod:`.parameterize`) and validated against a per-table schema
fingerprint at every lookup, so a hit can only rebind a template whose
referenced schemas are bit-identical to the current catalog. Everything
data-dependent — scan sets, pruning decisions, predicate-cache reuse —
is re-derived per execution from the rebound plan, which makes stale
scan sets structurally impossible: the cache stores *how to plan the
shape*, never *what the data looked like*.

Invalidation has three layers, cheapest first:

1. **Schema fingerprints** (fail closed): on lookup, each referenced
   table's current schema is compared structurally against the schema
   the template was planned under. Any difference — including a table
   that was dropped and recreated with a new layout — evicts the entry
   and falls back to a cold compile.
2. **MetadataStore invalidation listeners**: partition removals whose
   table no longer exists in the catalog (``DROP TABLE``) evict every
   entry referencing the table proactively.
3. **Catalog version counters**: DML/recluster version bumps are
   observed and counted (``version_bumps``), documenting that data
   changed under cached shapes; templates stay valid because rebinding
   recompiles against the live ``StatsIndex``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..errors import ReproError
from ..plan import logical as L
from ..types import DataType, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..catalog import Catalog

__all__ = ["CachedPlan", "PlanCache", "PlanCacheStats", "StalePlanError"]


class StalePlanError(ReproError):
    """A cached template no longer matches the live catalog schemas."""


@dataclass
class PlanCacheStats:
    """Counters describing plan-cache behavior since creation."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    stale_schema_evictions: int = 0
    capacity_evictions: int = 0
    invalidations: int = 0
    uncacheable: int = 0
    rebind_fallbacks: int = 0
    version_bumps: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "lookups": self.lookups, "hits": self.hits,
            "misses": self.misses, "stores": self.stores,
            "stale_schema_evictions": self.stale_schema_evictions,
            "capacity_evictions": self.capacity_evictions,
            "invalidations": self.invalidations,
            "uncacheable": self.uncacheable,
            "rebind_fallbacks": self.rebind_fallbacks,
            "version_bumps": self.version_bumps,
            "hit_ratio": self.hit_ratio,
        }


@dataclass
class CachedPlan:
    """One plan-shape template plus everything needed to validate it."""

    shape_key: str
    #: logical plan planned from the Param-ified statement.
    template: L.LogicalNode
    #: bind-slot types, in slot order.
    slots: tuple[DataType, ...]
    #: lowercased referenced table names.
    tables: tuple[str, ...]
    #: schema each table had when the template was planned.
    schemas: dict[str, Schema] = field(default_factory=dict)
    #: columns the planner considered at bind time (pruned width).
    bind_width: int = 0
    hits: int = 0


class PlanCache:
    """Thread-safe bounded LRU of :class:`CachedPlan` templates."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._uncacheable: set[str] = set()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, catalog: "Catalog") -> None:
        """Subscribe to the catalog's invalidation surfaces."""
        def on_metadata_invalidation(table: str, partition_id: int) -> None:
            # Partition metadata vanished. If the table itself is gone
            # (DROP TABLE), its templates can never rebind again —
            # evict them now rather than waiting for a stale lookup.
            if table not in catalog.tables:
                self.invalidate_table(table)

        def on_version_bump(table: str, version: int) -> None:
            with self._lock:
                self.stats.version_bumps += 1

        catalog.metadata.add_invalidation_listener(on_metadata_invalidation)
        catalog.add_change_listener(on_version_bump)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, shape_key: str) -> CachedPlan | None:
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(shape_key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(shape_key)
            self.stats.hits += 1
            entry.hits += 1
            return entry

    def peek(self, shape_key: str) -> CachedPlan | None:
        """The cached entry for a shape (or None), without touching
        LRU order or stats — for EXPLAIN and introspection."""
        with self._lock:
            return self._entries.get(shape_key)

    def validate(self, entry: CachedPlan,
                 resolver: Callable[[str], Schema]) -> None:
        """Fail-closed schema check; evicts and raises on any drift.

        Raises:
            StalePlanError: a referenced table was dropped or its
                schema changed since the template was planned.
        """
        for table in entry.tables:
            try:
                current = resolver(table)
            except Exception as exc:
                self._evict_stale(entry.shape_key)
                raise StalePlanError(
                    f"table {table!r} unavailable: {exc}") from exc
            if current != entry.schemas.get(table):
                self._evict_stale(entry.shape_key)
                raise StalePlanError(
                    f"schema of {table!r} changed since plan was cached")

    def store(self, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[entry.shape_key] = entry
            self._entries.move_to_end(entry.shape_key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.capacity_evictions += 1

    # ------------------------------------------------------------------
    # Negative cache
    # ------------------------------------------------------------------
    def mark_uncacheable(self, shape_key: str) -> None:
        """Remember that a shape failed template extraction."""
        with self._lock:
            if len(self._uncacheable) >= self.max_entries:
                self._uncacheable.clear()
            self._uncacheable.add(shape_key)
            self.stats.uncacheable += 1

    def is_uncacheable(self, shape_key: str) -> bool:
        with self._lock:
            return shape_key in self._uncacheable

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_table(self, table: str) -> int:
        """Evict every template referencing ``table``; returns count."""
        table = table.lower()
        with self._lock:
            doomed = [key for key, entry in self._entries.items()
                      if table in entry.tables]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def record_fallback(self) -> None:
        """A hit could not be rebound; the query recompiled cold."""
        with self._lock:
            self.stats.rebind_fallbacks += 1

    def _evict_stale(self, shape_key: str) -> None:
        with self._lock:
            if self._entries.pop(shape_key, None) is not None:
                self.stats.stale_schema_evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._uncacheable.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
