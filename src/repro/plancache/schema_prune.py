"""Compile-time schema pruning: bind against columns touched, not defined.

Wide production tables make binding cost scale with schema width even
when a query touches three columns (the sql-glider measurement this PR
reproduces: restricting compile-time work to referenced tables/columns
cut compile latency by orders of magnitude). This module computes the
set of column names a parsed statement can possibly reference and
builds a schema resolver that exposes only those columns to the
planner.

Correctness constraints (all verified by the differential tests):

* the pruned view preserves field order, so star-free projections and
  ambiguity checks behave identically to the full schema;
* every column referenced *anywhere* in the statement (select list,
  WHERE, GROUP BY, HAVING, ORDER BY, JOIN keys; qualified ``t.x``
  contributes the bare ``x``) stays visible in every table that defines
  it, so the planner's unknown/ambiguous-column errors are unchanged;
* ``SELECT *`` disables pruning (the star expansion needs the width);
* a table none of whose columns are referenced keeps its first column,
  matching the compiler's minimal-scan fallback.

The planner only ever sees the pruned view during template planning;
physical compilation keeps the catalog's full resolver, so execution
reads exactly the columns it would have read cold.
"""

from __future__ import annotations

from typing import Callable

from ..expr import ast
from ..sql.parser import AggCall, SelectStmt
from ..types import Schema

__all__ = ["make_pruned_resolver", "referenced_columns"]

SchemaResolver = Callable[[str], Schema]


def _expr_columns(expr: ast.Expr | None, out: set[str]) -> None:
    if expr is None:
        return
    stack: list[ast.Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, AggCall):
            if node.arg is not None:
                stack.append(node.arg)
            continue
        if isinstance(node, ast.ColumnRef):
            out.add(node.name.split(".")[-1])
        stack.extend(node.children())


def referenced_columns(stmt: SelectStmt) -> set[str] | None:
    """Bare column names the statement can reference; None for ``*``."""
    if stmt.star:
        return None
    cols: set[str] = set()
    for item in stmt.items:
        _expr_columns(item.expr, cols)
        _expr_columns(item.agg_arg, cols)
    _expr_columns(stmt.where, cols)
    _expr_columns(stmt.having, cols)
    for text in stmt.group_by:
        cols.add(text.split(".")[-1])
    for order in stmt.order_by:
        _expr_columns(order.expr, cols)
        _expr_columns(order.agg_arg, cols)
    for join in stmt.joins:
        cols.add(join.left_ref.split(".")[-1])
        cols.add(join.right_ref.split(".")[-1])
    return {c.lower() for c in cols}


def make_pruned_resolver(
        stmt: SelectStmt, base: SchemaResolver,
        tables: list[str]) -> tuple[SchemaResolver, int]:
    """Schema resolver restricted to the statement's referenced columns.

    Returns ``(resolver, width)`` where ``width`` is the total number
    of columns the planner will consider across the statement's tables
    — the quantity the simulated binding cost scales with. Unknown
    tables fall through to ``base`` so error behavior matches cold
    compilation exactly.
    """
    cols = referenced_columns(stmt)
    schemas: dict[str, Schema] = {}
    for name in tables:
        schema = base(name)
        if cols is None:
            schemas[name.lower()] = schema
            continue
        keep = [f.name for f in schema.fields if f.name in cols]
        if not keep:
            # Nothing referenced (e.g. COUNT(*)): keep one column so
            # scan schemas stay non-empty, like the compiler's fallback.
            keep = [schema.fields[0].name]
        schemas[name.lower()] = (schema if len(keep) == len(schema)
                                 else schema.select(keep))
    width = sum(len(s) for s in schemas.values())

    def resolver(name: str) -> Schema:
        pruned = schemas.get(name.lower())
        return pruned if pruned is not None else base(name)

    return resolver, width
