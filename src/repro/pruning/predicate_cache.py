"""Predicate caching, extended to top-k queries (§8.2).

A predicate cache remembers, per (table, predicate) — and for top-k
entries per (table, predicate, order column, direction, k) — exactly
which micro-partitions contributed to a previous execution, so a
repeated query scans only those. Correctness under DML follows the
paper's analysis:

* **INSERT** — safe for both entry kinds: partitions created after the
  entry was recorded are always appended to the cached scan list.
* **DELETE** — safe for filter entries (a removed partition cannot make
  another partition qualify); *invalidates* top-k entries that cached
  any deleted partition, because the replacement (k+1-th) row may live
  outside the cached set.
* **UPDATE** — modeled as rewrite of partitions. Filter entries must
  re-check rewritten partitions, which we conservatively handle by
  invalidation when a cached partition is touched; top-k entries are
  additionally invalidated when the *ordering column* is updated
  anywhere in the table, since reordered rows can displace cached ones.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..expr import ast


@dataclass
class CacheEntry:
    """One cached pruning result."""

    table: str
    kind: str                      #: "filter" or "topk"
    partition_ids: list[int]
    order_column: str | None = None
    desc: bool = True
    k: int | None = None
    #: partitions inserted after recording; always scanned in addition
    appended_ids: list[int] = field(default_factory=list)
    hits: int = 0

    def scan_ids(self) -> list[int]:
        """Partitions a repeat execution must scan."""
        return list(self.partition_ids) + list(self.appended_ids)


def _ordering_columns(order_column: str | None) -> set[str]:
    """Column names in an ordering spec ("score" or "a:D,b:A")."""
    if not order_column:
        return set()
    return {part.split(":")[0] for part in order_column.split(",")}


def _cache_key(table: str, predicate: ast.Expr | None, kind: str,
               order_column: str | None = None, desc: bool = True,
               k: int | None = None) -> tuple:
    predicate_text = predicate.to_sql() if predicate is not None else ""
    if kind == "filter":
        return (table.lower(), "filter", predicate_text)
    return (table.lower(), "topk", predicate_text,
            (order_column or "").lower(), desc, k)


class PredicateCache:
    """LRU cache of per-query contributing partition sets.

    ``max_entries`` bounds the number of cached queries and
    ``max_partitions_per_entry`` bounds each entry's size — entries
    that would exceed it are not admitted, modelling the paper's
    observation that cache space limits effectiveness on large tables.
    The bound holds for the entry's *full* scan list: DML appends that
    would push ``partition_ids + appended_ids`` past it evict the
    entry (counted in ``invalidations``) instead of growing forever.

    All public methods are guarded by a lock (mirroring
    :class:`~repro.caching.ResultCache`): compile-time lookups run on
    service worker threads while catalog DML notifications mutate the
    cache. Lookups return a snapshot copy of the entry so callers can
    read ``scan_ids()`` without holding the lock.
    """

    def __init__(self, max_entries: int = 1024,
                 max_partitions_per_entry: int = 256):
        self.max_entries = max_entries
        self.max_partitions_per_entry = max_partitions_per_entry
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Recording and lookup
    # ------------------------------------------------------------------
    def record_filter(self, table: str, predicate: ast.Expr,
                      partition_ids: Sequence[int]) -> bool:
        """Cache the partitions a filter query actually needed."""
        return self._admit(
            _cache_key(table, predicate, "filter"),
            CacheEntry(table.lower(), "filter", list(partition_ids)))

    def record_topk(self, table: str, predicate: ast.Expr | None,
                    order_column: str, desc: bool, k: int,
                    partition_ids: Sequence[int]) -> bool:
        """Cache the partitions that contributed rows to a top-k heap."""
        key = _cache_key(table, predicate, "topk", order_column, desc, k)
        return self._admit(
            key,
            CacheEntry(table.lower(), "topk", list(partition_ids),
                       order_column=order_column.lower(), desc=desc, k=k))

    def _admit(self, key: tuple, entry: CacheEntry) -> bool:
        if len(entry.partition_ids) > self.max_partitions_per_entry:
            return False
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)  # evict least recent
        return True

    def lookup_filter(self, table: str,
                      predicate: ast.Expr) -> CacheEntry | None:
        return self._lookup(_cache_key(table, predicate, "filter"))

    def lookup_topk(self, table: str, predicate: ast.Expr | None,
                    order_column: str, desc: bool,
                    k: int) -> CacheEntry | None:
        return self._lookup(
            _cache_key(table, predicate, "topk", order_column, desc, k))

    def _lookup(self, key: tuple) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            # Snapshot: the caller reads scan_ids() outside the lock
            # while DML notifications may mutate the live entry.
            return replace(entry,
                           partition_ids=list(entry.partition_ids),
                           appended_ids=list(entry.appended_ids))

    # ------------------------------------------------------------------
    # DML notifications
    # ------------------------------------------------------------------
    def _append_ids(self, entry: CacheEntry,
                    new_ids: Sequence[int]) -> bool:
        """Append ``new_ids`` to the entry's scan list, skipping ids it
        already scans. Returns False — caller must evict — when the
        full scan list would exceed ``max_partitions_per_entry``."""
        existing = set(entry.partition_ids)
        existing.update(entry.appended_ids)
        fresh = [pid for pid in dict.fromkeys(new_ids)
                 if pid not in existing]
        if len(existing) + len(fresh) > self.max_partitions_per_entry:
            return False
        entry.appended_ids.extend(fresh)
        return True

    def on_insert(self, table: str, new_partition_ids: Iterable[int]) -> None:
        """New partitions must be scanned by every entry of the table.

        An entry whose scan list would outgrow the per-entry bound is
        evicted (counted as an invalidation) rather than growing
        without limit; already-cached ids are never appended twice.
        """
        table = table.lower()
        new_ids = list(new_partition_ids)
        if not new_ids:
            return
        with self._lock:
            stale_keys = []
            for key, entry in self._entries.items():
                if entry.table != table:
                    continue
                if not self._append_ids(entry, new_ids):
                    stale_keys.append(key)
            for key in stale_keys:
                del self._entries[key]
                self.invalidations += 1

    def on_delete(self, table: str,
                  deleted_partition_ids: Iterable[int]) -> None:
        """Drop deleted partitions; invalidate affected top-k entries."""
        table = table.lower()
        deleted = set(deleted_partition_ids)
        with self._lock:
            stale_keys = []
            for key, entry in self._entries.items():
                if entry.table != table:
                    continue
                touched = deleted & set(entry.scan_ids())
                if not touched:
                    continue
                if entry.kind == "topk":
                    stale_keys.append(key)
                    continue
                entry.partition_ids = [pid for pid in entry.partition_ids
                                       if pid not in deleted]
                entry.appended_ids = [pid for pid in entry.appended_ids
                                      if pid not in deleted]
            for key in stale_keys:
                del self._entries[key]
                self.invalidations += 1

    def on_update(self, table: str, rewritten_from: Iterable[int],
                  rewritten_to: Iterable[int],
                  columns_touched: Iterable[str]) -> None:
        """An UPDATE rewrote ``rewritten_from`` into ``rewritten_to``.

        Filter entries whose cached partitions were rewritten are
        invalidated (the rewritten data must be re-checked). Top-k
        entries are invalidated whenever the ordering column was
        touched anywhere, and otherwise treated like a rewrite of
        unrelated partitions (old ids swapped for new ones if cached).
        """
        table = table.lower()
        old_ids = set(rewritten_from)
        new_ids = list(rewritten_to)
        touched = {c.lower() for c in columns_touched}
        with self._lock:
            stale_keys = []
            for key, entry in self._entries.items():
                if entry.table != table:
                    continue
                if entry.kind == "topk" and \
                        _ordering_columns(entry.order_column) & touched:
                    stale_keys.append(key)
                    continue
                if old_ids & set(entry.scan_ids()):
                    if entry.kind == "topk":
                        stale_keys.append(key)
                        continue
                    # Conservative: rewritten data must be re-checked,
                    # so the rewritten partitions join the scan list.
                    entry.partition_ids = [
                        pid for pid in entry.partition_ids
                        if pid not in old_ids]
                    entry.appended_ids = [
                        pid for pid in entry.appended_ids
                        if pid not in old_ids]
                    if not self._append_ids(entry, new_ids):
                        stale_keys.append(key)
            for key in stale_keys:
                del self._entries[key]
                self.invalidations += 1

    def drop_table(self, table: str) -> None:
        table = table.lower()
        with self._lock:
            for key in [k for k, e in self._entries.items()
                        if e.table == table]:
                del self._entries[key]
